//! # kizzle-sim — workspace umbrella crate
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! directories have a package to live in; it re-exports the member crates
//! under their natural names for convenience in those harnesses.

#![forbid(unsafe_code)]

pub use kizzle_avsim as avsim;
pub use kizzle_cluster as cluster;
pub use kizzle_corpus as corpus;
pub use kizzle_eval as eval;
pub use kizzle_js as js;
pub use kizzle_signature as signature;
pub use kizzle_unpack as unpack;
pub use kizzle_winnow as winnow;
