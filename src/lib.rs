//! # kizzle-sim — the workspace façade
//!
//! The curated entry point to the Kizzle reproduction. The crate used to
//! be a bare re-export shim; it now surfaces the **service API** the
//! paper's two-sided deployment wants — a slow compiler that re-clusters
//! daily behind a streaming ingest session, and a fast matcher side built
//! from cheap, cloneable read handles:
//!
//! * [`KizzleService`] — owns the warm compiler state across days.
//! * [`DaySession`] — streaming ingest: [`KizzleService::begin_day`],
//!   mini-batched [`DaySession::ingest`], then [`DaySession::seal`] to
//!   cluster → label → sign → publish. Byte-identical to single-shot
//!   [`KizzleCompiler::process_day`] (property-tested).
//! * [`Matcher`] — `Send + Sync` scan handle over the epoch-swapped
//!   published signature set; scans stay lock-free while a seal is in
//!   flight and pick up each publication atomically.
//! * [`KizzleConfig`] / [`KizzleConfig::builder`] — validated
//!   configuration; [`KizzleError`] — the one error type every fallible
//!   operation returns.
//!
//! ## Quickstart
//!
//! ```
//! use kizzle_sim::prelude::*;
//! use kizzle_sim::corpus::{GraywareStream, SimDate, StreamConfig};
//!
//! let date = SimDate::new(2014, 8, 5);
//! let config = KizzleConfig::builder().partitions(2).retention_days(2).build()?;
//! let reference = ReferenceCorpus::seeded_from_models(date, &config);
//! let mut service = KizzleService::new(config, reference)?;
//!
//! let matcher = service.matcher(); // serving side, up before day one
//!
//! let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
//! let mut session = service.begin_day(date)?;
//! for batch in day.chunks(16) {
//!     session.ingest(batch); // tokenize/dedup/index eagerly, per batch
//! }
//! let report = session.seal(); // cluster + winnow + siggen + publish
//! assert!(report.clusters > 0);
//! assert!(day.iter().any(|s| matcher.scan(&s.html).is_some()));
//! # Ok::<(), KizzleError>(())
//! ```
//!
//! The member crates stay reachable under their natural module names
//! (below) for the repository-level `examples/` and `tests/` harnesses
//! that exercise pipeline internals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kizzle::{
    config_fingerprint, read_signatures, ClusterVerdict, DayReport, DaySession, KizzleCompiler,
    KizzleConfig, KizzleConfigBuilder, KizzleError, KizzleService, Matcher, ReferenceCorpus,
    ResumeReport, SignatureSet,
};

pub mod prelude {
    //! One-line import of the curated service API:
    //! `use kizzle_sim::prelude::*;`.
    pub use kizzle::prelude::*;
}

pub use kizzle_avsim as avsim;
pub use kizzle_cluster as cluster;
pub use kizzle_corpus as corpus;
pub use kizzle_eval as eval;
pub use kizzle_js as js;
pub use kizzle_signature as signature;
pub use kizzle_unpack as unpack;
pub use kizzle_winnow as winnow;
