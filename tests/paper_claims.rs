//! Integration tests tied to specific quantitative claims of the paper.
//! Absolute numbers differ (the substrate is synthetic and ~1000x smaller),
//! but the *shape* of each claim must hold.

use kizzle_corpus::evolution::{schedule, ChangeKind};
use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_eval::similarity::{plugindetect_overlap_with_nuclear, similarity_over_time};
use kizzle_eval::{EvalConfig, MonthlyEvaluation};
use kizzle_winnow::WinnowConfig;

/// §II-B: "we see a total of 13 small syntactic changes ... only one of
/// these packer changes changed the semantics of the packer"; payload
/// changes are appends only.
#[test]
fn nuclear_evolution_matches_the_figure_5_narrative() {
    let events = schedule(KitFamily::Nuclear);
    let syntactic = events
        .iter()
        .filter(|e| matches!(e.kind, ChangeKind::PackerMutation { .. }))
        .count();
    let semantic = events
        .iter()
        .filter(|e| e.kind == ChangeKind::PackerSemanticChange)
        .count();
    assert_eq!(syntactic, 13);
    assert_eq!(semantic, 1);
    // Payload evolution is append-only: the CVE set never shrinks.
    let mut previous = 0usize;
    for date in SimDate::evolution_start().range_inclusive(SimDate::evaluation_end()) {
        let count = kizzle_corpus::KitState::on_date(KitFamily::Nuclear, date)
            .cves
            .len();
        assert!(count >= previous, "payload shrank on {date}");
        previous = count;
    }
}

/// Fig. 11: Nuclear and Angler stay within a few percent of full
/// similarity; RIG is the outlier with roughly half of its body churning.
#[test]
fn unpacked_similarity_shape_matches_figure_11() {
    let cfg = WinnowConfig::default();
    let window = |family| {
        similarity_over_time(
            family,
            SimDate::evaluation_start(),
            SimDate::evaluation_end(),
            &cfg,
        )
    };
    let avg = |series: &[kizzle_eval::similarity::SimilarityPoint]| {
        series
            .iter()
            .map(|p| p.max_overlap_with_history)
            .sum::<f64>()
            / series.len() as f64
    };
    let nuclear = avg(&window(KitFamily::Nuclear));
    let angler = avg(&window(KitFamily::Angler));
    let sweet = avg(&window(KitFamily::SweetOrange));
    let rig = avg(&window(KitFamily::Rig));
    assert!(nuclear > 0.95, "Nuclear {nuclear:.2}");
    assert!(angler > 0.95, "Angler {angler:.2}");
    assert!(sweet > 0.8, "Sweet Orange {sweet:.2}");
    assert!(
        rig < nuclear && rig < angler && rig < sweet,
        "RIG must be the outlier"
    );
    assert!(
        rig < 0.85,
        "RIG {rig:.2} should churn far more than the others"
    );
}

/// Fig. 15: the representative false positive is a PluginDetect file with a
/// very high overlap against Nuclear.
#[test]
fn plugindetect_false_positive_case_has_high_overlap() {
    let overlap = plugindetect_overlap_with_nuclear(3, &WinnowConfig::default());
    assert!(overlap > 0.25, "overlap {overlap:.2}");
}

/// Fig. 2: every kit carries the CVE-2013-2551 IE exploit, and the exploit
/// code is literally shared across kits (code borrowing).
#[test]
fn ie_exploit_is_shared_verbatim_across_kits() {
    let date = SimDate::new(2014, 8, 20);
    let bodies: Vec<String> = KitFamily::ALL
        .iter()
        .map(|f| KitModel::new(*f).reference_payload(date))
        .collect();
    for body in &bodies {
        assert!(body.contains("triggerVmlUseAfterFree"));
    }
    // The shared block is byte-identical (not merely similar).
    let block = kizzle_corpus::payload::IE_EXPLOIT_SNIPPET;
    for body in &bodies {
        assert!(body.contains(block));
    }
}

/// Figs. 6/13/14 over a one-week window containing August 13: Kizzle's
/// false positives stay near zero, its false negatives stay below the AV's,
/// and the AV's Angler window is visible.
#[test]
fn weekly_evaluation_matches_the_headline_claims() {
    let result = MonthlyEvaluation::new(EvalConfig::quick(17)).run();
    let kizzle = result.kizzle_total();
    let av = result.av_total();

    // Headline: FP well under 1% at our scale (paper: < 0.03%), FN under the AV's.
    assert!(kizzle.fp_rate() < 0.01, "Kizzle FP {:.4}", kizzle.fp_rate());
    assert!(
        kizzle.fn_rate() < av.fn_rate(),
        "Kizzle FN {:.3} should beat AV FN {:.3}",
        kizzle.fn_rate(),
        av.fn_rate()
    );

    // The Angler window: at least one day where the AV misses most Angler
    // samples while Kizzle does not.
    let window_day = result.days.iter().any(|d| {
        d.av_angler.malicious_total() > 0
            && d.av_angler.fn_rate() > 0.5
            && d.kizzle_angler.fn_rate() < 0.5
    });
    assert!(window_day, "no Angler window-of-vulnerability day found");

    // Fig. 14 shape: Angler dominates the ground-truth counts.
    let angler = result.family(KitFamily::Angler).ground_truth;
    for family in [KitFamily::Nuclear, KitFamily::Rig, KitFamily::SweetOrange] {
        assert!(angler >= result.family(family).ground_truth);
    }
}
