//! Cross-crate integration tests: corpus → tokenizer → clustering →
//! unpacking → labeling → signature generation → scanning.

use kizzle::{KizzleCompiler, KizzleConfig, ReferenceCorpus};
use kizzle_avsim::{AvConfig, AvEngine};
use kizzle_cluster::{DbscanParams, DistributedClusterer, DistributedConfig};
use kizzle_corpus::{GraywareStream, GroundTruth, KitFamily, KitModel, SimDate, StreamConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_stream(seed: u64, malicious_fraction: f64) -> GraywareStream {
    GraywareStream::new(StreamConfig {
        samples_per_day: 56,
        malicious_fraction,
        family_weights: vec![
            (KitFamily::Angler, 0.35),
            (KitFamily::Nuclear, 0.3),
            (KitFamily::SweetOrange, 0.2),
            (KitFamily::Rig, 0.15),
        ],
        seed,
    })
}

#[test]
fn packed_samples_cluster_by_family_at_the_paper_threshold() {
    // Generate a handful of packed variants of two kits plus benign pages,
    // tokenize them, and check DBSCAN at eps = 0.10 groups them by family.
    let date = SimDate::new(2014, 8, 9);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut docs: Vec<(Option<KitFamily>, String)> = Vec::new();
    for family in [KitFamily::Nuclear, KitFamily::Angler] {
        let model = KitModel::new(family);
        for _ in 0..5 {
            docs.push((Some(family), model.generate_sample(date, &mut rng)));
        }
    }
    for _ in 0..5 {
        docs.push((
            None,
            kizzle_corpus::benign::generate_benign(
                kizzle_corpus::benign::BenignKind::Analytics,
                &mut rng,
            ),
        ));
    }

    let token_strings: Vec<Vec<u8>> = docs
        .iter()
        .map(|(_, html)| {
            let stream = kizzle_js::tokenize_document(html);
            stream.slice(0, stream.len().min(600)).class_codes()
        })
        .collect();

    let clusterer =
        DistributedClusterer::new(DistributedConfig::new(2, DbscanParams::new(0.10, 3), 1));
    let (clustering, _) = clusterer.cluster_token_strings(&token_strings);
    assert!(clustering.is_partition());
    assert!(
        clustering.cluster_count() >= 3,
        "expected at least 3 clusters"
    );
    // Every cluster must be pure with respect to the ground truth label.
    for cluster in &clustering.clusters {
        let labels: std::collections::HashSet<_> =
            cluster.members.iter().map(|&i| docs[i].0).collect();
        assert_eq!(labels.len(), 1, "cluster mixes families/benign: {labels:?}");
    }
}

#[test]
fn unpack_labels_every_kit_prototype_correctly() {
    let config = KizzleConfig::paper();
    // The reference corpus is re-seeded/absorbed daily by the pipeline, so
    // label against the previous day's knowledge (RIG's campaign blob makes
    // a 20-day-old reference too stale, which is exactly the paper's "RIG is
    // the hardest kit" observation).
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 20), &config);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for family in KitFamily::ALL {
        // Mid-month, i.e. after several packer rotations since the seed day.
        let html = KitModel::new(family).generate_sample(SimDate::new(2014, 8, 21), &mut rng);
        let (detected, unpacked) = kizzle_unpack::unpack_or_passthrough(&html);
        assert!(detected.is_some(), "{family}: unpacker did not apply");
        let (labeled, overlap) = reference
            .label(&unpacked)
            .unwrap_or_else(|| panic!("{family}: prototype not labeled"));
        assert_eq!(labeled, family);
        // RIG's rotating campaign data keeps its day-over-day overlap much
        // lower than the other kits' (paper Fig. 11(d)).
        let floor = if family == KitFamily::Rig { 0.3 } else { 0.4 };
        assert!(overlap > floor, "{family}: overlap {overlap:.2}");
    }
}

#[test]
fn full_pipeline_detects_kits_and_spares_benign_pages() {
    let date = SimDate::new(2014, 8, 6);
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(date, &config);
    let mut compiler = KizzleCompiler::new(config, reference);
    let day = small_stream(3, 0.45).generate_day(date);

    let report = compiler.process_day(date, &day);
    assert!(report.malicious_clusters() >= 2, "{report}");

    let mut detected = 0usize;
    let mut malicious = 0usize;
    let mut fp = 0usize;
    let mut benign = 0usize;
    for sample in &day {
        let hit = compiler.scan(&sample.html);
        match sample.truth {
            GroundTruth::Malicious(_) => {
                malicious += 1;
                if hit.is_some() {
                    detected += 1;
                }
            }
            GroundTruth::Benign => {
                benign += 1;
                if hit.is_some() {
                    fp += 1;
                }
            }
        }
    }
    assert!(malicious > 0 && benign > 0);
    assert!(
        detected as f64 >= malicious as f64 * 0.6,
        "detected {detected}/{malicious}"
    );
    assert!(
        (fp as f64) < benign as f64 * 0.05,
        "false positives {fp}/{benign}"
    );
}

#[test]
fn kizzle_closes_the_angler_window_the_av_leaves_open() {
    // August 14: the day after Angler hid its Java marker. The lagged AV
    // misses the new variant; Kizzle signs it from the same day's cluster.
    let date = SimDate::new(2014, 8, 14);
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    let mut compiler = KizzleCompiler::new(config, reference);
    let av = AvEngine::new(AvConfig::default());

    let stream = GraywareStream::new(StreamConfig {
        samples_per_day: 40,
        malicious_fraction: 0.5,
        family_weights: vec![(KitFamily::Angler, 1.0)],
        seed: 21,
    });
    let day = stream.generate_day(date);
    compiler.process_day(date, &day);

    let angler_samples: Vec<_> = day
        .iter()
        .filter(|s| s.truth == GroundTruth::Malicious(KitFamily::Angler))
        .collect();
    assert!(!angler_samples.is_empty());
    let kizzle_detected = angler_samples
        .iter()
        .filter(|s| compiler.scan(&s.html).is_some())
        .count();
    let av_detected = angler_samples
        .iter()
        .filter(|s| av.scan(date, &s.html).is_some())
        .count();
    assert_eq!(av_detected, 0, "the lagged AV should be blind on August 14");
    assert!(
        kizzle_detected * 2 > angler_samples.len(),
        "Kizzle detected only {kizzle_detected}/{}",
        angler_samples.len()
    );
}

#[test]
fn resigning_after_a_packer_rotation_restores_detection() {
    // Kizzle signatures are deliberately specific (exact lengths, concrete
    // delimiters), so they go stale when the kit's daily content or packer
    // rotates — the paper's Fig. 12 shows Kizzle re-issuing signatures
    // daily. What must hold is that re-processing the new day's samples
    // restores majority detection immediately.
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    let mut compiler = KizzleCompiler::new(config, reference);

    let nuclear_day = |date: SimDate, seed: u64| {
        GraywareStream::new(StreamConfig {
            samples_per_day: 24,
            malicious_fraction: 0.6,
            family_weights: vec![(KitFamily::Nuclear, 1.0)],
            seed,
        })
        .generate_day(date)
    };

    let detection = |compiler: &KizzleCompiler, day: &[kizzle_corpus::Sample]| {
        let malicious = day.iter().filter(|s| s.truth.is_malicious()).count();
        let hits = day
            .iter()
            .filter(|s| s.truth.is_malicious() && compiler.scan(&s.html).is_some())
            .count();
        (hits, malicious)
    };

    // Day before the August 22 delimiter rotation.
    let d20 = SimDate::new(2014, 8, 20);
    let day20 = nuclear_day(d20, 31);
    compiler.process_day(d20, &day20);
    let sigs_after_d20 = compiler.signatures().len();
    assert!(sigs_after_d20 > 0);
    let (hits, malicious) = detection(&compiler, &day20);
    assert!(
        hits * 2 > malicious,
        "{hits}/{malicious} on the signing day"
    );

    // Day after the rotation: re-process, detection recovers the same day.
    let d23 = SimDate::new(2014, 8, 23);
    let day23 = nuclear_day(d23, 33);
    compiler.process_day(d23, &day23);
    assert!(compiler.signatures().len() >= sigs_after_d20);
    let (hits, malicious) = detection(&compiler, &day23);
    assert!(hits * 2 > malicious, "{hits}/{malicious} after re-signing");
}
