//! Warm/cold equivalence of the incremental corpus engine at pipeline
//! level: a 10-day simulated run through a compiler whose engine retains a
//! multi-day window must produce day reports identical to a compiler that
//! clusters every day fully cold (retention window 1 — the engine is
//! emptied before each day), modulo wall-clock timings.
//!
//! Consecutive days are built from a sliding window over a sample pool, so
//! most of each day's content carries over from the previous day — the
//! warm path's memoized neighborhoods are genuinely exercised, not just
//! trivially bypassed.

use kizzle::{DayReport, KizzleCompiler, KizzleConfig, ReferenceCorpus};
use kizzle_cluster::DistributedStats;
use kizzle_corpus::{GraywareStream, KitFamily, Sample, SimDate, StreamConfig};

fn sample_pool() -> Vec<Sample> {
    let config = StreamConfig {
        samples_per_day: 40,
        malicious_fraction: 0.5,
        family_weights: vec![
            (KitFamily::Angler, 0.4),
            (KitFamily::Nuclear, 0.3),
            (KitFamily::SweetOrange, 0.3),
        ],
        seed: 17,
    };
    let stream = GraywareStream::new(config);
    let mut pool = Vec::new();
    for day in 5..8 {
        pool.extend(stream.generate_day(SimDate::new(2014, 8, day)));
    }
    pool
}

fn compiler(retention_days: usize) -> KizzleCompiler {
    let mut config = KizzleConfig::fast();
    config.retention_days = retention_days;
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    KizzleCompiler::new(config, reference)
}

/// A day report with the wall-clock noise removed: everything that must be
/// byte-identical between the warm and cold paths.
fn normalized(report: &DayReport) -> DayReport {
    let mut report = report.clone();
    report.clustering_stats = DistributedStats::default();
    report
}

#[test]
fn ten_day_warm_run_matches_cold_day_by_day() {
    let pool = sample_pool();
    let day_len = 40usize;
    let slide = 8usize;
    assert!(pool.len() >= day_len + 9 * slide, "pool too small");

    let mut warm = compiler(3);
    let mut cold = compiler(1);

    let mut date = SimDate::new(2014, 8, 10);
    for day in 0..10 {
        let window = &pool[day * slide..day * slide + day_len];
        let warm_report = warm.process_day(date, window);
        let cold_report = cold.process_day(date, window);
        assert_eq!(
            normalized(&warm_report),
            normalized(&cold_report),
            "day {day} ({date}) diverged between warm and cold"
        );
        date = date.next();
    }

    // Both compilers went through identical labeling decisions, so the
    // cumulative signature sets agree too.
    assert_eq!(warm.signatures().len(), cold.signatures().len());
    assert!(!warm.signatures().is_empty(), "run produced no signatures");

    // The warm engine retained at least as much as the cold one (content
    // dedup can collapse samples with identical class-strings, so the live
    // count is bounded by *distinct* strings, not raw sample counts); the
    // cold one never kept more than the current day.
    assert!(warm.engine().len() >= cold.engine().len());
    assert!(!warm.engine().is_empty());
    assert!(cold.engine().len() <= day_len);
}

#[test]
fn warm_overlap_days_answer_from_the_cache() {
    let pool = sample_pool();
    let mut warm = compiler(3);
    let day1 = &pool[0..40];
    let r1 = warm.process_day(SimDate::new(2014, 8, 10), day1);
    assert!(r1.clustering_stats.index.queries > 0);
    // Day 2 carries over 80% of day 1: only the fresh fraction (plus any
    // content the tokenizer maps to new class-strings) pays query cost.
    let day2 = &pool[8..48];
    let r2 = warm.process_day(SimDate::new(2014, 8, 11), day2);
    assert!(
        r2.clustering_stats.index.cache_hits > 0,
        "no warm reuse on an 80%-overlap day: {:?}",
        r2.clustering_stats.index
    );
    assert!(
        r2.clustering_stats.index.queries < r1.clustering_stats.index.queries,
        "day 2 re-queried as much as the cold day 1: {:?} vs {:?}",
        r2.clustering_stats.index,
        r1.clustering_stats.index
    );
}
