//! Signature inspection: show how signatures generalize (paper Figs.
//! 9–10) — either by generating one per kit from a small cluster of
//! same-day packed variants, or, with `--snapshot PATH`, by loading the
//! *deployed* set straight out of a compiler state snapshot (as written by
//! `daily_pipeline --state-dir`) instead of recompiling anything. `PATH`
//! may be the state directory itself or a snapshot file inside it; either
//! way the chain's deltas are overlaid so the newest set answers.
//!
//! ```bash
//! cargo run --release -p kizzle-sim --example signature_inspect
//! cargo run --release -p kizzle-sim --example signature_inspect -- \
//!     --snapshot /tmp/kizzle-state
//! ```

use kizzle::prelude::*;
use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_signature::{generate_signature, Element, Signature};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn literal_count(sig: &Signature) -> usize {
    sig.elements
        .iter()
        .filter(|e| matches!(e, Element::Literal(_)))
        .count()
}

fn describe(sig: &Signature) {
    let literals = literal_count(sig);
    println!(
        "  window: {} tokens ({} literal, {} generalized), rendered {} chars",
        sig.len(),
        literals,
        sig.len() - literals,
        sig.rendered_len()
    );
    let rendered = sig.render();
    let preview: String = rendered.chars().take(300).collect();
    println!("  {preview}…");
}

/// Inspect the deployed signature set inside a state snapshot (a state
/// directory or a snapshot file).
fn inspect_snapshot(path: &str) {
    let set = match kizzle::read_signatures(std::path::Path::new(path)) {
        Ok(set) => set,
        Err(err) => {
            eprintln!("signature_inspect: cannot load {path}: {err}");
            std::process::exit(2);
        }
    };
    println!(
        "{} deployed signatures in {path} (labels: {})\n",
        set.len(),
        set.labels().join(", ")
    );
    for labeled in set.iter() {
        println!(
            "=== [{}] {} (support {}) ===",
            labeled.label, labeled.signature.name, labeled.signature.support
        );
        describe(&labeled.signature);
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {}
        [flag, path] if flag == "--snapshot" => {
            inspect_snapshot(path);
            return;
        }
        _ => {
            eprintln!("usage: signature_inspect [--snapshot FILE_OR_DIR]");
            std::process::exit(2);
        }
    }

    let date = SimDate::new(2014, 8, 26); // Nuclear's UluN-delimiter era
    let config = KizzleConfig::paper();

    for family in KitFamily::ALL {
        let model = KitModel::new(family);
        // A "cluster": eight same-day variants with randomized identifiers.
        let samples: Vec<_> = (0..8u64)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(500 + i);
                let stream = kizzle_js::tokenize_document(&model.generate_sample(date, &mut rng));
                stream.slice(0, config.token_cap.min(stream.len()))
            })
            .collect();

        match generate_signature(
            &format!("{}.sig1", family.short_code()),
            &samples,
            &config.signature,
        ) {
            Ok(sig) => {
                println!("=== {family} ===");
                describe(&sig);
                let matched = samples.iter().filter(|s| sig.matches_stream(s)).count();
                println!("  matches {matched}/{} cluster members\n", samples.len());
            }
            Err(err) => println!("=== {family} ===\n  no signature: {err}\n"),
        }
    }
}
