//! Signature inspection: generate one signature per kit from a small
//! cluster of same-day packed variants and show how it generalizes (paper
//! Figs. 9–10).
//!
//! ```bash
//! cargo run --release -p kizzle-eval --example signature_inspect
//! ```

use kizzle::KizzleConfig;
use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_signature::{generate_signature, Element};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let date = SimDate::new(2014, 8, 26); // Nuclear's UluN-delimiter era
    let config = KizzleConfig::paper();

    for family in KitFamily::ALL {
        let model = KitModel::new(family);
        // A "cluster": eight same-day variants with randomized identifiers.
        let samples: Vec<_> = (0..8u64)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(500 + i);
                let stream = kizzle_js::tokenize_document(&model.generate_sample(date, &mut rng));
                stream.slice(0, config.token_cap.min(stream.len()))
            })
            .collect();

        match generate_signature(&format!("{}.sig1", family.short_code()), &samples, &config.signature) {
            Ok(sig) => {
                let literals = sig
                    .elements
                    .iter()
                    .filter(|e| matches!(e, Element::Literal(_)))
                    .count();
                println!(
                    "=== {family} ===\n  window: {} tokens ({} literal, {} generalized), rendered {} chars",
                    sig.len(),
                    literals,
                    sig.len() - literals,
                    sig.rendered_len()
                );
                let rendered = sig.render();
                let preview: String = rendered.chars().take(300).collect();
                println!("  {preview}…");
                let matched = samples.iter().filter(|s| sig.matches_stream(s)).count();
                println!("  matches {matched}/{} cluster members\n", samples.len());
            }
            Err(err) => println!("=== {family} ===\n  no signature: {err}\n"),
        }
    }
}
