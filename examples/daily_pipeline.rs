//! Daily pipeline: simulated grayware days, Kizzle vs. the lagged AV
//! baseline, driven through the warm incremental corpus engine.
//!
//! This is a miniature of the paper's month-long evaluation (Figs. 6/13),
//! centered on the August 13 Angler change that opened the commercial AV's
//! window of vulnerability. By default the compiler is reused across days,
//! so the corpus store and neighbor index stay warm from day to day.
//!
//! `--state-dir DIR` persists the service state after every day;
//! `--restart-each-day` additionally **drops the service between days**
//! and reloads it from the snapshot — the production cron deployment in
//! miniature. Its report table is byte-identical to the long-lived run
//! (CI diffs the two). `--window-cluster` adds the multi-day eval mode: a
//! `window` column with the cluster count over the whole retention window.
//! `--ingest-batch N` streams each day into the `DaySession` in
//! mini-batches of N samples, as a live frontend would; the report table
//! is byte-identical to the default single-shot ingest (CI diffs that
//! pair too — the façade's core property, end to end). `--producers N`
//! (with `--ingest-batch`) routes those mini-batches through the
//! bounded-channel pipelined frontend from N producer threads
//! (`--channel-bound` sets the channel capacity) — still byte-identical
//! on stdout, which CI also diffs.
//!
//! `--metrics-out PATH` / `--trace-out PATH` switch on the
//! `kizzle-telemetry` layer for the run and dump the metric registry
//! (Prometheus text exposition) and the span/event trace (JSONL) after
//! the last day, plus a phase tree and metric summary on stderr. The
//! stdout table is unchanged — telemetry never touches it (see
//! OBSERVABILITY.md).
//!
//! ```bash
//! cargo run --release -p kizzle-sim --example daily_pipeline -- \
//!     --days 7 --samples-per-day 150 --seed 11
//! cargo run --release -p kizzle-sim --example daily_pipeline -- \
//!     --days 3 --state-dir /tmp/kizzle-state --restart-each-day
//! ```

use kizzle_eval::{EvalConfig, MonthlyEvaluation};
use std::path::PathBuf;

struct Args {
    days: u32,
    samples_per_day: usize,
    seed: u64,
    state_dir: Option<PathBuf>,
    restart_each_day: bool,
    window_cluster: bool,
    compact_every: usize,
    ingest_batch: usize,
    producers: usize,
    channel_bound: usize,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        days: 7,
        samples_per_day: 150,
        seed: 11,
        state_dir: None,
        restart_each_day: false,
        window_cluster: false,
        compact_every: kizzle::DEFAULT_MAX_DELTAS,
        ingest_batch: 0,
        producers: 0,
        channel_bound: 2,
        metrics_out: None,
        trace_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--days" => args.days = parse(&value("--days"), "--days"),
            "--samples-per-day" => {
                args.samples_per_day = parse(&value("--samples-per-day"), "--samples-per-day");
            }
            "--seed" => args.seed = parse(&value("--seed"), "--seed"),
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--restart-each-day" => args.restart_each_day = true,
            "--window-cluster" => args.window_cluster = true,
            "--compact-every" => {
                args.compact_every = parse(&value("--compact-every"), "--compact-every");
            }
            "--ingest-batch" => {
                args.ingest_batch = parse(&value("--ingest-batch"), "--ingest-batch");
            }
            "--producers" => {
                args.producers = parse(&value("--producers"), "--producers");
            }
            "--channel-bound" => {
                args.channel_bound = parse(&value("--channel-bound"), "--channel-bound");
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--help" | "-h" => {
                println!(
                    "usage: daily_pipeline [--days N] [--samples-per-day M] [--seed S]\n\
                     \x20                     [--state-dir DIR [--restart-each-day] [--compact-every N]]\n\
                     \x20                     [--window-cluster] [--ingest-batch N]\n\
                     defaults: --days 7 --samples-per-day 150 --seed 11\n\
                     --state-dir DIR       persist compiler state (snapshot chain + MANIFEST) after each day\n\
                     --restart-each-day    drop + reload the compiler between days (cron simulation)\n\
                     --compact-every N     rewrite the full base once the chain holds N delta files\n\
                     \x20                     (0 = full snapshot every day); default 6\n\
                     --window-cluster      also cluster the whole retention window each day\n\
                     --ingest-batch N      stream each day into the session in mini-batches of N\n\
                     \x20                     samples (0 = single-shot, the default)\n\
                     --producers N         submit the mini-batches from N threads through the\n\
                     \x20                     bounded-channel pipelined frontend (0 = direct; needs --ingest-batch)\n\
                     --channel-bound N     pipelined frontend channel capacity in batches; default 2\n\
                     --metrics-out PATH    enable telemetry; write the metric registry in Prometheus\n\
                     \x20                     text exposition format to PATH after the run\n\
                     --trace-out PATH      enable telemetry; write the span/event trace as JSONL to\n\
                     \x20                     PATH after the run (either flag also prints a phase\n\
                     \x20                     tree and metric summary to stderr)"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if args.days == 0 {
        die("--days must be at least 1");
    }
    if args.restart_each_day && args.state_dir.is_none() {
        die("--restart-each-day needs --state-dir (state must live somewhere between runs)");
    }
    if args.producers > 0 && args.ingest_batch == 0 {
        die("--producers needs --ingest-batch (the pipelined frontend submits mini-batches)");
    }
    args
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {value:?}")))
}

fn die(message: &str) -> ! {
    eprintln!("daily_pipeline: {message}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    // Telemetry is opt-in: either output flag flips the global gate before
    // the run starts, so the instrumented layers start recording from the
    // first ingest batch. All telemetry output goes to files or stderr —
    // the stdout report table stays byte-comparable across modes.
    let telemetry = args.metrics_out.is_some() || args.trace_out.is_some();
    if telemetry {
        kizzle_telemetry::set_enabled(true);
    }
    let mut config = EvalConfig::quick(args.seed);
    config.stream.samples_per_day = args.samples_per_day;
    config.window_cluster = args.window_cluster;
    config.compact_every = args.compact_every;
    config.ingest_batch = args.ingest_batch;
    config.pipeline_producers = args.producers;
    config.pipeline_bound = args.channel_bound;
    let mut end = config.start;
    for _ in 1..args.days {
        end = end.next();
    }
    config.end = end;

    let evaluation = MonthlyEvaluation::new(config);
    // Mode notes go to stderr so the stdout report stays byte-comparable
    // between the long-lived and restart-each-day runs (CI diffs them).
    let result = match (&args.state_dir, args.restart_each_day) {
        (None, _) => evaluation.run(),
        (Some(dir), false) => {
            eprintln!(
                "persisting compiler state to {} after each day",
                dir.display()
            );
            evaluation.run_persisting(dir)
        }
        (Some(dir), true) => {
            eprintln!(
                "cron simulation: dropping and reloading the compiler from {} between days",
                dir.display()
            );
            evaluation.run_restarting(dir)
        }
    };

    let window_header = if args.window_cluster { "  window" } else { "" };
    println!(
        "day      samples  clusters{window_header}  corpus  | Kizzle FP%  FN%   | AV FP%   FN%   | new signatures"
    );
    for day in &result.days {
        let window_cell = day
            .window_clusters
            .map_or_else(String::new, |w| format!("  {w:6}"));
        println!(
            "{:>6}  {:7}  {:8}{window_cell}  {:6}  | {:8.3}  {:5.1} | {:6.3}  {:5.1} | {}",
            day.date.axis_label(),
            day.samples,
            day.clusters,
            day.live_corpus,
            day.kizzle.fp_rate() * 100.0,
            day.kizzle.fn_rate() * 100.0,
            day.av.fp_rate() * 100.0,
            day.av.fn_rate() * 100.0,
            day.new_signatures.join(" "),
        );
    }
    if args.window_cluster {
        let fragmented: Vec<String> = result
            .days
            .iter()
            .filter_map(|d| d.window_clusters.map(|w| (d, w)))
            .map(|(d, w)| {
                format!(
                    "{}: {} per-day vs {} window",
                    d.date.axis_label(),
                    d.clusters,
                    w
                )
            })
            .collect();
        println!(
            "\nwindow clustering (whole retention window as one batch): {}",
            fragmented.join("; ")
        );
    }

    // Timings go to stderr: the stdout table must stay byte-comparable
    // between the long-lived and restart-each-day runs (CI diffs them).
    let clustering_total: f64 = result.days.iter().map(|d| d.clustering_seconds).sum();
    let prototype_total: f64 = result.days.iter().map(|d| d.prototype_seconds).sum();
    eprintln!(
        "clustering wall clock: {clustering_total:.3}s total, of which final prototype pass \
         {prototype_total:.3}s ({:.0}%)",
        if clustering_total > 0.0 {
            prototype_total / clustering_total * 100.0
        } else {
            0.0
        }
    );

    let kizzle = result.kizzle_total();
    let av = result.av_total();
    println!(
        "\nwindow totals — Kizzle: FP {:.3}% FN {:.1}%   AV: FP {:.3}% FN {:.1}%",
        kizzle.fp_rate() * 100.0,
        kizzle.fn_rate() * 100.0,
        av.fp_rate() * 100.0,
        av.fn_rate() * 100.0
    );
    println!(
        "(the paper reports Kizzle FP < 0.03% and FN < 5% over August 2014, with the AV's\n\
         Angler false-negative window between August 13 and 19 — compare the FN columns above;\n\
         the `corpus` column is the warm engine's live sample store after each day)"
    );

    if telemetry {
        write_telemetry(&args);
    }
}

/// Flush, drain, and write out the telemetry collected during the run.
/// All output goes to the requested files and stderr — never stdout,
/// which CI byte-compares across run modes.
fn write_telemetry(args: &Args) {
    // Scan counters are batched per thread; the eval loop scans on this
    // thread, so one flush here makes the registry totals exact.
    kizzle_signature::flush_scan_counters();
    let records = kizzle_telemetry::drain();

    if let Some(path) = &args.metrics_out {
        let prom = kizzle_telemetry::render_prometheus();
        if let Err(err) = std::fs::write(path, prom) {
            die(&format!("--metrics-out {}: {err}", path.display()));
        }
        eprintln!("metrics written to {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        let jsonl = kizzle_telemetry::render_jsonl(&records);
        if let Err(err) = std::fs::write(path, jsonl) {
            die(&format!("--trace-out {}: {err}", path.display()));
        }
        eprintln!(
            "trace written to {} ({} records)",
            path.display(),
            records.len()
        );
    }

    eprintln!("\nphase tree (per thread, by start time):");
    eprint!("{}", kizzle_telemetry::render_tree(&records));
    eprintln!("\nmetric summary (non-zero only):");
    eprint!("{}", kizzle_telemetry::render_summary());
}
