//! Daily pipeline: a week of grayware, Kizzle vs. the lagged AV baseline.
//!
//! This is a miniature of the paper's month-long evaluation (Figs. 6/13),
//! centered on the August 13 Angler change that opened the commercial AV's
//! window of vulnerability.
//!
//! ```bash
//! cargo run --release -p kizzle-eval --example daily_pipeline
//! ```

use kizzle_eval::{EvalConfig, MonthlyEvaluation};

fn main() {
    let mut config = EvalConfig::quick(11);
    config.stream.samples_per_day = 150;
    let result = MonthlyEvaluation::new(config).run();

    println!("day      samples  clusters  | Kizzle FP%  FN%   | AV FP%   FN%   | new signatures");
    for day in &result.days {
        println!(
            "{:>6}  {:7}  {:8}  | {:8.3}  {:5.1} | {:6.3}  {:5.1} | {}",
            day.date.axis_label(),
            day.samples,
            day.clusters,
            day.kizzle.fp_rate() * 100.0,
            day.kizzle.fn_rate() * 100.0,
            day.av.fp_rate() * 100.0,
            day.av.fn_rate() * 100.0,
            day.new_signatures.join(" "),
        );
    }

    let kizzle = result.kizzle_total();
    let av = result.av_total();
    println!(
        "\nwindow totals — Kizzle: FP {:.3}% FN {:.1}%   AV: FP {:.3}% FN {:.1}%",
        kizzle.fp_rate() * 100.0,
        kizzle.fn_rate() * 100.0,
        av.fp_rate() * 100.0,
        av.fn_rate() * 100.0
    );
    println!(
        "(the paper reports Kizzle FP < 0.03% and FN < 5% over August 2014, with the AV's\n\
         Angler false-negative window between August 13 and 19 — compare the FN columns above)"
    );
}
