//! Daily pipeline: simulated grayware days, Kizzle vs. the lagged AV
//! baseline, driven through the warm incremental corpus engine.
//!
//! This is a miniature of the paper's month-long evaluation (Figs. 6/13),
//! centered on the August 13 Angler change that opened the commercial AV's
//! window of vulnerability. The compiler is reused across days, so the
//! corpus store and neighbor index stay warm from day to day.
//!
//! ```bash
//! cargo run --release -p kizzle-sim --example daily_pipeline -- \
//!     --days 7 --samples-per-day 150 --seed 11
//! ```

use kizzle_eval::{EvalConfig, MonthlyEvaluation};

struct Args {
    days: u32,
    samples_per_day: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        days: 7,
        samples_per_day: 150,
        seed: 11,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--days" => args.days = parse(&value("--days"), "--days"),
            "--samples-per-day" => {
                args.samples_per_day = parse(&value("--samples-per-day"), "--samples-per-day");
            }
            "--seed" => args.seed = parse(&value("--seed"), "--seed"),
            "--help" | "-h" => {
                println!(
                    "usage: daily_pipeline [--days N] [--samples-per-day M] [--seed S]\n\
                     defaults: --days 7 --samples-per-day 150 --seed 11"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if args.days == 0 {
        die("--days must be at least 1");
    }
    args
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {value:?}")))
}

fn die(message: &str) -> ! {
    eprintln!("daily_pipeline: {message}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let mut config = EvalConfig::quick(args.seed);
    config.stream.samples_per_day = args.samples_per_day;
    let mut end = config.start;
    for _ in 1..args.days {
        end = end.next();
    }
    config.end = end;

    let result = MonthlyEvaluation::new(config).run();

    println!(
        "day      samples  clusters  corpus  | Kizzle FP%  FN%   | AV FP%   FN%   | new signatures"
    );
    for day in &result.days {
        println!(
            "{:>6}  {:7}  {:8}  {:6}  | {:8.3}  {:5.1} | {:6.3}  {:5.1} | {}",
            day.date.axis_label(),
            day.samples,
            day.clusters,
            day.live_corpus,
            day.kizzle.fp_rate() * 100.0,
            day.kizzle.fn_rate() * 100.0,
            day.av.fp_rate() * 100.0,
            day.av.fn_rate() * 100.0,
            day.new_signatures.join(" "),
        );
    }

    let kizzle = result.kizzle_total();
    let av = result.av_total();
    println!(
        "\nwindow totals — Kizzle: FP {:.3}% FN {:.1}%   AV: FP {:.3}% FN {:.1}%",
        kizzle.fp_rate() * 100.0,
        kizzle.fn_rate() * 100.0,
        av.fp_rate() * 100.0,
        av.fn_rate() * 100.0
    );
    println!(
        "(the paper reports Kizzle FP < 0.03% and FN < 5% over August 2014, with the AV's\n\
         Angler false-negative window between August 13 and 19 — compare the FN columns above;\n\
         the `corpus` column is the warm engine's live sample store after each day)"
    );
}
