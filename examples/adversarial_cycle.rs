//! The adversarial cycle (paper Fig. 1): an attacker who mutates the kit
//! whenever it is detected, against Kizzle's same-day signatures and a
//! manually-maintained AV with a multi-day reaction delay.
//!
//! ```bash
//! cargo run --release -p kizzle-eval --example adversarial_cycle
//! ```

use kizzle_corpus::KitFamily;
use kizzle_eval::adversarial::run_cycle;

fn main() {
    for family in [KitFamily::Nuclear, KitFamily::Angler] {
        let result = run_cycle(family, 6, 23);
        println!("=== {family} ===");
        println!(
            "attacker mutations: {}; Kizzle wins {}/31 days, AV wins {}/31 days",
            result.mutations,
            result.kizzle_winning_days(),
            result.av_winning_days()
        );
        for day in &result.days {
            println!(
                "  {:>6}  attacker mutated: {:3}   Kizzle {:5.1}%   AV {:5.1}%",
                day.date.axis_label(),
                if day.attacker_mutated { "yes" } else { "no" },
                day.kizzle_detection * 100.0,
                day.av_detection * 100.0
            );
        }
        println!();
    }
}
