//! Quickstart: seed Kizzle with known kits, stream one day of grayware
//! into a session, and scan it with the signatures the seal publishes.
//!
//! ```bash
//! cargo run --release -p kizzle-sim --example quickstart
//! ```

use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, GroundTruth, SimDate, StreamConfig};

fn main() -> Result<(), KizzleError> {
    // 1. The day we are processing and the pipeline configuration — the
    //    paper's operating point (DBSCAN at 0.10, 200-token signatures)
    //    via the validated builder.
    let date = SimDate::new(2014, 8, 5);
    let config = KizzleConfig::builder().partitions(4).eps(0.10).build()?;

    // 2. Kizzle must be seeded with known, unpacked exploit kits — it
    //    automates the analyst's signature writing, it does not replace the
    //    analyst's initial triage.
    let reference = ReferenceCorpus::seeded_from_models(date, &config);
    let mut service = KizzleService::new(config, reference)?;

    // 3. The serving side is up before the first compile: matcher handles
    //    are cheap, cloneable and Send + Sync — one per scanner thread.
    let matcher = service.matcher();

    // 4. One day of "grayware": mostly benign pages with a minority of
    //    exploit-kit landing pages (synthetic stand-in for the paper's IE
    //    telemetry stream), arriving in mini-batches like live telemetry.
    let stream = GraywareStream::new(StreamConfig {
        samples_per_day: 200,
        seed: 7,
        ..StreamConfig::default()
    });
    let day = stream.generate_day(date);
    println!("processing {} samples captured on {date}", day.len());

    let mut session = service.begin_day(date)?;
    for batch in day.chunks(25) {
        // Tokenize/dedup/store-insert happen eagerly per batch, so the
        // day's front half is amortized while the tail is still arriving.
        session.ingest(batch);
    }

    // 5. Seal: cluster, label, compile signatures — and publish them
    //    atomically to every matcher handle.
    let report = session.seal();
    println!("{report}");
    for verdict in &report.verdicts {
        println!(
            "  cluster of {:3} samples -> {}",
            verdict.size,
            match verdict.family {
                Some(family) => format!(
                    "{family} (overlap {:.0}%, signature {})",
                    verdict.overlap * 100.0,
                    verdict.signature_name.as_deref().unwrap_or("none")
                ),
                None => "benign / unknown".to_string(),
            }
        );
    }

    // 6. The emitted signatures, in the regex-like rendering of the paper's
    //    Fig. 10 — read through the matcher's consistent snapshot.
    println!("\ndeployed signatures:");
    for labeled in matcher.signatures().iter() {
        let rendered = labeled.signature.render();
        let preview: String = rendered.chars().take(120).collect();
        println!(
            "  [{}] {} ({} chars): {preview}…",
            labeled.label,
            labeled.signature.name,
            labeled.signature.rendered_len()
        );
    }

    // 7. Scan the same day with the freshly published signatures — the
    //    handle from step 3 picked up the seal without being re-issued.
    let mut detected = 0;
    let mut missed = 0;
    let mut false_positives = 0;
    for sample in &day {
        let hit = matcher.scan(&sample.html);
        match (sample.truth, hit) {
            (GroundTruth::Malicious(_), Some(_)) => detected += 1,
            (GroundTruth::Malicious(_), None) => missed += 1,
            (GroundTruth::Benign, Some(_)) => false_positives += 1,
            (GroundTruth::Benign, None) => {}
        }
    }
    println!(
        "\nsame-day scan: {detected} detected, {missed} missed, {false_positives} false positives"
    );
    Ok(())
}
