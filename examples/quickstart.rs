//! Quickstart: seed Kizzle with known kits, feed it one day of grayware,
//! and look at the signatures it emits.
//!
//! ```bash
//! cargo run --release -p kizzle-eval --example quickstart
//! ```

use kizzle::{KizzleCompiler, KizzleConfig, ReferenceCorpus};
use kizzle_corpus::{GraywareStream, GroundTruth, SimDate, StreamConfig};

fn main() {
    // 1. The day we are processing and the pipeline configuration (the
    //    paper's operating point: DBSCAN at 0.10, 200-token signatures).
    let date = SimDate::new(2014, 8, 5);
    let config = KizzleConfig::paper();

    // 2. Kizzle must be seeded with known, unpacked exploit kits — it
    //    automates the analyst's signature writing, it does not replace the
    //    analyst's initial triage.
    let reference = ReferenceCorpus::seeded_from_models(date, &config);
    let mut compiler = KizzleCompiler::new(config, reference);

    // 3. One day of "grayware": mostly benign pages with a minority of
    //    exploit-kit landing pages (synthetic stand-in for the paper's IE
    //    telemetry stream).
    let stream = GraywareStream::new(StreamConfig {
        samples_per_day: 200,
        seed: 7,
        ..StreamConfig::default()
    });
    let day = stream.generate_day(date);
    println!("processing {} samples captured on {date}", day.len());

    // 4. Cluster, label, and compile signatures.
    let report = compiler.process_day(date, &day);
    println!("{report}");
    for verdict in &report.verdicts {
        println!(
            "  cluster of {:3} samples -> {}",
            verdict.size,
            match verdict.family {
                Some(family) => format!(
                    "{family} (overlap {:.0}%, signature {})",
                    verdict.overlap * 100.0,
                    verdict.signature_name.as_deref().unwrap_or("none")
                ),
                None => "benign / unknown".to_string(),
            }
        );
    }

    // 5. The emitted signatures, in the regex-like rendering of the paper's
    //    Fig. 10.
    println!("\ndeployed signatures:");
    for labeled in compiler.signatures().iter() {
        let rendered = labeled.signature.render();
        let preview: String = rendered.chars().take(120).collect();
        println!(
            "  [{}] {} ({} chars): {preview}…",
            labeled.label,
            labeled.signature.name,
            labeled.signature.rendered_len()
        );
    }

    // 6. Scan the same day with the freshly compiled signatures.
    let mut detected = 0;
    let mut missed = 0;
    let mut false_positives = 0;
    for sample in &day {
        let hit = compiler.scan(&sample.html);
        match (sample.truth, hit) {
            (GroundTruth::Malicious(_), Some(_)) => detected += 1,
            (GroundTruth::Malicious(_), None) => missed += 1,
            (GroundTruth::Benign, Some(_)) => false_positives += 1,
            (GroundTruth::Benign, None) => {}
        }
    }
    println!(
        "\nsame-day scan: {detected} detected, {missed} missed, {false_positives} false positives"
    );
}
