//! Property-based tests for the JavaScript lexer.

use kizzle_js::{tokenize, tokenize_document, Lexer, TokenClass};
use proptest::prelude::*;

proptest! {
    /// The lexer never panics on arbitrary input and every token's text is a
    /// substring of the source at its reported offset.
    #[test]
    fn lexer_total_and_offsets_consistent(src in "\\PC*") {
        let tokens: Vec<_> = Lexer::new(&src).collect();
        for t in &tokens {
            prop_assert!(t.offset <= src.len());
            prop_assert!(src[t.offset..].starts_with(&t.text),
                "token {:?} not found at offset {}", t.text, t.offset);
        }
    }

    /// Token offsets are strictly increasing, so tokens never overlap.
    #[test]
    fn token_offsets_strictly_increase(src in "\\PC{0,400}") {
        let tokens: Vec<_> = Lexer::new(&src).collect();
        for pair in tokens.windows(2) {
            prop_assert!(pair[0].offset + pair[0].text.len() <= pair[1].offset);
        }
    }

    /// Tokenizing the space-joined token texts reproduces the same abstract
    /// class sequence (abstraction is a fixed point under re-lexing), for
    /// well-formed identifier/number/punctuation programs.
    #[test]
    fn abstraction_fixed_point(words in prop::collection::vec("[a-z]{1,8}|[0-9]{1,4}|[=+;(),]", 0..40)) {
        let src = words.join(" ");
        let first = tokenize(&src);
        let second = tokenize(&first.joined());
        prop_assert_eq!(first.classes(), second.classes());
    }

    /// String literals always lex as a single String token regardless of the
    /// (quote-free) content.
    #[test]
    fn string_literals_are_atomic(content in "[a-zA-Z0-9#@ _.%-]{0,64}") {
        let src = format!("x = \"{content}\";");
        let stream = tokenize(&src);
        let strings: Vec<_> = stream
            .tokens()
            .iter()
            .filter(|t| t.class == TokenClass::String)
            .collect();
        prop_assert_eq!(strings.len(), 1);
        prop_assert_eq!(strings[0].unquoted(), content.as_str());
    }

    /// HTML document extraction + tokenization never panics, and the number
    /// of tokens equals the sum over the embedded scripts.
    #[test]
    fn document_tokenization_total(bodies in prop::collection::vec("[a-z0-9 =+;()]{0,40}", 0..5)) {
        let html: String = bodies
            .iter()
            .map(|b| format!("<script>{b}</script>"))
            .collect();
        let doc_stream = tokenize_document(&html);
        let expected: usize = bodies.iter().map(|b| tokenize(b).len()).sum();
        if !bodies.is_empty() {
            prop_assert_eq!(doc_stream.len(), expected);
        }
    }

    /// Class codes always round-trip through `from_code`.
    #[test]
    fn class_codes_roundtrip(src in "\\PC{0,200}") {
        for code in tokenize(&src).class_codes() {
            prop_assert!(TokenClass::from_code(code).is_some());
        }
    }
}
