//! Extraction of inline JavaScript from HTML documents.
//!
//! A Kizzle *sample* is "a complete HTML document, including all inline
//! script elements" (paper §III). The telemetry source captured full pages,
//! so the first processing step is pulling every inline `<script>` body (and
//! inline event handlers) out of the markup before tokenization.
//!
//! The extractor is deliberately tag-level and lenient rather than a full
//! HTML5 parser: grayware markup is frequently malformed, and all we need is
//! the script payloads.

use crate::stream::TokenStream;
use crate::tokenize;

/// One inline script block found in a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineScript {
    /// Byte offset of the script body within the original document.
    pub offset: usize,
    /// The raw script body (between `<script ...>` and `</script>`).
    pub body: String,
    /// Value of the `src` attribute if present (external scripts have no
    /// body to analyze, but the URL itself is useful for ground-truthing).
    pub src: Option<String>,
}

/// Extract all `<script>` elements from an HTML document.
///
/// External scripts (`src=`) are returned with an empty body; inline event
/// handlers (`onload="..."`) are *not* extracted here — exploit kits deliver
/// their packer inside script elements.
///
/// # Examples
///
/// ```
/// let scripts = kizzle_js::extract_scripts("<html><script>var a=1;</script></html>");
/// assert_eq!(scripts.len(), 1);
/// assert_eq!(scripts[0].body, "var a=1;");
/// ```
#[must_use]
pub fn extract_scripts(html: &str) -> Vec<InlineScript> {
    let mut scripts = Vec::new();
    let lower = html.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut pos = 0;

    while let Some(rel) = lower[pos..].find("<script") {
        let tag_start = pos + rel;
        // Find the end of the opening tag.
        let Some(tag_end_rel) = lower[tag_start..].find('>') else {
            break;
        };
        let tag_end = tag_start + tag_end_rel;
        let open_tag = &html[tag_start..=tag_end];
        let src = extract_attr(open_tag, "src");

        // Self-closing script tag.
        if open_tag.trim_end_matches('>').ends_with('/') {
            scripts.push(InlineScript {
                offset: tag_end + 1,
                body: String::new(),
                src,
            });
            pos = tag_end + 1;
            continue;
        }

        let body_start = tag_end + 1;
        let (body_end, next_pos) = match lower[body_start..].find("</script") {
            Some(rel_close) => {
                let close = body_start + rel_close;
                let after = lower[close..]
                    .find('>')
                    .map_or(lower.len(), |i| close + i + 1);
                (close, after)
            }
            None => (lower.len(), lower.len()),
        };
        debug_assert!(body_end <= bytes.len());

        scripts.push(InlineScript {
            offset: body_start,
            body: html[body_start..body_end].to_string(),
            src,
        });
        pos = next_pos;
    }
    scripts
}

/// Pull a (single- or double-quoted, or unquoted) attribute value out of an
/// opening tag. Case-insensitive on the attribute name.
fn extract_attr(tag: &str, name: &str) -> Option<String> {
    let lower = tag.to_ascii_lowercase();
    let mut search = 0;
    while let Some(rel) = lower[search..].find(name) {
        let at = search + rel;
        // Must be preceded by whitespace to be an attribute name.
        let prev_ok = at == 0 || lower.as_bytes()[at - 1].is_ascii_whitespace();
        let after = at + name.len();
        let rest = lower[after..].trim_start();
        if prev_ok && rest.starts_with('=') {
            let value_part = &tag[tag.len() - rest.len()..][1..];
            let value_part = value_part.trim_start();
            let value = if let Some(stripped) = value_part.strip_prefix('"') {
                stripped.split('"').next().unwrap_or("")
            } else if let Some(stripped) = value_part.strip_prefix('\'') {
                stripped.split('\'').next().unwrap_or("")
            } else {
                value_part
                    .split(|c: char| c.is_ascii_whitespace() || c == '>')
                    .next()
                    .unwrap_or("")
            };
            return Some(value.to_string());
        }
        search = after;
    }
    None
}

/// Tokenize every inline script in an HTML document and concatenate the
/// results into a single [`TokenStream`].
///
/// If the input does not look like HTML at all (no `<script` tag), it is
/// treated as bare JavaScript — the grayware feed contains both.
///
/// # Examples
///
/// ```
/// let stream = kizzle_js::tokenize_document("<script>var a=1;</script><script>b()</script>");
/// assert!(stream.len() >= 8);
/// // Bare JavaScript also works:
/// let bare = kizzle_js::tokenize_document("var a = 1;");
/// assert_eq!(bare.len(), 5);
/// ```
#[must_use]
pub fn tokenize_document(document: &str) -> TokenStream {
    let scripts = extract_scripts(document);
    if scripts.is_empty() {
        return tokenize(document);
    }
    let mut out = TokenStream::default();
    for script in &scripts {
        if !script.body.trim().is_empty() {
            out.extend(tokenize(&script.body));
        }
    }
    out
}

/// [`tokenize_document`] truncated to a `cap`-token prefix — the one
/// definition of the cap semantics shared by the compiler's ingest
/// tokenization and the matcher's scan path, which must agree on it for
/// compiled signatures to fire on scanned documents.
#[must_use]
pub fn tokenize_document_capped(document: &str, cap: usize) -> TokenStream {
    let stream = tokenize_document(document);
    if stream.len() > cap {
        stream.slice(0, cap)
    } else {
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_single_inline_script() {
        let html = "<html><head><script type=\"text/javascript\">var a = 1;</script></head></html>";
        let s = extract_scripts(html);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].body, "var a = 1;");
        assert_eq!(s[0].src, None);
    }

    #[test]
    fn extracts_multiple_scripts_in_order() {
        let html = "<script>first()</script><p>text</p><script>second()</script>";
        let s = extract_scripts(html);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].body, "first()");
        assert_eq!(s[1].body, "second()");
        assert!(s[0].offset < s[1].offset);
    }

    #[test]
    fn external_script_src_is_captured() {
        let html = r#"<script src="http://evil.example/kit.js"></script>"#;
        let s = extract_scripts(html);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].body, "");
        assert_eq!(s[0].src.as_deref(), Some("http://evil.example/kit.js"));
    }

    #[test]
    fn src_single_quoted_and_unquoted() {
        let s = extract_scripts("<script src='a.js'></script>");
        assert_eq!(s[0].src.as_deref(), Some("a.js"));
        let s = extract_scripts("<script src=b.js></script>");
        assert_eq!(s[0].src.as_deref(), Some("b.js"));
    }

    #[test]
    fn case_insensitive_tags() {
        let html = "<SCRIPT>var A=1;</SCRIPT>";
        let s = extract_scripts(html);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].body, "var A=1;");
    }

    #[test]
    fn unterminated_script_runs_to_end() {
        let html = "<script>var a = 1; // no closing tag";
        let s = extract_scripts(html);
        assert_eq!(s.len(), 1);
        assert!(s[0].body.contains("var a = 1;"));
    }

    #[test]
    fn self_closing_script_has_empty_body() {
        let s = extract_scripts(r#"<script src="x.js"/> <script>y()</script>"#);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].body, "");
        assert_eq!(s[1].body, "y()");
    }

    #[test]
    fn script_bodies_preserve_original_case() {
        let html = "<script>VAR_NAME = 'MixedCase';</script>";
        let s = extract_scripts(html);
        assert!(s[0].body.contains("MixedCase"));
    }

    #[test]
    fn no_scripts_in_plain_html() {
        assert!(extract_scripts("<html><body>hello</body></html>").is_empty());
    }

    #[test]
    fn tokenize_document_bare_js_fallback() {
        let stream = tokenize_document("function f() { return 1; }");
        assert!(stream.classes().contains(&crate::TokenClass::Keyword));
    }

    #[test]
    fn tokenize_document_concatenates_scripts() {
        let a = tokenize_document("<script>var a=1;</script>");
        let b = tokenize_document("<script>var a=1;</script><script>var b=2;</script>");
        assert!(b.len() > a.len());
    }

    #[test]
    fn script_inside_commentish_markup_is_still_found() {
        // Lenient extraction intentionally does not honor HTML comments:
        // kits routinely hide script tags inside bogus comment structures.
        let html = "<!-- <script>x()</script> -->";
        let s = extract_scripts(html);
        assert_eq!(s.len(), 1);
    }
}
