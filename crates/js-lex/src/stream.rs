//! Tokenized samples: the unit the clustering and signature stages consume.

use crate::token::{Token, TokenClass};
use std::fmt;

/// A tokenized JavaScript sample.
///
/// Keeps the concrete [`Token`]s alongside a pre-computed vector of abstract
/// [`TokenClass`]es so the clustering stage (which compares millions of token
/// pairs) never has to re-derive the abstraction.
///
/// # Examples
///
/// ```
/// let stream = kizzle_js::tokenize("f('x')");
/// assert_eq!(stream.len(), 4);
/// assert_eq!(stream.class_codes().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenStream {
    tokens: Vec<Token>,
    classes: Vec<TokenClass>,
}

impl TokenStream {
    /// Build a stream from already-scanned tokens.
    #[must_use]
    pub fn from_tokens(tokens: Vec<Token>) -> Self {
        let classes = tokens.iter().map(|t| t.class).collect();
        TokenStream { tokens, classes }
    }

    /// Number of tokens in the sample.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the sample contained no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The concrete tokens.
    #[must_use]
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The abstract token classes, parallel to [`TokenStream::tokens`].
    #[must_use]
    pub fn classes(&self) -> &[TokenClass] {
        &self.classes
    }

    /// The abstract token classes as a compact byte string, suitable for
    /// fast edit-distance computation.
    #[must_use]
    pub fn class_codes(&self) -> Vec<u8> {
        self.classes.iter().map(|c| c.code()).collect()
    }

    /// Iterate over the concrete tokens.
    pub fn iter(&self) -> std::slice::Iter<'_, Token> {
        self.tokens.iter()
    }

    /// Concrete texts of all tokens, in order.
    #[must_use]
    pub fn texts(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Reconstruct an approximation of the source by joining token texts
    /// with single spaces. Used for diagnostics and winnowing of unpacked
    /// payloads, where original whitespace is irrelevant.
    #[must_use]
    pub fn joined(&self) -> String {
        let mut out = String::with_capacity(self.tokens.iter().map(|t| t.text.len() + 1).sum());
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&t.text);
        }
        out
    }

    /// A sub-stream covering tokens `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> TokenStream {
        TokenStream::from_tokens(self.tokens[start..start + len].to_vec())
    }

    /// Render the stream as the two-column table used in the paper's Fig. 8.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Token            Class\n");
        for t in &self.tokens {
            let text = if t.text.len() > 16 {
                format!(
                    "{}…",
                    &t.text[..t
                        .text
                        .char_indices()
                        .take(15)
                        .last()
                        .map_or(0, |(i, c)| i + c.len_utf8())]
                )
            } else {
                t.text.clone()
            };
            out.push_str(&format!("{text:<16} {}\n", t.class));
        }
        out
    }
}

impl FromIterator<Token> for TokenStream {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        TokenStream::from_tokens(iter.into_iter().collect())
    }
}

impl Extend<Token> for TokenStream {
    fn extend<I: IntoIterator<Item = Token>>(&mut self, iter: I) {
        for tok in iter {
            self.classes.push(tok.class);
            self.tokens.push(tok);
        }
    }
}

impl IntoIterator for TokenStream {
    type Item = Token;
    type IntoIter = std::vec::IntoIter<Token>;

    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl<'a> IntoIterator for &'a TokenStream {
    type Item = &'a Token;
    type IntoIter = std::slice::Iter<'a, Token>;

    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.joined())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    #[test]
    fn parallel_vectors_stay_in_sync() {
        let s = tokenize("var a = f(1, 'x');");
        assert_eq!(s.tokens().len(), s.classes().len());
        for (t, c) in s.tokens().iter().zip(s.classes()) {
            assert_eq!(t.class, *c);
        }
    }

    #[test]
    fn class_codes_match_classes() {
        let s = tokenize("a+1");
        assert_eq!(
            s.class_codes(),
            s.classes().iter().map(|c| c.code()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn joined_roundtrip_token_count() {
        let s = tokenize("var x = 'abc' + 1;");
        let rejoined = tokenize(&s.joined());
        assert_eq!(s.classes(), rejoined.classes());
    }

    #[test]
    fn slice_extracts_window() {
        let s = tokenize("a b c d e");
        let w = s.slice(1, 3);
        assert_eq!(w.texts(), vec!["b", "c", "d"]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let s = tokenize("a b");
        let _ = s.slice(1, 5);
    }

    #[test]
    fn collect_and_extend() {
        let s = tokenize("a b");
        let mut collected: TokenStream = s.clone().into_iter().collect();
        collected.extend(tokenize("c"));
        assert_eq!(collected.texts(), vec!["a", "b", "c"]);
        assert_eq!(collected.classes().len(), 3);
    }

    #[test]
    fn table_rendering_contains_classes() {
        let s = tokenize(r#"var Euur1V = this["l9D"]"#);
        let table = s.to_table();
        assert!(table.contains("var"));
        assert!(table.contains("Keyword"));
        assert!(table.contains("Identifier"));
        assert!(table.contains("String"));
    }

    #[test]
    fn table_truncates_very_long_tokens() {
        let long = format!("\"{}\"", "a".repeat(100));
        let s = tokenize(&long);
        let table = s.to_table();
        assert!(table.contains('…'));
    }

    #[test]
    fn display_is_joined() {
        let s = tokenize("a = 1");
        assert_eq!(s.to_string(), "a = 1");
    }

    #[test]
    fn empty_stream() {
        let s = tokenize("   /* only a comment */ ");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.joined().is_empty());
    }
}
