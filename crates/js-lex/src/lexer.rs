//! A lenient JavaScript scanner.
//!
//! The scanner is intentionally forgiving: grayware streams contain broken,
//! truncated and adversarial JavaScript, and the Kizzle pipeline must keep
//! going. Characters that cannot start any token are skipped and reported
//! through [`Lexer::errors`], never by aborting the scan.

use crate::stream::TokenStream;
use crate::token::{is_keyword, Token, TokenClass};
use std::fmt;

/// An error encountered while scanning; scanning continues past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first so the scanner can do a
/// longest-match scan.
const MULTI_PUNCT: &[&str] = &[
    ">>>=", "===", "!==", ">>>", "**=", "...", "<<=", ">>=", "&&=", "||=", "??=", "=>", "==", "!=",
    "<=", ">=", "&&", "||", "??", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<",
    ">>", "**",
];

/// Single-character punctuation.
const SINGLE_PUNCT: &str = "{}()[];,<>+-*/%&|^!~?:=.@#";

/// A streaming JavaScript scanner producing [`Token`]s.
///
/// # Examples
///
/// ```
/// use kizzle_js::{Lexer, TokenClass};
/// let tokens: Vec<_> = Lexer::new("foo(1, 'bar')").collect();
/// assert_eq!(tokens.len(), 6);
/// assert_eq!(tokens[0].class, TokenClass::Identifier);
/// ```
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    source: &'a str,
    bytes: &'a [u8],
    pos: usize,
    errors: Vec<LexError>,
    /// Class of the previous significant token, used to disambiguate regex
    /// literals from division.
    prev: Option<TokenClass>,
    prev_text_allows_regex: bool,
}

impl<'a> Lexer<'a> {
    /// Create a scanner over `source`.
    #[must_use]
    pub fn new(source: &'a str) -> Self {
        Lexer {
            source,
            bytes: source.as_bytes(),
            pos: 0,
            errors: Vec::new(),
            prev: None,
            prev_text_allows_regex: true,
        }
    }

    /// Errors accumulated so far (skipped characters, unterminated
    /// literals). The scan itself never fails.
    #[must_use]
    pub fn errors(&self) -> &[LexError] {
        &self.errors
    }

    /// Consume the scanner and produce a [`TokenStream`] of all remaining
    /// tokens.
    #[must_use]
    pub fn into_stream(mut self) -> TokenStream {
        let mut tokens = Vec::new();
        while let Some(tok) = self.next_token() {
            tokens.push(tok);
        }
        TokenStream::from_tokens(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn error(&mut self, offset: usize, message: impl Into<String>) {
        // Bound the error log so adversarial input cannot balloon memory.
        if self.errors.len() < 1024 {
            self.errors.push(LexError {
                offset,
                message: message.into(),
            });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos < self.bytes.len() {
                        if self.bytes[self.pos] == b'*' && self.peek_at(1) == Some(b'/') {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.error(start, "unterminated block comment");
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let b = self.peek()?;

            let token = if b == b'"' || b == b'\'' || b == b'`' {
                Some(self.scan_string(b))
            } else if b.is_ascii_digit()
                || (b == b'.' && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()))
            {
                Some(self.scan_number())
            } else if b == b'_' || b == b'$' || b.is_ascii_alphabetic() || b >= 0x80 {
                Some(self.scan_word())
            } else if b == b'/' && self.regex_allowed() {
                Some(self.scan_regex())
            } else if let Some(tok) = self.scan_punct() {
                Some(tok)
            } else {
                self.error(start, format!("skipping unexpected byte 0x{b:02x}"));
                self.pos += 1;
                None
            };

            if let Some(tok) = token {
                self.prev = Some(tok.class);
                self.prev_text_allows_regex = match tok.class {
                    TokenClass::Punctuation => !matches!(tok.text.as_str(), ")" | "]" | "}"),
                    TokenClass::Keyword => true,
                    _ => false,
                };
                return Some(tok);
            }
            // Otherwise we skipped a bad byte; try again.
        }
    }

    /// A `/` starts a regex literal only where an expression is expected.
    fn regex_allowed(&self) -> bool {
        match self.prev {
            None => true,
            Some(TokenClass::Punctuation) | Some(TokenClass::Keyword) => {
                self.prev_text_allows_regex
            }
            _ => false,
        }
    }

    fn scan_string(&mut self, quote: u8) -> Token {
        let start = self.pos;
        self.pos += 1;
        let mut terminated = false;
        while let Some(b) = self.peek() {
            if b == b'\\' {
                self.pos += 2.min(self.bytes.len() - self.pos);
                continue;
            }
            if b == quote {
                self.pos += 1;
                terminated = true;
                break;
            }
            // Template literals may span lines; ordinary strings that hit a
            // newline are treated as (sloppily) terminated, which matches how
            // packers emit long single-line strings anyway.
            if b == b'\n' && quote != b'`' {
                break;
            }
            self.pos += 1;
        }
        if !terminated {
            self.error(start, "unterminated string literal");
        }
        Token::new(TokenClass::String, &self.source[start..self.pos], start)
    }

    fn scan_number(&mut self) -> Token {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
        } else {
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let mark = self.pos;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                } else {
                    // Not an exponent after all (`1e` followed by identifier).
                    self.pos = mark;
                }
            }
        }
        Token::new(TokenClass::Number, &self.source[start..self.pos], start)
    }

    fn scan_word(&mut self) -> Token {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'_' || b == b'$' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.source[start..self.pos];
        let class = if is_keyword(text) {
            TokenClass::Keyword
        } else {
            TokenClass::Identifier
        };
        Token::new(class, text, start)
    }

    fn scan_regex(&mut self) -> Token {
        let start = self.pos;
        self.pos += 1; // opening '/'
        let mut in_class = false;
        let mut terminated = false;
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.pos += 2.min(self.bytes.len() - self.pos);
                    continue;
                }
                b'[' => in_class = true,
                b']' => in_class = false,
                b'/' if !in_class => {
                    self.pos += 1;
                    terminated = true;
                    break;
                }
                b'\n' => break,
                _ => {}
            }
            self.pos += 1;
        }
        if !terminated {
            // Not a real regex (e.g. stray '/'); fall back to punctuation.
            self.pos = start + 1;
            return Token::new(TokenClass::Punctuation, "/", start);
        }
        // Flags.
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        Token::new(TokenClass::Regex, &self.source[start..self.pos], start)
    }

    fn scan_punct(&mut self) -> Option<Token> {
        let start = self.pos;
        let rest = &self.source[self.pos..];
        for cand in MULTI_PUNCT {
            if rest.starts_with(cand) {
                self.pos += cand.len();
                return Some(Token::new(TokenClass::Punctuation, *cand, start));
            }
        }
        let b = self.peek()?;
        if SINGLE_PUNCT.as_bytes().contains(&b) {
            self.pos += 1;
            return Some(Token::new(
                TokenClass::Punctuation,
                &self.source[start..self.pos],
                start,
            ));
        }
        None
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        self.next_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(src: &str) -> Vec<TokenClass> {
        Lexer::new(src).map(|t| t.class).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        Lexer::new(src).map(|t| t.text).collect()
    }

    #[test]
    fn simple_statement() {
        use TokenClass::*;
        assert_eq!(
            classes("var x = 42;"),
            vec![Keyword, Identifier, Punctuation, Number, Punctuation]
        );
    }

    #[test]
    fn string_literals_single_and_double() {
        use TokenClass::*;
        assert_eq!(classes(r#"'a' + "b""#), vec![String, Punctuation, String]);
        assert_eq!(texts(r#"'a'"#), vec!["'a'"]);
    }

    #[test]
    fn string_with_escapes() {
        let toks = texts(r#""a\"b" x"#);
        assert_eq!(toks[0], r#""a\"b""#);
        assert_eq!(toks[1], "x");
    }

    #[test]
    fn unterminated_string_is_error_but_scan_continues() {
        let mut lexer = Lexer::new("\"abc\nvar x");
        let toks: Vec<_> = (&mut lexer).collect();
        assert!(toks.iter().any(|t| t.class == TokenClass::Keyword));
        // Re-scan to check the error is recorded.
        let mut lexer = Lexer::new("\"abc\nvar x");
        while lexer.next_token().is_some() {}
        assert!(!lexer.errors().is_empty());
    }

    #[test]
    fn numbers_decimal_hex_float_exponent() {
        assert_eq!(
            texts("1 0xFF 3.14 1e10 2.5e-3 .5"),
            vec!["1", "0xFF", "3.14", "1e10", "2.5e-3", ".5"]
        );
        assert!(classes("0xDEADbeef")
            .iter()
            .all(|c| *c == TokenClass::Number));
    }

    #[test]
    fn exponent_backtracks_when_not_a_number() {
        // `1e` followed by something that is not a digit: `1` then identifier `ex`.
        let t = texts("1ex");
        assert_eq!(t, vec!["1", "ex"]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            classes("// comment\nvar x /* block */ = 1"),
            vec![
                TokenClass::Keyword,
                TokenClass::Identifier,
                TokenClass::Punctuation,
                TokenClass::Number
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_reports_error() {
        let mut lexer = Lexer::new("var x /* never closed");
        while lexer.next_token().is_some() {}
        assert!(lexer
            .errors()
            .iter()
            .any(|e| e.message.contains("block comment")));
    }

    #[test]
    fn multi_char_punctuation_longest_match() {
        assert_eq!(texts("a === b"), vec!["a", "===", "b"]);
        assert_eq!(texts("a >>>= b"), vec!["a", ">>>=", "b"]);
        assert_eq!(texts("x=>y"), vec!["x", "=>", "y"]);
    }

    #[test]
    fn regex_literal_vs_division() {
        // After `=` a regex is expected.
        let toks = texts("x = /ab[c/]+/g;");
        assert!(toks.contains(&"/ab[c/]+/g".to_string()));
        // After an identifier `/` is division.
        let toks = texts("a / b / c");
        assert_eq!(toks, vec!["a", "/", "b", "/", "c"]);
    }

    #[test]
    fn regex_after_punctuation_and_keywords() {
        let toks: Vec<_> = Lexer::new("return /abc/.test(x)").collect();
        assert_eq!(toks[1].class, TokenClass::Regex);
        let toks: Vec<_> = Lexer::new("f(/abc/)").collect();
        assert_eq!(toks[2].class, TokenClass::Regex);
    }

    #[test]
    fn stray_slash_falls_back_to_punctuation() {
        let toks = texts("= / x");
        assert_eq!(toks, vec!["=", "/", "x"]);
    }

    #[test]
    fn unicode_identifiers_survive() {
        let toks: Vec<_> = Lexer::new("var ümlaut = 1").collect();
        assert_eq!(toks[1].class, TokenClass::Identifier);
        assert_eq!(toks[1].text, "ümlaut");
    }

    #[test]
    fn dollar_and_underscore_identifiers() {
        use TokenClass::*;
        assert_eq!(
            classes("$ _x $y1"),
            vec![Identifier, Identifier, Identifier]
        );
    }

    #[test]
    fn template_literal_spans_newline() {
        let toks = texts("`a\nb` x");
        assert_eq!(toks[0], "`a\nb`");
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks: Vec<_> = Lexer::new("ab  cd").collect();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn garbage_bytes_are_skipped_with_errors() {
        let mut lexer = Lexer::new("a \u{0007} b");
        let toks: Vec<_> = (&mut lexer).collect();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn error_log_is_bounded() {
        let junk: String = "\u{0001}".repeat(5000);
        let mut lexer = Lexer::new(&junk);
        while lexer.next_token().is_some() {}
        assert!(lexer.errors().len() <= 1024);
    }

    #[test]
    fn nuclear_packer_snippet_lexes() {
        // Condensed from paper Fig. 4(b).
        let src = r#"
            getter = function(a){ return a; };
            thiscopy = this;
            doc = thiscopy[thiscopy["getter"]("document")];
            evl = thiscopy["getter"]("ev #333366 al");
            thiscopy[win["replace"](bgc,"")][evl["replace"](bgc, "")](payload);
        "#;
        let toks: Vec<_> = Lexer::new(src).collect();
        assert!(toks.len() > 40);
        assert!(toks.iter().any(|t| t.text == "\"ev #333366 al\""));
    }

    #[test]
    fn rig_packer_snippet_lexes() {
        // Condensed from paper Fig. 4(a).
        let src = r#"
            var buffer=""; var delim="y6";
            function collect(text) { buffer += text; }
            collect("47 y642y6100y6");
            pieces = buffer.split(delim);
            for (var i=0; i<pieces.length; i++) {
                screlem.text += String.fromCharCode(pieces[i]);
            }
            document.body.appendChild(screlem);
        "#;
        let classes: Vec<_> = Lexer::new(src).map(|t| t.class).collect();
        assert!(classes.contains(&TokenClass::Keyword));
        assert!(classes.contains(&TokenClass::String));
        assert!(classes.contains(&TokenClass::Number));
    }
}
