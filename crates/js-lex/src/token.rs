//! Concrete tokens and the abstract token-class alphabet.

use std::fmt;

/// The abstract token alphabet used by Kizzle's clustering stage.
///
/// The paper abstracts concrete JavaScript into `Keyword`, `Identifier`,
/// `Punctuation` and `String` (Fig. 8). We additionally keep `Number` and
/// `Regex` as distinct classes: exploit-kit packers lean heavily on numeric
/// charcode payloads (RIG) and `RegExp` replacement (Sweet Orange), and
/// keeping them distinct from identifiers sharpens both the clustering
/// distance and the generated signatures without reintroducing
/// attacker-controlled noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TokenClass {
    /// A reserved word (`var`, `function`, `return`, ...).
    Keyword,
    /// Any non-keyword identifier, including `this`, property names used
    /// bare, and unicode identifiers.
    Identifier,
    /// Single- or multi-character operators, brackets and separators.
    Punctuation,
    /// A string literal (single, double quoted or template literal).
    String,
    /// A numeric literal (decimal, hex, octal, float, exponent).
    Number,
    /// A regular-expression literal.
    Regex,
}

impl TokenClass {
    /// All token classes, in their canonical order.
    pub const ALL: [TokenClass; 6] = [
        TokenClass::Keyword,
        TokenClass::Identifier,
        TokenClass::Punctuation,
        TokenClass::String,
        TokenClass::Number,
        TokenClass::Regex,
    ];

    /// A one-byte code for the class, used when a token string must be
    /// embedded into a compact `Vec<u8>` (e.g. for fast edit distance).
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The inverse of [`TokenClass::code`].
    ///
    /// Returns `None` for byte values outside the alphabet.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// A short, stable display name matching the paper's Fig. 8 vocabulary.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TokenClass::Keyword => "Keyword",
            TokenClass::Identifier => "Identifier",
            TokenClass::Punctuation => "Punctuation",
            TokenClass::String => "String",
            TokenClass::Number => "Number",
            TokenClass::Regex => "Regex",
        }
    }
}

impl fmt::Display for TokenClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete token: its abstract class, its exact source text, and where it
/// was found.
///
/// Signature generation needs the concrete text (`"ev#333399al"`), while the
/// clustering stage only looks at [`Token::class`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Abstract class of the token.
    pub class: TokenClass,
    /// The exact source text of the token, including string quotes.
    pub text: std::string::String,
    /// Byte offset of the first character in the original source.
    pub offset: usize,
}

impl Token {
    /// Create a new token.
    #[must_use]
    pub fn new(class: TokenClass, text: impl Into<std::string::String>, offset: usize) -> Self {
        Token {
            class,
            text: text.into(),
            offset,
        }
    }

    /// The token's text with surrounding string quotes removed.
    ///
    /// AV engines normalize away quotation marks before matching (paper
    /// §III-C), so signature generation works on the unquoted value.
    #[must_use]
    pub fn unquoted(&self) -> &str {
        if self.class == TokenClass::String && self.text.len() >= 2 {
            let bytes = self.text.as_bytes();
            let first = bytes[0];
            let last = bytes[self.text.len() - 1];
            if (first == b'"' || first == b'\'' || first == b'`') && first == last {
                return &self.text[1..self.text.len() - 1];
            }
        }
        &self.text
    }

    /// Length of the token's source text in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if the token text is empty (never produced by the lexer, but
    /// kept for completeness of the API).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.text, self.class)
    }
}

/// The set of JavaScript reserved words recognized as [`TokenClass::Keyword`].
///
/// This list covers ES5 plus the handful of ES6 keywords observed in the
/// wild in exploit-kit code; `this` is deliberately *not* included because
/// the paper's Fig. 8 classifies it as an identifier.
pub const KEYWORDS: &[&str] = &[
    "break",
    "case",
    "catch",
    "class",
    "const",
    "continue",
    "debugger",
    "default",
    "delete",
    "do",
    "else",
    "export",
    "extends",
    "finally",
    "for",
    "function",
    "if",
    "import",
    "in",
    "instanceof",
    "let",
    "new",
    "return",
    "super",
    "switch",
    "throw",
    "try",
    "typeof",
    "var",
    "void",
    "while",
    "with",
    "yield",
];

/// Returns true if `word` is a JavaScript reserved word.
#[must_use]
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table_is_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "KEYWORDS must stay sorted");
    }

    #[test]
    fn keyword_lookup() {
        assert!(is_keyword("var"));
        assert!(is_keyword("function"));
        assert!(is_keyword("new"));
        assert!(!is_keyword("this"), "paper treats `this` as Identifier");
        assert!(!is_keyword("eval"));
        assert!(!is_keyword("document"));
    }

    #[test]
    fn class_codes_roundtrip() {
        for class in TokenClass::ALL {
            assert_eq!(TokenClass::from_code(class.code()), Some(class));
        }
        assert_eq!(TokenClass::from_code(200), None);
    }

    #[test]
    fn unquoted_strips_matching_quotes_only() {
        let t = Token::new(TokenClass::String, "\"l9D\"", 0);
        assert_eq!(t.unquoted(), "l9D");
        let t = Token::new(TokenClass::String, "'x'", 0);
        assert_eq!(t.unquoted(), "x");
        let t = Token::new(TokenClass::Identifier, "\"notastring\"", 0);
        assert_eq!(t.unquoted(), "\"notastring\"");
        let t = Token::new(TokenClass::String, "\"mismatch'", 0);
        assert_eq!(t.unquoted(), "\"mismatch'");
    }

    #[test]
    fn display_matches_figure_8_layout() {
        let t = Token::new(TokenClass::Keyword, "var", 0);
        assert_eq!(t.to_string(), "var Keyword");
    }

    #[test]
    fn token_len_and_empty() {
        let t = Token::new(TokenClass::Identifier, "abc", 3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
