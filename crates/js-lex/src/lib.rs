//! # kizzle-js — JavaScript tokenization for the Kizzle signature compiler
//!
//! Kizzle (Stock, Livshits, Zorn — DSN 2016) abstracts every incoming
//! JavaScript sample into a stream of *token classes* before clustering.
//! This removes the superficial noise exploit-kit packers introduce
//! (randomized identifiers, rotated string delimiters, renamed helpers)
//! while preserving the structural shape of the program, which is what the
//! clustering and signature-generation stages operate on (paper §III-A,
//! Fig. 8).
//!
//! This crate provides:
//!
//! * [`Lexer`] — a scanner for the JavaScript subset exploit-kit landing
//!   pages use (strings, numbers, identifiers/keywords, punctuation,
//!   comments, regex literals), producing concrete [`Token`]s.
//! * [`TokenClass`] — the abstract token alphabet used by the clustering
//!   stage.
//! * [`TokenStream`] — a tokenized sample: parallel vectors of abstract
//!   classes (for edit-distance clustering) and concrete lexemes (for
//!   signature generation).
//! * [`html`] — extraction of inline `<script>` bodies from complete HTML
//!   documents, because a Kizzle *sample* is a full HTML page.
//!
//! ## Example
//!
//! ```
//! use kizzle_js::{tokenize, TokenClass};
//!
//! let stream = tokenize(r#"var Euur1V = this["l9D"]("ev#333399al");"#);
//! let classes: Vec<TokenClass> = stream.classes().to_vec();
//! assert_eq!(classes[0], TokenClass::Keyword);      // var
//! assert_eq!(classes[1], TokenClass::Identifier);   // Euur1V
//! assert_eq!(classes[2], TokenClass::Punctuation);  // =
//! assert!(classes.contains(&TokenClass::String));   // "l9D"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod html;
pub mod lexer;
pub mod stream;
pub mod token;

pub use html::{extract_scripts, tokenize_document, tokenize_document_capped};
pub use lexer::{LexError, Lexer};
pub use stream::TokenStream;
pub use token::{Token, TokenClass};

/// Tokenize a JavaScript source string into a [`TokenStream`].
///
/// Unlexable bytes are skipped (the Kizzle pipeline must be robust to the
/// malformed and adversarial input found in grayware); this function never
/// fails. Use [`Lexer`] directly if you need error reporting.
///
/// # Examples
///
/// ```
/// let stream = kizzle_js::tokenize("var x = 1 + 2;");
/// assert_eq!(stream.len(), 7);
/// ```
pub fn tokenize(source: &str) -> TokenStream {
    Lexer::new(source).into_stream()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_is_lenient_on_garbage() {
        let stream = tokenize("var x = \u{0001}\u{0002} 1;");
        assert!(stream.len() >= 5);
    }

    #[test]
    fn paper_figure_8_tokenization() {
        // Fig. 8 of the paper tokenizes:
        //   var Euur1V = this["l9D"]("ev#333399al")
        let stream = tokenize(r#"var Euur1V = this["l9D"]("ev#333399al")"#);
        let got: Vec<TokenClass> = stream.classes().to_vec();
        use TokenClass::*;
        assert_eq!(
            got,
            vec![
                Keyword,     // var
                Identifier,  // Euur1V
                Punctuation, // =
                Identifier,  // this
                Punctuation, // [
                String,      // "l9D"
                Punctuation, // ]
                Punctuation, // (
                String,      // "ev#333399al"
                Punctuation, // )
            ]
        );
    }
}
