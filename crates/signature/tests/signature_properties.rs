//! Property-based tests for signature generation and matching.

use kizzle_js::{tokenize, Token, TokenStream};
use kizzle_signature::generate::{find_common_window, generate_signature};
use kizzle_signature::verify::nearest_in_stream;
use kizzle_signature::{
    CharClass, Element, ScanPipeline, Signature, SignatureConfig, SignatureSet,
};
use kizzle_snapshot::{Decoder, Encoder};
use proptest::prelude::*;

/// Generate a cluster of "packed variants": a fixed structural skeleton with
/// randomized identifiers and string payloads, the same shape the corpus
/// packers produce.
fn variant(ids: &[String], payload: &str) -> String {
    format!(
        r#"var {a} = ""; var {b} = "{payload}"; {a} = {b}.split("{sep}"); doc[{a}]({b});"#,
        a = ids[0],
        b = ids[1],
        sep = "zz",
        payload = payload,
    )
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{2,7}"
}

/// A deliberately tiny vocabulary so generated signatures collide: many
/// signatures anchor on the *same* literal (shared buckets), some literals
/// are prefixes of others (overlapping automaton paths), and `ab`/`xy`
/// sit below `MIN_ANCHOR_LEN` (their signatures take the unanchored
/// fallback unless another literal qualifies).
const VOCAB: &[&str] = &[
    "decode",
    "decoder",
    "payload",
    "this",
    "ab",
    "xy",
    "fromCharCode",
    "split",
    "eval",
];

/// Map an integer seed to an element: mostly vocabulary literals (so
/// anchors collide), otherwise a class with a small length range. A
/// deterministic mapping keeps the generators within the vendored
/// proptest stand-in's strategy surface (vec + integer ranges).
fn element_from_seed(seed: u32) -> Element {
    let pick = seed / 8;
    if seed % 8 < 5 {
        Element::Literal(VOCAB[pick as usize % VOCAB.len()].to_string())
    } else {
        const CLASSES: [CharClass; 4] = [
            CharClass::Lower,
            CharClass::Digits,
            CharClass::AlphaNum,
            CharClass::Any,
        ];
        let class = CLASSES[pick as usize % CLASSES.len()];
        let min_len = 1 + (pick / 4) as usize % 3;
        Element::Class {
            class,
            min_len,
            max_len: min_len + (pick / 12) as usize % 5,
        }
    }
}

fn element_strategy() -> impl Strategy<Value = Element> {
    (0u32..1_000_000).prop_map(element_from_seed)
}

fn signature_set_strategy() -> impl Strategy<Value = SignatureSet> {
    prop::collection::vec(prop::collection::vec(element_strategy(), 1..5), 0..12).prop_map(
        |element_lists| {
            let mut set = SignatureSet::new();
            for (i, elements) in element_lists.into_iter().enumerate() {
                set.add(
                    if i % 2 == 0 { "Even" } else { "Odd" },
                    Signature::new(format!("prop.sig{i}"), elements, 1),
                );
            }
            set
        },
    )
}

/// Map an integer seed to a document word: mostly vocabulary (so anchors
/// hit often), otherwise digit runs or short lowercase noise.
fn word_from_seed(seed: u32) -> String {
    let pick = seed / 8;
    match seed % 8 {
        0..=4 => VOCAB[pick as usize % VOCAB.len()].to_string(),
        5 => format!("{}", pick % 1_000_000),
        _ => {
            let len = 1 + pick as usize % 6;
            let mut n = pick;
            (0..len)
                .map(|_| {
                    let c = char::from(b'a' + (n % 26) as u8);
                    n = n / 26 + 7;
                    c
                })
                .collect()
        }
    }
}

/// Documents over the same vocabulary plus digits and noise words —
/// including the empty document.
fn document_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..1_000_000, 0..30).prop_map(|seeds| {
        seeds
            .into_iter()
            .map(word_from_seed)
            .collect::<Vec<_>>()
            .join(" ")
    })
}

/// Full, unbanded semi-global DP — the independent oracle the banded
/// kernel is held to (mirrors `verify::nearest_naive`, reimplemented here
/// because that one is crate-private).
fn naive_nearest(elements: &[Element], tokens: &[Token]) -> usize {
    let m = elements.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut best = m;
    for token in tokens {
        let mut cur = vec![0usize; m + 1];
        for j in 1..=m {
            let sub = usize::from(!elements[j - 1].matches_token(token));
            cur[j] = (prev[j - 1] + sub).min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        best = best.min(cur[m]);
        prev = cur;
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A signature generated from a cluster matches every sample of that
    /// cluster (the generator and matcher share the same token model, so
    /// this must hold unconditionally).
    #[test]
    fn generated_signature_matches_its_own_cluster(
        id_sets in prop::collection::vec(prop::collection::vec(ident_strategy(), 2), 2..6),
        payloads in prop::collection::vec("[0-9]{8,20}", 2..6),
    ) {
        let n = id_sets.len().min(payloads.len());
        let samples: Vec<TokenStream> = (0..n)
            .map(|i| tokenize(&variant(&id_sets[i], &payloads[i])))
            .collect();
        let config = SignatureConfig { min_tokens: 4, ..SignatureConfig::default() };
        let sig = generate_signature("prop.sig", &samples, &config).expect("signature");
        for (i, sample) in samples.iter().enumerate() {
            prop_assert!(sig.matches_stream(sample), "sample {i} not matched");
        }
    }

    /// The common window never exceeds the configured cap or the shortest
    /// sample, and its reported start offsets are valid in every sample.
    #[test]
    fn common_window_is_well_formed(
        bodies in prop::collection::vec("[a-z]{1,6}( = [0-9]{1,4};)?", 3..20),
        extra in "[a-z]{1,6}",
        max_tokens in 4usize..60,
    ) {
        let base = bodies.join(" ");
        let samples = [tokenize(&format!("{base} var {extra} = 1;")),
            tokenize(&base)];
        let refs: Vec<&TokenStream> = samples.iter().collect();
        let config = SignatureConfig { max_tokens, ..SignatureConfig::default() };
        if let Some(window) = find_common_window(&refs, &config) {
            prop_assert!(window.len <= max_tokens);
            for (sample, start) in samples.iter().zip(&window.starts) {
                prop_assert!(start + window.len <= sample.len());
            }
            // The window's class sequence is identical across samples.
            let first = samples[0].class_codes()[window.starts[0]..window.starts[0] + window.len].to_vec();
            for (sample, start) in samples.iter().zip(&window.starts) {
                prop_assert_eq!(
                    &sample.class_codes()[*start..*start + window.len],
                    first.as_slice()
                );
            }
        }
    }

    /// Character-class inference always returns a class that accepts every
    /// input value, and the chosen class is one of the predefined templates.
    #[test]
    fn char_class_inference_is_sound(values in prop::collection::vec("[ -~]{1,12}", 1..8)) {
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let class = CharClass::infer(refs.iter().copied()).expect("non-empty input");
        for v in &refs {
            prop_assert!(class.accepts_all(v), "{class:?} rejects {v:?}");
        }
        prop_assert!(CharClass::TEMPLATES.contains(&class));
    }

    /// The tentpole property: the staged pipeline scan (Aho–Corasick
    /// anchors → batched prefilter → literal confirmation) returns exactly
    /// the linear oracle's answer on arbitrary sets and documents —
    /// including duplicate and overlapping anchor literals, signatures
    /// whose only literals sit below `MIN_ANCHOR_LEN`, and empty streams.
    #[test]
    fn staged_scan_equals_linear_oracle(
        set in signature_set_strategy(),
        docs in prop::collection::vec(document_strategy(), 1..6),
    ) {
        for doc in &docs {
            let stream = tokenize(doc);
            let staged = set.scan_stream(&stream).map(|s| s.signature.name.as_str());
            let linear = set
                .scan_stream_linear(&stream)
                .map(|s| s.signature.name.as_str());
            prop_assert_eq!(staged, linear, "doc: {:?}", doc);
        }
        // The empty stream, explicitly.
        prop_assert!(set.scan_stream(&tokenize("")).is_none());
    }

    /// A set and pipeline shipped through the codec scan byte-identically
    /// to the originals on arbitrary documents.
    #[test]
    fn codec_roundtrip_preserves_scan_results(
        set in signature_set_strategy(),
        docs in prop::collection::vec(document_strategy(), 1..4),
    ) {
        let mut enc = Encoder::new();
        set.encode_into(&mut enc);
        let set_bytes = enc.into_bytes();
        let mut enc = Encoder::new();
        set.seal().encode_into(&mut enc);
        let pipeline_bytes = enc.into_bytes();

        let mut dec = Decoder::new(&set_bytes);
        let mut restored = SignatureSet::decode_from(&mut dec).expect("set decodes");
        dec.finish().expect("set fully consumed");
        let mut dec = Decoder::new(&pipeline_bytes);
        let pipeline =
            ScanPipeline::decode_from(&mut dec, restored.len()).expect("pipeline decodes");
        dec.finish().expect("pipeline fully consumed");
        prop_assert_eq!(&restored, &set);
        prop_assert!(restored.attach_pipeline(pipeline));

        for doc in &docs {
            let stream = tokenize(doc);
            prop_assert_eq!(
                restored.scan_stream(&stream).map(|s| s.signature.name.as_str()),
                set.scan_stream(&stream).map(|s| s.signature.name.as_str()),
                "doc: {:?}", doc
            );
        }
    }

    /// The banded verify kernel agrees with the full naive DP at every
    /// cutoff, and `scan_stream_nearest` reports the lexicographically
    /// first (edits, index) pair.
    #[test]
    fn banded_verify_agrees_with_naive_dp(
        elements in prop::collection::vec(element_strategy(), 1..6),
        doc in document_strategy(),
    ) {
        let stream = tokenize(&doc);
        let want = naive_nearest(&elements, stream.tokens());
        for cutoff in 0..=elements.len() + 2 {
            let got = nearest_in_stream(&elements, stream.tokens(), cutoff);
            if want <= cutoff {
                prop_assert_eq!(got, Some(want), "cutoff {}", cutoff);
            } else {
                prop_assert_eq!(got, None, "cutoff {}", cutoff);
            }
        }
    }

    /// Whole-set nearest scan: the winner is the earliest signature at the
    /// minimum distance, and distance 0 coincides with the exact scan.
    #[test]
    fn nearest_scan_is_lexicographically_minimal(
        set in signature_set_strategy(),
        doc in document_strategy(),
    ) {
        let stream = tokenize(&doc);
        let max_edits = 3usize;
        let brute = set
            .iter()
            .enumerate()
            .map(|(i, s)| (naive_nearest(&s.signature.elements, stream.tokens()), i))
            .filter(|&(d, _)| d <= max_edits)
            .min();
        let got = set.scan_stream_nearest(&stream, max_edits);
        match brute {
            Some((edits, index)) => {
                let got = got.expect("a signature within budget");
                prop_assert_eq!((got.edits, got.index), (edits, index));
                if edits == 0 {
                    let exact = set.scan_stream(&stream).expect("exact match at 0 edits");
                    prop_assert_eq!(&set.get(got.index).unwrap().signature.name,
                        &exact.signature.name);
                }
            }
            None => prop_assert!(got.is_none()),
        }
    }

    /// Rendering never panics and its length is stable (the Fig. 12 metric
    /// is well-defined).
    #[test]
    fn rendering_is_stable(
        ids in prop::collection::vec(ident_strategy(), 2),
        payload in "[0-9]{8,16}",
    ) {
        let samples = vec![tokenize(&variant(&ids, &payload))];
        let config = SignatureConfig { min_tokens: 4, ..SignatureConfig::default() };
        let sig = generate_signature("render.sig", &samples, &config).expect("signature");
        prop_assert_eq!(sig.render(), sig.render());
        prop_assert_eq!(sig.rendered_len(), sig.render().chars().count());
        prop_assert!(sig.rendered_len() > 0);
    }
}
