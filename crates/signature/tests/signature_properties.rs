//! Property-based tests for signature generation and matching.

use kizzle_js::{tokenize, TokenStream};
use kizzle_signature::generate::{find_common_window, generate_signature};
use kizzle_signature::{CharClass, SignatureConfig};
use proptest::prelude::*;

/// Generate a cluster of "packed variants": a fixed structural skeleton with
/// randomized identifiers and string payloads, the same shape the corpus
/// packers produce.
fn variant(ids: &[String], payload: &str) -> String {
    format!(
        r#"var {a} = ""; var {b} = "{payload}"; {a} = {b}.split("{sep}"); doc[{a}]({b});"#,
        a = ids[0],
        b = ids[1],
        sep = "zz",
        payload = payload,
    )
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{2,7}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A signature generated from a cluster matches every sample of that
    /// cluster (the generator and matcher share the same token model, so
    /// this must hold unconditionally).
    #[test]
    fn generated_signature_matches_its_own_cluster(
        id_sets in prop::collection::vec(prop::collection::vec(ident_strategy(), 2), 2..6),
        payloads in prop::collection::vec("[0-9]{8,20}", 2..6),
    ) {
        let n = id_sets.len().min(payloads.len());
        let samples: Vec<TokenStream> = (0..n)
            .map(|i| tokenize(&variant(&id_sets[i], &payloads[i])))
            .collect();
        let config = SignatureConfig { min_tokens: 4, ..SignatureConfig::default() };
        let sig = generate_signature("prop.sig", &samples, &config).expect("signature");
        for (i, sample) in samples.iter().enumerate() {
            prop_assert!(sig.matches_stream(sample), "sample {i} not matched");
        }
    }

    /// The common window never exceeds the configured cap or the shortest
    /// sample, and its reported start offsets are valid in every sample.
    #[test]
    fn common_window_is_well_formed(
        bodies in prop::collection::vec("[a-z]{1,6}( = [0-9]{1,4};)?", 3..20),
        extra in "[a-z]{1,6}",
        max_tokens in 4usize..60,
    ) {
        let base = bodies.join(" ");
        let samples = [tokenize(&format!("{base} var {extra} = 1;")),
            tokenize(&base)];
        let refs: Vec<&TokenStream> = samples.iter().collect();
        let config = SignatureConfig { max_tokens, ..SignatureConfig::default() };
        if let Some(window) = find_common_window(&refs, &config) {
            prop_assert!(window.len <= max_tokens);
            for (sample, start) in samples.iter().zip(&window.starts) {
                prop_assert!(start + window.len <= sample.len());
            }
            // The window's class sequence is identical across samples.
            let first = samples[0].class_codes()[window.starts[0]..window.starts[0] + window.len].to_vec();
            for (sample, start) in samples.iter().zip(&window.starts) {
                prop_assert_eq!(
                    &sample.class_codes()[*start..*start + window.len],
                    first.as_slice()
                );
            }
        }
    }

    /// Character-class inference always returns a class that accepts every
    /// input value, and the chosen class is one of the predefined templates.
    #[test]
    fn char_class_inference_is_sound(values in prop::collection::vec("[ -~]{1,12}", 1..8)) {
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let class = CharClass::infer(refs.iter().copied()).expect("non-empty input");
        for v in &refs {
            prop_assert!(class.accepts_all(v), "{class:?} rejects {v:?}");
        }
        prop_assert!(CharClass::TEMPLATES.contains(&class));
    }

    /// Rendering never panics and its length is stable (the Fig. 12 metric
    /// is well-defined).
    #[test]
    fn rendering_is_stable(
        ids in prop::collection::vec(ident_strategy(), 2),
        payload in "[0-9]{8,16}",
    ) {
        let samples = vec![tokenize(&variant(&ids, &payload))];
        let config = SignatureConfig { min_tokens: 4, ..SignatureConfig::default() };
        let sig = generate_signature("render.sig", &samples, &config).expect("signature");
        prop_assert_eq!(sig.render(), sig.render());
        prop_assert_eq!(sig.rendered_len(), sig.render().chars().count());
        prop_assert!(sig.rendered_len() > 0);
    }
}
