//! Scan-stage counter consistency under threading (ISSUE 8 acceptance):
//! the per-thread batched tallies in `matcher::scan_metrics` must fold
//! into the global registry **losslessly** — two identical multi-threaded
//! scan storms produce identical counter deltas once the scan threads
//! have exited (their thread-local tallies flush on drop) and the main
//! thread has called [`kizzle_signature::flush_scan_counters`].
//!
//! This file is its own test binary on purpose: it flips the
//! process-global telemetry gate, and integration tests compile
//! separately, so the toggle cannot race with the rest of the suite.

use kizzle_js::tokenize;
use kizzle_signature::{CharClass, Element, Signature, SignatureSet};

/// A small set engineered to exercise every counted stage: shared-anchor
/// literals (automaton hits + prefilters + verification), a signature
/// whose literals are all below the anchor length (the unanchored
/// fallback lane), and classes so verification has real work.
fn counting_set() -> SignatureSet {
    let mut set = SignatureSet::new();
    set.add(
        "Angler",
        Signature::new(
            "angler.decode",
            vec![
                Element::Literal("decode".into()),
                Element::Class {
                    class: CharClass::Digits,
                    min_len: 2,
                    max_len: 8,
                },
                Element::Literal("payload".into()),
            ],
            1,
        ),
    );
    set.add(
        "Angler",
        Signature::new(
            "angler.eval",
            vec![
                Element::Literal("eval".into()),
                Element::Literal("fromCharCode".into()),
            ],
            0,
        ),
    );
    set.add(
        "Nuclear",
        Signature::new(
            "nuclear.split",
            vec![
                Element::Literal("payload".into()),
                Element::Literal("split".into()),
                Element::Class {
                    class: CharClass::Lower,
                    min_len: 1,
                    max_len: 6,
                },
            ],
            1,
        ),
    );
    // Both literals are shorter than the anchor minimum: this one rides
    // the unanchored fallback on every scan.
    set.add(
        "Odd",
        Signature::new(
            "odd.short",
            vec![Element::Literal("ab".into()), Element::Literal("xy".into())],
            0,
        ),
    );
    set
}

/// Documents chosen to hit, near-miss, and miss: anchors that fire with
/// failing prefilters, anchors that fire and verify, and no anchors at
/// all (the unanchored signature still gets checked each time).
fn documents() -> Vec<String> {
    vec![
        "decode 1234 payload done".to_string(),
        "eval fromCharCode now".to_string(),
        "payload split abc".to_string(),
        "decode alone without the rest".to_string(),
        "payload payload payload decode".to_string(),
        "nothing relevant here at all".to_string(),
        "ab xy".to_string(),
        String::new(),
        "split payload backwards".to_string(),
        "decode 99 payload eval fromCharCode".to_string(),
        // Every literal of angler.decode present, digits too, but in the
        // wrong order: the histogram gate passes, the position-exact
        // batched window check rejects (counted as a prefilter reject).
        "payload 12 decode".to_string(),
    ]
}

const COUNTERS: &[&str] = &[
    "kizzle_scans_total",
    "kizzle_scan_anchor_hits_total",
    "kizzle_scan_prefilter_checked_total",
    "kizzle_scan_prefilter_rejected_total",
    "kizzle_scan_verify_confirmed_total",
    "kizzle_scan_verify_rejected_total",
    "kizzle_scan_unanchored_checked_total",
];

fn counter_values() -> Vec<u64> {
    COUNTERS
        .iter()
        .map(|name| kizzle_telemetry::counter(name).value())
        .collect()
}

/// One scan storm: `threads` workers each scan every document `rounds`
/// times against a shared set. Returns the registry deltas for all seven
/// scan counters, exact because worker tallies flush on thread exit and
/// the main thread flushes its own at the end.
fn storm_deltas(set: &SignatureSet, threads: usize, rounds: usize) -> Vec<u64> {
    let streams: Vec<_> = documents().iter().map(|d| tokenize(d)).collect();
    let before = counter_values();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let streams = &streams;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for stream in streams {
                        let _ = set.scan_stream(stream);
                    }
                }
                // Flush before the closure returns: `thread::scope` wakes
                // the waiter when the closure finishes, which does not
                // order this thread's TLS destructors (the drop-flush)
                // before the scope exits.
                kizzle_signature::flush_scan_counters();
            });
        }
    });
    // Workers flushed before exiting; the main thread did not scan, but
    // flushing it too is the documented belt-and-braces for long-lived
    // threads.
    kizzle_signature::flush_scan_counters();
    counter_values()
        .iter()
        .zip(&before)
        .map(|(after, before)| after - before)
        .collect()
}

#[test]
fn threaded_scan_counters_are_exact_and_repeatable() {
    kizzle_telemetry::set_enabled(true);
    let set = counting_set();
    let (threads, rounds) = (4, 25);

    let first = storm_deltas(&set, threads, rounds);
    let second = storm_deltas(&set, threads, rounds);
    assert_eq!(
        first, second,
        "identical storms must produce identical counter deltas"
    );

    let scans = (threads * rounds * documents().len()) as u64;
    assert_eq!(first[0], scans, "kizzle_scans_total counts every scan call");
    // The corpus is engineered so every reachable stage fires: anchors
    // hit, some candidates are rejected by prefilters, some confirm, and
    // the short-literal signature is checked unanchored. The exception is
    // verify_rejected: the batched window check is position-exact, so the
    // literal-text confirmation only rejects on a 32-bit hash collision —
    // unreachable from a natural corpus.
    for (name, delta) in COUNTERS.iter().zip(&first).skip(1) {
        if *name == "kizzle_scan_verify_rejected_total" {
            continue;
        }
        assert!(*delta > 0, "{name} never fired over the storm corpus");
    }
    // Every anchored candidate that reached the prefilters was either
    // rejected there or went to verification — nothing is dropped on the
    // floor between stages.
    let checked = first[2];
    let confirmed = first[4];
    let rejected_verify = first[5];
    assert!(
        confirmed + rejected_verify <= checked,
        "verification outcomes exceed prefilter-checked candidates"
    );
    kizzle_telemetry::set_enabled(false);
}
