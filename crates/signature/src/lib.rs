//! # kizzle-signature — structural signature generation and matching
//!
//! This crate implements the signature-creation algorithm of Kizzle
//! (paper §III-C, Figs. 9–10) and the matcher needed to apply the generated
//! signatures to new samples.
//!
//! Generation, given the packed samples of one malicious cluster:
//!
//! 1. **Common subsequence search** — binary-search the largest `N`
//!    (capped at 200 tokens) such that some window of `N` consecutive
//!    token *classes* occurs in every sample of the cluster and is unique
//!    within each sample ([`generate::find_common_window`]).
//! 2. **Per-offset generalization** — for each token offset of that window,
//!    collect the concrete strings observed across the samples (with string
//!    quotes removed, as AV normalization does). Offsets where every sample
//!    agrees become literals; the rest become character-class templates
//!    with observed length ranges, drawn from a predefined set
//!    (`[a-z]+`, `[a-zA-Z0-9]+`, ..., falling back to `.`), mirroring the
//!    paper's template-based regular-expression inference
//!    ([`generate::generalize`]).
//! 3. **Rendering** — signatures can be rendered in a regex-like textual
//!    form with named capture groups (Fig. 10) via [`Signature::render`];
//!    the rendered length in characters is the metric plotted in the
//!    paper's Fig. 12.
//!
//! Matching ([`matcher::SignatureSet`]) is token-structural: a document
//! matches a signature if some window of its token stream satisfies every
//! element of the signature in sequence. This is deliberately the same
//! representation the generator works in, so a signature is guaranteed to
//! match the samples it was generated from. At deployment scale (tens of
//! thousands of compounding daily signatures) the scan runs through a
//! staged pipeline — an Aho–Corasick anchor automaton
//! ([`automaton::AnchorAutomaton`]), batched per-window prefilters
//! ([`prefilter`]), and a literal-confirmation step — that returns
//! exactly the linear scan's answer at a per-document cost independent
//! of the signature count (see [`matcher`] for the full cost model).
//! [`verify`] adds a banded near-miss kernel behind
//! [`SignatureSet::scan_stream_nearest`].
//!
//! ## Example
//!
//! ```
//! use kizzle_signature::{generate::generate_signature, SignatureConfig};
//! use kizzle_js::tokenize;
//!
//! // Three variants of the same packer line (paper Fig. 9).
//! let samples = vec![
//!     tokenize(r#"Euur1V = this["l9D"]("ev#333399al");"#),
//!     tokenize(r#"jkb0hA = this["uqA"]("ev#ccff00al");"#),
//!     tokenize(r#"QB0Xk = this["k3LSC"]("ev#33cc00al");"#),
//! ];
//! let config = SignatureConfig { min_tokens: 4, ..SignatureConfig::default() };
//! let sig = generate_signature("NEK.sig1", &samples, &config).expect("signature");
//! for s in &samples {
//!     assert!(sig.matches_stream(s));
//! }
//! println!("{}", sig.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod generate;
pub mod matcher;
pub mod pattern;
pub mod prefilter;
pub mod verify;

pub use automaton::AnchorAutomaton;
pub use generate::{generate_signature, GenerateError};
pub use matcher::{flush_scan_counters, LabeledSignature, ScanPipeline, SignatureSet};
pub use pattern::{CharClass, Element, Signature, SignatureConfig};
pub use verify::NearestMatch;
