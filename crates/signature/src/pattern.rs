//! Signature representation: elements, character classes, rendering and
//! per-stream matching.

use kizzle_js::{Token, TokenStream};
use serde::Serialize;
use std::fmt;

/// Configuration of signature generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SignatureConfig {
    /// Upper bound on the common-subsequence length, in tokens. The paper
    /// caps this at 200.
    pub max_tokens: usize,
    /// Minimum subsequence length for a signature to be emitted; shorter
    /// common subsequences are discarded as too generic (paper §III-C,
    /// "short sequences are discarded").
    pub min_tokens: usize,
    /// Maximum number of samples examined per cluster when generating a
    /// signature; large clusters are subsampled evenly to bound cost.
    pub max_samples: usize,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            max_tokens: 200,
            min_tokens: 10,
            max_samples: 32,
        }
    }
}

/// A character-class template used to generalize varying token values,
/// drawn from the predefined set the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CharClass {
    /// `[a-z]`
    Lower,
    /// `[A-Z]`
    Upper,
    /// `[a-zA-Z]`
    Alpha,
    /// `[0-9]`
    Digits,
    /// `[0-9a-f]`
    HexLower,
    /// `[0-9a-zA-Z]`
    AlphaNum,
    /// `[0-9a-zA-Z_.:/?=&-]` — identifiers, URLs and similar "word-ish" text.
    Wordlike,
    /// Any character (`.`).
    Any,
}

impl CharClass {
    /// The predefined templates, most specific first; inference picks the
    /// first one that accepts every observed value.
    pub const TEMPLATES: [CharClass; 8] = [
        CharClass::Lower,
        CharClass::Upper,
        CharClass::Digits,
        CharClass::HexLower,
        CharClass::Alpha,
        CharClass::AlphaNum,
        CharClass::Wordlike,
        CharClass::Any,
    ];

    /// Does this class accept the character?
    #[must_use]
    pub fn accepts(self, c: char) -> bool {
        match self {
            CharClass::Lower => c.is_ascii_lowercase(),
            CharClass::Upper => c.is_ascii_uppercase(),
            CharClass::Alpha => c.is_ascii_alphabetic(),
            CharClass::Digits => c.is_ascii_digit(),
            CharClass::HexLower => c.is_ascii_digit() || ('a'..='f').contains(&c),
            CharClass::AlphaNum => c.is_ascii_alphanumeric(),
            CharClass::Wordlike => c.is_ascii_alphanumeric() || "_.:/?=&-".contains(c),
            CharClass::Any => true,
        }
    }

    /// Does this class accept every character of the string?
    #[must_use]
    pub fn accepts_all(self, s: &str) -> bool {
        s.chars().all(|c| self.accepts(c))
    }

    /// The regex-style source text of the class.
    #[must_use]
    pub fn regex_text(self) -> &'static str {
        match self {
            CharClass::Lower => "[a-z]",
            CharClass::Upper => "[A-Z]",
            CharClass::Alpha => "[a-zA-Z]",
            CharClass::Digits => "[0-9]",
            CharClass::HexLower => "[0-9a-f]",
            CharClass::AlphaNum => "[0-9a-zA-Z]",
            CharClass::Wordlike => "[0-9a-zA-Z_.:/?=&-]",
            CharClass::Any => ".",
        }
    }

    /// The most specific template accepting every value in `values`.
    ///
    /// Returns `None` when `values` is empty.
    #[must_use]
    pub fn infer<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Option<CharClass> {
        let values: Vec<&str> = values.into_iter().collect();
        if values.is_empty() {
            return None;
        }
        CharClass::TEMPLATES
            .into_iter()
            .find(|class| values.iter().all(|v| class.accepts_all(v)))
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.regex_text())
    }
}

/// One element of a signature, corresponding to one token offset of the
/// common window.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub enum Element {
    /// The token's (quote-stripped) text is identical in every sample.
    Literal(String),
    /// The token's text varies; it is constrained to a character class and
    /// an observed length range.
    Class {
        /// The inferred character class.
        class: CharClass,
        /// Minimum observed length in characters.
        min_len: usize,
        /// Maximum observed length in characters.
        max_len: usize,
    },
}

impl Element {
    /// Does this element accept a concrete token?
    ///
    /// String quotes are stripped before comparison, mirroring the AV
    /// normalization step the paper mentions.
    #[must_use]
    pub fn matches_token(&self, token: &Token) -> bool {
        let text = token.unquoted();
        match self {
            Element::Literal(expected) => expected == text,
            Element::Class {
                class,
                min_len,
                max_len,
            } => {
                let len = text.chars().count();
                len >= *min_len && len <= *max_len && class.accepts_all(text)
            }
        }
    }
}

/// A structural signature: a named sequence of elements generated from one
/// malicious cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Signature {
    /// Name of the signature (e.g. `NEK.sig3`).
    pub name: String,
    /// The element sequence.
    pub elements: Vec<Element>,
    /// How many samples the signature was generated from.
    pub support: usize,
}

impl Signature {
    /// Create a signature.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, elements: Vec<Element>, support: usize) -> Self {
        assert!(
            !elements.is_empty(),
            "a signature needs at least one element"
        );
        Signature {
            name: name.into(),
            elements,
            support,
        }
    }

    /// Number of elements (tokens) in the signature.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the signature has no elements (never constructed; kept for
    /// API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Does the signature match anywhere in a token stream?
    #[must_use]
    pub fn matches_stream(&self, stream: &TokenStream) -> bool {
        self.find_in(stream).is_some()
    }

    /// The first token offset at which the signature matches, if any.
    #[must_use]
    pub fn find_in(&self, stream: &TokenStream) -> Option<usize> {
        let tokens = stream.tokens();
        let n = self.elements.len();
        if tokens.len() < n {
            return None;
        }
        'outer: for start in 0..=tokens.len() - n {
            for (element, token) in self.elements.iter().zip(&tokens[start..start + n]) {
                if !element.matches_token(token) {
                    continue 'outer;
                }
            }
            return Some(start);
        }
        None
    }

    /// Does the signature match a raw HTML/JavaScript document?
    #[must_use]
    pub fn matches_document(&self, document: &str) -> bool {
        self.matches_stream(&kizzle_js::tokenize_document(document))
    }

    /// Render the signature as a regex-like string with named capture
    /// groups, in the style of the paper's Fig. 10. The rendered length in
    /// characters is the metric of Fig. 12.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut var_index = 0usize;
        for element in &self.elements {
            match element {
                Element::Literal(text) => out.push_str(&escape_regex(text)),
                Element::Class {
                    class,
                    min_len,
                    max_len,
                } => {
                    let quantifier = if min_len == max_len {
                        format!("{{{min_len}}}")
                    } else {
                        format!("{{{min_len},{max_len}}}")
                    };
                    out.push_str(&format!(
                        "(?<var{var_index}>{}{quantifier})",
                        class.regex_text()
                    ));
                    var_index += 1;
                }
            }
        }
        out
    }

    /// Rendered length in characters (the y-axis of the paper's Fig. 12).
    #[must_use]
    pub fn rendered_len(&self) -> usize {
        self.render().chars().count()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.render())
    }
}

/// Escape regex metacharacters in a literal.
fn escape_regex(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if "\\^$.|?*+()[]{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_js::tokenize;

    #[test]
    fn char_class_inference_prefers_specific_templates() {
        assert_eq!(CharClass::infer(["abc", "zzz"]), Some(CharClass::Lower));
        assert_eq!(CharClass::infer(["abc", "ZZZ"]), Some(CharClass::Alpha));
        assert_eq!(CharClass::infer(["123", "456"]), Some(CharClass::Digits));
        assert_eq!(
            CharClass::infer(["1a2b", "ffff"]),
            Some(CharClass::HexLower)
        );
        assert_eq!(CharClass::infer(["a1B2", "Zz9"]), Some(CharClass::AlphaNum));
        assert_eq!(
            CharClass::infer(["http://x.com/a?b=1", "path_2"]),
            Some(CharClass::Wordlike)
        );
        assert_eq!(CharClass::infer(["ev#33al"]), Some(CharClass::Any));
        assert_eq!(CharClass::infer(std::iter::empty()), None);
    }

    #[test]
    fn element_matching_strips_quotes_and_checks_lengths() {
        let lit = Element::Literal("ev#333399al".to_string());
        let tok = kizzle_js::Token::new(kizzle_js::TokenClass::String, "\"ev#333399al\"", 0);
        assert!(lit.matches_token(&tok));

        let class = Element::Class {
            class: CharClass::AlphaNum,
            min_len: 3,
            max_len: 5,
        };
        let short = kizzle_js::Token::new(kizzle_js::TokenClass::Identifier, "ab", 0);
        let ok = kizzle_js::Token::new(kizzle_js::TokenClass::Identifier, "abc1", 0);
        let bad_chars = kizzle_js::Token::new(kizzle_js::TokenClass::Identifier, "a#b", 0);
        assert!(!class.matches_token(&short));
        assert!(class.matches_token(&ok));
        assert!(!class.matches_token(&bad_chars));
    }

    fn example_signature() -> Signature {
        // Fig. 9: [A-Za-z0-9]{5,6}=this\[[A-Za-z0-9]{3,5}\]\(.{11}\);
        Signature::new(
            "NEK.example",
            vec![
                Element::Class {
                    class: CharClass::AlphaNum,
                    min_len: 5,
                    max_len: 6,
                },
                Element::Literal("=".to_string()),
                Element::Literal("this".to_string()),
                Element::Literal("[".to_string()),
                Element::Class {
                    class: CharClass::AlphaNum,
                    min_len: 3,
                    max_len: 5,
                },
                Element::Literal("]".to_string()),
                Element::Literal("(".to_string()),
                Element::Class {
                    class: CharClass::Any,
                    min_len: 11,
                    max_len: 11,
                },
                Element::Literal(")".to_string()),
                Element::Literal(";".to_string()),
            ],
            3,
        )
    }

    #[test]
    fn figure_9_signature_matches_all_three_variants() {
        let sig = example_signature();
        for sample in [
            r#"Euur1V = this["l9D"]("ev#333399al");"#,
            r#"jkb0hA = this["uqA"]("ev#ccff00al");"#,
            r#"QB0Xk = this["k3LSC"]("ev#33cc00al");"#,
        ] {
            assert!(sig.matches_stream(&tokenize(sample)), "{sample}");
        }
    }

    #[test]
    fn figure_9_signature_rejects_structurally_different_code() {
        let sig = example_signature();
        assert!(!sig.matches_stream(&tokenize(r#"x = other("l9D")("ev#333399al");"#)));
        assert!(
            !sig.matches_stream(&tokenize(r#"Euur1V = this["l9D"]"#)),
            "truncated"
        );
        assert!(
            !sig.matches_stream(&tokenize(r#"Euur1V = this["l9D"]("short");"#)),
            "payload length differs"
        );
    }

    #[test]
    fn matching_works_in_the_middle_of_a_larger_document() {
        let sig = example_signature();
        let doc = format!(
            "<html><script>var pre = 1; {} var post = 2;</script></html>",
            r#"Euur1V = this["l9D"]("ev#333399al");"#
        );
        assert!(sig.matches_document(&doc));
        assert_eq!(sig.find_in(&kizzle_js::tokenize_document(&doc)), Some(5));
    }

    #[test]
    fn render_produces_figure_10_style_text() {
        let sig = example_signature();
        let text = sig.render();
        assert!(text.contains("(?<var0>[0-9a-zA-Z]{5,6})"));
        assert!(text.contains("this"));
        assert!(text.contains("\\["));
        assert!(text.contains("(?<var2>.{11})"));
        assert_eq!(sig.rendered_len(), text.chars().count());
        assert!(sig.to_string().starts_with("NEK.example:"));
    }

    #[test]
    fn render_escapes_metacharacters_in_literals() {
        let sig = Signature::new("x", vec![Element::Literal("a.b(c)*".to_string())], 1);
        assert_eq!(sig.render(), "a\\.b\\(c\\)\\*");
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_signature_panics() {
        let _ = Signature::new("empty", vec![], 0);
    }

    #[test]
    fn signature_shorter_streams_never_match() {
        let sig = example_signature();
        assert!(!sig.matches_stream(&tokenize("a = 1")));
        assert!(!sig.matches_stream(&tokenize("")));
    }

    #[test]
    fn default_config_matches_paper_cap() {
        let cfg = SignatureConfig::default();
        assert_eq!(cfg.max_tokens, 200);
        assert!(cfg.min_tokens >= 4);
    }
}
