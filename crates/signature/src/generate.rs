//! Signature generation from a malicious cluster (paper §III-C, Fig. 9).

use crate::pattern::{CharClass, Element, Signature, SignatureConfig};
use kizzle_js::TokenStream;
use std::collections::HashMap;
use std::fmt;

/// Why signature generation failed for a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The cluster contained no samples (or only empty token streams).
    EmptyCluster,
    /// No common unique token-class window of at least the configured
    /// minimum length exists across the samples.
    NoCommonSubsequence {
        /// The longest common unique window that was found (may be zero).
        longest_found: usize,
        /// The configured minimum.
        required: usize,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::EmptyCluster => f.write_str("cluster contains no usable samples"),
            GenerateError::NoCommonSubsequence {
                longest_found,
                required,
            } => write!(
                f,
                "no common unique token window of length >= {required} (longest found: {longest_found})"
            ),
        }
    }
}

impl std::error::Error for GenerateError {}

/// A common window: its length and its starting offset in every sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonWindow {
    /// Window length in tokens.
    pub len: usize,
    /// Start offset of the window in each sample (parallel to the input
    /// sample order).
    pub starts: Vec<usize>,
}

/// Find the longest window of consecutive token classes (capped at
/// `config.max_tokens`) that occurs in every sample and is unique within
/// each sample, using binary search over the window length as the paper
/// describes.
///
/// Returns `None` when no window of length at least 1 qualifies.
#[must_use]
pub fn find_common_window(
    samples: &[&TokenStream],
    config: &SignatureConfig,
) -> Option<CommonWindow> {
    if samples.is_empty() || samples.iter().any(|s| s.is_empty()) {
        return None;
    }
    let class_strings: Vec<Vec<u8>> = samples.iter().map(|s| s.class_codes()).collect();
    let shortest = class_strings.iter().map(Vec::len).min()?;
    let cap = config.max_tokens.min(shortest);
    if cap == 0 {
        return None;
    }

    // Binary search the largest feasible length in [1, cap].
    let mut lo = 1usize;
    let mut hi = cap;
    let mut best: Option<CommonWindow> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match window_of_length(&class_strings, mid) {
            Some(window) => {
                best = Some(window);
                lo = mid + 1;
            }
            None => {
                if mid == 1 {
                    break;
                }
                hi = mid - 1;
            }
        }
    }
    best
}

/// Is there a window of exactly `len` classes common to all samples and
/// unique in each? Returns the window's start offsets if so.
fn window_of_length(class_strings: &[Vec<u8>], len: usize) -> Option<CommonWindow> {
    // Index the windows of every sample: window -> occurrence starts.
    let mut per_sample: Vec<HashMap<&[u8], Vec<usize>>> = Vec::with_capacity(class_strings.len());
    for classes in class_strings {
        if classes.len() < len {
            return None;
        }
        let mut map: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for start in 0..=classes.len() - len {
            map.entry(&classes[start..start + len])
                .or_default()
                .push(start);
        }
        per_sample.push(map);
    }

    // Candidate windows come from the first sample; accept the first (in
    // source order) that is unique everywhere.
    let first = &class_strings[0];
    let mut seen: std::collections::HashSet<&[u8]> = std::collections::HashSet::new();
    for start in 0..=first.len() - len {
        let window = &first[start..start + len];
        if !seen.insert(window) {
            continue;
        }
        let unique_everywhere = per_sample.iter().all(|map| {
            map.get(window)
                .is_some_and(|positions| positions.len() == 1)
        });
        if unique_everywhere {
            let starts = per_sample.iter().map(|map| map[window][0]).collect();
            return Some(CommonWindow { len, starts });
        }
    }
    None
}

/// Generalize the common window into signature elements: literals where the
/// concrete (quote-stripped) value agrees across samples, character-class
/// templates with observed length ranges elsewhere.
#[must_use]
pub fn generalize(samples: &[&TokenStream], window: &CommonWindow) -> Vec<Element> {
    let mut elements = Vec::with_capacity(window.len);
    for offset in 0..window.len {
        let values: Vec<&str> = samples
            .iter()
            .zip(&window.starts)
            .map(|(sample, &start)| sample.tokens()[start + offset].unquoted())
            .collect();
        let all_equal = values.windows(2).all(|pair| pair[0] == pair[1]);
        if all_equal {
            elements.push(Element::Literal(values[0].to_string()));
        } else {
            let class = CharClass::infer(values.iter().copied()).unwrap_or(CharClass::Any);
            let min_len = values.iter().map(|v| v.chars().count()).min().unwrap_or(0);
            let max_len = values.iter().map(|v| v.chars().count()).max().unwrap_or(0);
            elements.push(Element::Class {
                class,
                min_len,
                max_len,
            });
        }
    }
    elements
}

/// Generate a signature from the packed samples of one malicious cluster.
///
/// Large clusters are subsampled evenly (up to `config.max_samples`) before
/// the search, which bounds the cost without biasing the window choice for
/// tight clusters.
///
/// # Errors
///
/// Returns [`GenerateError::EmptyCluster`] when there are no usable samples
/// and [`GenerateError::NoCommonSubsequence`] when the samples share no
/// sufficiently long unique window.
pub fn generate_signature(
    name: &str,
    samples: &[TokenStream],
    config: &SignatureConfig,
) -> Result<Signature, GenerateError> {
    let usable: Vec<&TokenStream> = samples.iter().filter(|s| !s.is_empty()).collect();
    if usable.is_empty() {
        return Err(GenerateError::EmptyCluster);
    }
    let subsampled: Vec<&TokenStream> = if usable.len() > config.max_samples {
        let step = usable.len().div_ceil(config.max_samples);
        usable.iter().step_by(step).copied().collect()
    } else {
        usable
    };

    let window =
        find_common_window(&subsampled, config).ok_or(GenerateError::NoCommonSubsequence {
            longest_found: 0,
            required: config.min_tokens,
        })?;
    if window.len < config.min_tokens {
        return Err(GenerateError::NoCommonSubsequence {
            longest_found: window.len,
            required: config.min_tokens,
        });
    }
    let elements = generalize(&subsampled, &window);
    Ok(Signature::new(name, elements, samples.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_js::tokenize;

    fn fig9_samples() -> Vec<TokenStream> {
        vec![
            tokenize(r#"Euur1V = this["l9D"]("ev#333399al");"#),
            tokenize(r#"jkb0hA = this["uqA"]("ev#ccff00al");"#),
            tokenize(r#"QB0Xk = this["k3LSC"]("ev#33cc00al");"#),
        ]
    }

    #[test]
    fn figure_9_cluster_produces_the_expected_structure() {
        let samples = fig9_samples();
        let config = SignatureConfig {
            min_tokens: 4,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("NEK.sig1", &samples, &config).unwrap();
        // All 10 tokens form the window; identifiers and the obfuscated
        // string generalize, punctuation and `this` stay literal.
        assert_eq!(sig.len(), 10);
        assert!(matches!(
            sig.elements[0],
            Element::Class {
                class: CharClass::AlphaNum,
                ..
            }
        ));
        assert_eq!(sig.elements[1], Element::Literal("=".to_string()));
        assert_eq!(sig.elements[2], Element::Literal("this".to_string()));
        assert!(matches!(sig.elements[4], Element::Class { .. }));
        assert!(matches!(
            sig.elements[8],
            Element::Literal(ref s) if s == ")"
        ));
        for sample in &samples {
            assert!(sig.matches_stream(sample));
        }
    }

    #[test]
    fn generated_signature_rejects_unrelated_code() {
        let samples = fig9_samples();
        let config = SignatureConfig {
            min_tokens: 4,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("NEK.sig1", &samples, &config).unwrap();
        assert!(!sig.matches_stream(&tokenize("function f(a) { return a + 1; }")));
        assert!(!sig.matches_stream(&tokenize(r#"x = window["open"]("http://a");"#)));
    }

    #[test]
    fn window_must_be_unique_in_every_sample() {
        // `f("x");` appears twice in the first sample, so the unique common
        // window is forced to include the distinguishing suffix.
        let samples = [
            tokenize(r#"f("x"); f("x"); var q = 3;"#),
            tokenize(r#"f("y"); var q = 3;"#),
        ];
        let refs: Vec<&TokenStream> = samples.iter().collect();
        let window = find_common_window(&refs, &SignatureConfig::default()).unwrap();
        // The chosen window must occur exactly once in sample 0.
        let w0 = &samples[0].class_codes()[window.starts[0]..window.starts[0] + window.len];
        let occurrences = samples[0]
            .class_codes()
            .windows(window.len)
            .filter(|w| *w == w0)
            .count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn cap_is_respected() {
        let body = "var x = f(1); ".repeat(100);
        let samples = [tokenize(&body), tokenize(&body)];
        let refs: Vec<&TokenStream> = samples.iter().collect();
        let config = SignatureConfig {
            max_tokens: 50,
            ..SignatureConfig::default()
        };
        if let Some(window) = find_common_window(&refs, &config) {
            assert!(window.len <= 50);
        }
    }

    #[test]
    fn repetitive_samples_have_no_unique_window() {
        // Every window of every length occurs many times: no signature.
        let samples = vec![
            tokenize(&"a(1); ".repeat(30)),
            tokenize(&"a(1); ".repeat(40)),
        ];
        let config = SignatureConfig {
            min_tokens: 3,
            ..SignatureConfig::default()
        };
        let err = generate_signature("x", &samples, &config).unwrap_err();
        assert!(matches!(err, GenerateError::NoCommonSubsequence { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn short_common_windows_are_discarded() {
        let samples = vec![tokenize("a = 1;"), tokenize("a = 1;")];
        let config = SignatureConfig {
            min_tokens: 50,
            ..SignatureConfig::default()
        };
        let err = generate_signature("x", &samples, &config).unwrap_err();
        assert_eq!(
            err,
            GenerateError::NoCommonSubsequence {
                longest_found: 4,
                required: 50
            }
        );
    }

    #[test]
    fn empty_cluster_is_an_error() {
        let err = generate_signature("x", &[], &SignatureConfig::default()).unwrap_err();
        assert_eq!(err, GenerateError::EmptyCluster);
        let err =
            generate_signature("x", &[tokenize("")], &SignatureConfig::default()).unwrap_err();
        assert_eq!(err, GenerateError::EmptyCluster);
    }

    #[test]
    fn single_sample_cluster_yields_an_all_literal_signature() {
        let samples = vec![tokenize(
            r#"collect("47y642y6100y6"); pieces = buffer.split(delim);"#,
        )];
        let config = SignatureConfig {
            min_tokens: 5,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("RIG.sig1", &samples, &config).unwrap();
        assert!(sig
            .elements
            .iter()
            .all(|e| matches!(e, Element::Literal(_))));
        assert!(sig.matches_stream(&samples[0]));
    }

    #[test]
    fn subsampling_large_clusters_still_matches_all_members() {
        let samples: Vec<TokenStream> = (0..100)
            .map(|i| tokenize(&format!(r#"id{i:03} = this["k{i:03}"]("ev#33al"); go();"#)))
            .collect();
        let config = SignatureConfig {
            min_tokens: 5,
            max_samples: 8,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("NEK.sub", &samples, &config).unwrap();
        assert_eq!(sig.support, 100);
        let matched = samples.iter().filter(|s| sig.matches_stream(s)).count();
        assert!(matched >= 95, "matched only {matched}/100");
    }

    #[test]
    fn longer_common_window_is_preferred() {
        // Samples share a long identical region; the window should extend
        // well beyond the minimum.
        let shared = r#"var a = document.createElement("script"); a.text = buffer; document.body.appendChild(a);"#;
        let samples = vec![
            tokenize(&format!("x1(); {shared}")),
            tokenize(&format!("zz2(9); {shared}")),
        ];
        let config = SignatureConfig {
            min_tokens: 5,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("x", &samples, &config).unwrap();
        assert!(sig.len() >= 20, "window too short: {}", sig.len());
    }

    #[test]
    fn tokenization_example_of_figure_8_generalizes_the_string() {
        // The obfuscated eval string differs across samples, so it must be
        // generalized rather than kept literal (paper Fig. 9 keeps `.{11}`).
        let samples = fig9_samples();
        let config = SignatureConfig {
            min_tokens: 4,
            ..SignatureConfig::default()
        };
        let sig = generate_signature("NEK.sig1", &samples, &config).unwrap();
        let string_offset = 7; // ident = this [ str ] ( STR ) ;
        match &sig.elements[string_offset] {
            Element::Class {
                min_len, max_len, ..
            } => {
                assert_eq!((*min_len, *max_len), (11, 11));
            }
            other => panic!("expected a class element, got {other:?}"),
        }
    }
}
