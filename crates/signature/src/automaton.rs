//! Aho–Corasick automaton over anchor literals — stage 1 of the scan
//! pipeline.
//!
//! One automaton is built over *all* anchor literals of a sealed
//! [`SignatureSet`](crate::SignatureSet), so the anchor stage costs one
//! pass over the token stream **regardless of signature count** — the
//! 100×-signature-scale requirement. Each distinct literal is one
//! *pattern*; signatures sharing an anchor literal share the pattern and
//! differ only in the candidate bucket attached to it
//! ([`crate::matcher::ScanPipeline`]).
//!
//! The matcher drives the automaton in **token mode**
//! ([`AnchorAutomaton::match_token`]): anchors are whole tokens, so every
//! token restarts at the root and a pattern only fires when the token's
//! complete (quote-stripped) text equals the pattern. Walking from the
//! root makes this a pure goto-transition walk — the failure links never
//! trigger — which is why the hot path is a handful of instructions per
//! byte with no hashing and no per-signature work. The failure and output
//! links are still built (classic BFS construction) and power
//! [`AnchorAutomaton::scan_bytes`], the textbook streaming-substring mode;
//! the property tests hold it to the brute-force oracle, which in turn
//! pins down the goto/fail structure `match_token` walks.
//!
//! Layout is flattened for scan speed and serialization: a dense 256-way
//! root table (most tokens die on their first byte, one load), then
//! per-node sorted edge runs resolved by binary search. The whole
//! structure is immutable after build and ships through
//! [`AnchorAutomaton::encode_into`]/[`AnchorAutomaton::decode_from`] so a
//! published snapshot chain carries ready-to-scan sets.

use kizzle_snapshot::{Decoder, Encoder, SnapshotError};

/// Sentinel for "no node" in the root table and failure links.
const NO_NODE: u32 = u32::MAX;
/// Sentinel for "no pattern ends here".
const NO_PATTERN: u32 = u32::MAX;

/// One interior node of the flattened automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    /// First edge of this node's run in [`AnchorAutomaton::edge_bytes`] /
    /// [`AnchorAutomaton::edge_targets`].
    edges_start: u32,
    /// Number of edges in the run.
    edges_len: u16,
    /// Failure link (longest proper suffix of this node's path that is
    /// also a path prefix); `NO_NODE` only during construction.
    fail: u32,
    /// Output link: nearest node on the failure chain (self included)
    /// where a pattern ends, or `NO_NODE`.
    output: u32,
    /// Pattern ending exactly at this node, or `NO_PATTERN`.
    pattern: u32,
    /// Depth in bytes (== pattern length at terminal nodes).
    depth: u32,
}

/// An immutable multi-pattern matcher over anchor literal byte strings.
///
/// Build once per sealed signature set with [`AnchorAutomaton::build`];
/// see the [module docs](self) for the two scan modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorAutomaton {
    /// Dense goto table of the root: byte → node id or `NO_NODE`.
    root: Vec<u32>,
    nodes: Vec<Node>,
    /// Edge labels, one run per node, each run sorted by byte.
    edge_bytes: Vec<u8>,
    /// Edge targets, parallel to `edge_bytes`.
    edge_targets: Vec<u32>,
    /// Number of patterns the automaton was built from.
    patterns: u32,
    /// Skip-loop bitmap: bit `b` set iff some pattern starts with byte
    /// `b`. 32 bytes — one cache line — versus the 1 KiB root table, so
    /// [`AnchorAutomaton::match_token`] rejects the common token (anchors
    /// are rare) without touching the table. **Derived** from the root at
    /// build *and* decode by the same helper; never serialized, so the
    /// wire format and [`PIPELINE_VERSION`](crate::PIPELINE_VERSION) are
    /// unchanged.
    first_byte: [u64; 4],
    /// Length of the shortest pattern (`u32::MAX` when empty) — tokens
    /// shorter than every pattern (single punctuation, short operators)
    /// can never equal one, so the walk is skipped outright.
    min_pattern_len: u32,
}

/// Derive the skip-loop structures ([`AnchorAutomaton::first_byte`],
/// [`AnchorAutomaton::min_pattern_len`]) from the flattened automaton —
/// shared by [`AnchorAutomaton::build`] and [`AnchorAutomaton::decode_from`]
/// so a decoded automaton skips identically to a freshly built one.
fn derive_skip(root: &[u32], nodes: &[Node]) -> ([u64; 4], u32) {
    let mut first_byte = [0u64; 4];
    for (b, &node) in root.iter().enumerate() {
        if node != NO_NODE {
            first_byte[b >> 6] |= 1u64 << (b & 63);
        }
    }
    let min_pattern_len = nodes
        .iter()
        .filter(|n| n.pattern != NO_PATTERN)
        .map(|n| n.depth)
        .min()
        .unwrap_or(u32::MAX);
    (first_byte, min_pattern_len)
}

/// A pattern occurrence reported by [`AnchorAutomaton::scan_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Id of the pattern (its index in the build slice).
    pub pattern: u32,
    /// Byte offset of the *end* of the occurrence (exclusive).
    pub end: usize,
}

/// Mutable trie node used only during construction.
#[derive(Debug, Default)]
struct BuildNode {
    /// Sorted `(byte, child)` edges.
    edges: Vec<(u8, u32)>,
    pattern: u32,
    depth: u32,
}

impl AnchorAutomaton {
    /// Build the automaton over `patterns`. Duplicate patterns are the
    /// caller's concern (the pipeline deduplicates literals into shared
    /// candidate buckets before building); if duplicates are passed, the
    /// **last** one owns the terminal node. Empty patterns never match
    /// (no token has empty text) and are ignored.
    #[must_use]
    pub fn build<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        // Phase 1: byte trie.
        let mut trie: Vec<BuildNode> = vec![BuildNode {
            edges: Vec::new(),
            pattern: NO_PATTERN,
            depth: 0,
        }];
        for (id, pattern) in patterns.iter().enumerate() {
            let bytes = pattern.as_ref();
            if bytes.is_empty() {
                continue;
            }
            let mut node = 0usize;
            for (i, &b) in bytes.iter().enumerate() {
                node = match trie[node].edges.binary_search_by_key(&b, |e| e.0) {
                    Ok(pos) => trie[node].edges[pos].1 as usize,
                    Err(pos) => {
                        let child = trie.len() as u32;
                        trie.push(BuildNode {
                            edges: Vec::new(),
                            pattern: NO_PATTERN,
                            depth: i as u32 + 1,
                        });
                        trie[node].edges.insert(pos, (b, child));
                        child as usize
                    }
                };
            }
            trie[node].pattern = u32::try_from(id).expect("pattern count fits u32");
        }

        // Phase 2: flatten and wire failure/output links by BFS. Node ids
        // are already BFS-friendly only for the root's children, so walk
        // explicitly.
        let mut nodes: Vec<Node> = trie
            .iter()
            .map(|b| Node {
                edges_start: 0,
                edges_len: 0,
                fail: 0,
                output: NO_NODE,
                pattern: b.pattern,
                depth: b.depth,
            })
            .collect();
        let mut edge_bytes = Vec::new();
        let mut edge_targets = Vec::new();
        for (id, build) in trie.iter().enumerate() {
            nodes[id].edges_start = u32::try_from(edge_bytes.len()).expect("edge count fits u32");
            nodes[id].edges_len = u16::try_from(build.edges.len()).expect("≤256 edges per node");
            for &(b, to) in &build.edges {
                edge_bytes.push(b);
                edge_targets.push(to);
            }
        }

        let mut root = vec![NO_NODE; 256];
        for &(b, to) in &trie[0].edges {
            root[b as usize] = to;
        }

        // BFS from the root's children (whose failure link is the root).
        let mut queue: std::collections::VecDeque<u32> =
            trie[0].edges.iter().map(|&(_, to)| to).collect();
        while let Some(id) = queue.pop_front() {
            let fail = nodes[id as usize].fail;
            nodes[id as usize].output = if nodes[fail as usize].pattern != NO_PATTERN {
                fail
            } else {
                nodes[fail as usize].output
            };
            let run = edge_run(&nodes, id);
            for pos in run {
                let (b, child) = (edge_bytes[pos], edge_targets[pos]);
                // Child's failure: follow this node's failure chain until a
                // node with a `b` edge exists (the root as last resort).
                let mut f = fail;
                let child_fail = loop {
                    if let Some(next) = lookup(&nodes, &root, &edge_bytes, &edge_targets, f, b) {
                        if next != child {
                            break next;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[child as usize].fail = child_fail;
                queue.push_back(child);
            }
        }

        let (first_byte, min_pattern_len) = derive_skip(&root, &nodes);
        AnchorAutomaton {
            root,
            nodes,
            edge_bytes,
            edge_targets,
            patterns: u32::try_from(patterns.len()).expect("pattern count fits u32"),
            first_byte,
            min_pattern_len,
        }
    }

    /// Number of patterns the automaton was built from.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.patterns as usize
    }

    /// Number of automaton states (including the root).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Token mode: the pattern equal to the **whole** of `text`, if any.
    ///
    /// Starts at the root, so the walk is pure goto transitions — reaching
    /// a terminal node after consuming every byte means the root-to-node
    /// path *is* `text`. Signature-count independent: cost is
    /// `O(text.len())` with one dense load for the first byte and a binary
    /// search over ≤ alphabet edges per further byte.
    #[must_use]
    pub fn match_token(&self, text: &[u8]) -> Option<u32> {
        if !self.may_match(text) {
            return None;
        }
        let (&first, rest) = text.split_first()?;
        let mut node = self.root[first as usize];
        if node == NO_NODE {
            return None;
        }
        for &b in rest {
            node = self.goto(node, b)?;
        }
        let pattern = self.nodes[node as usize].pattern;
        (pattern != NO_PATTERN).then_some(pattern)
    }

    /// The skip-loop test in front of [`AnchorAutomaton::match_token`]'s
    /// goto walk: `false` guarantees no pattern equals `text`, from two
    /// loads off one 32-byte bitmap — no first-byte pattern starts, or the
    /// token is shorter than every pattern. Punctuation-heavy token
    /// streams (minified JS is mostly `=`, `(`, `;`, …, and anchors are ≥
    /// [`MIN_ANCHOR_LEN`](crate::matcher::MIN_ANCHOR_LEN) chars) die here without
    /// probing the 1 KiB root table.
    #[inline]
    #[must_use]
    pub fn may_match(&self, text: &[u8]) -> bool {
        let Some(&first) = text.first() else {
            return false;
        };
        text.len() >= self.min_pattern_len as usize
            && self.first_byte[usize::from(first >> 6)] >> (first & 63) & 1 == 1
    }

    /// Streaming substring mode: every occurrence of every pattern in
    /// `haystack`, in end-offset order — the textbook Aho–Corasick scan
    /// using the failure and output links. The matcher's token mode does
    /// not need it (anchors are whole tokens); it exists to pin the
    /// goto/fail construction to the brute-force oracle in tests and for
    /// future raw-byte prefilters over untokenized documents.
    #[must_use]
    pub fn scan_bytes(&self, haystack: &[u8]) -> Vec<Occurrence> {
        let mut hits = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = loop {
                if let Some(next) = lookup(
                    &self.nodes,
                    &self.root,
                    &self.edge_bytes,
                    &self.edge_targets,
                    state,
                    b,
                ) {
                    break next;
                }
                if state == 0 {
                    break 0;
                }
                state = self.nodes[state as usize].fail;
            };
            // Report the state's own pattern, then walk the output chain.
            let mut out = state;
            while out != NO_NODE {
                let node = &self.nodes[out as usize];
                if node.pattern != NO_PATTERN {
                    hits.push(Occurrence {
                        pattern: node.pattern,
                        end: i + 1,
                    });
                }
                out = node.output;
            }
        }
        hits
    }

    /// Goto transition out of `node` on byte `b` (no failure fallback).
    #[inline]
    fn goto(&self, node: u32, b: u8) -> Option<u32> {
        let n = &self.nodes[node as usize];
        let start = n.edges_start as usize;
        let run = &self.edge_bytes[start..start + n.edges_len as usize];
        run.binary_search(&b)
            .ok()
            .map(|pos| self.edge_targets[start + pos])
    }

    /// Serialize the automaton.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.varint_usize(self.nodes.len());
        enc.varint(u64::from(self.patterns));
        for node in &self.nodes {
            enc.varint(u64::from(node.edges_start));
            enc.varint(u64::from(node.edges_len));
            enc.varint(u64::from(node.fail));
            // NO_NODE / NO_PATTERN travel as 0 with present values shifted
            // by one, keeping the varints short.
            enc.varint(option_code(node.output));
            enc.varint(option_code(node.pattern));
            enc.varint(u64::from(node.depth));
        }
        enc.varint_usize(self.edge_bytes.len());
        for (&b, &to) in self.edge_bytes.iter().zip(&self.edge_targets) {
            enc.u8(b);
            enc.varint(u64::from(to));
        }
        // The root table is recovered from the root node's edge run; only
        // the flattened structure travels.
    }

    /// Decode an automaton written by [`AnchorAutomaton::encode_into`],
    /// validating every structural invariant (indices in range, edge runs
    /// inside the edge table, sorted runs) so a decoded automaton can
    /// never walk out of bounds.
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("anchor automaton: {what}"));
        let node_count = dec.varint_usize()?;
        if node_count == 0 {
            return Err(corrupt("no root node"));
        }
        let patterns = u32::try_from(dec.varint()?).map_err(|_| corrupt("pattern count"))?;
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        for _ in 0..node_count {
            let edges_start = u32::try_from(dec.varint()?).map_err(|_| corrupt("edge start"))?;
            let edges_len = u16::try_from(dec.varint()?).map_err(|_| corrupt("edge len"))?;
            let fail = u32::try_from(dec.varint()?).map_err(|_| corrupt("fail link"))?;
            let output = option_decode(dec.varint()?).ok_or_else(|| corrupt("output link"))?;
            let pattern = option_decode(dec.varint()?).ok_or_else(|| corrupt("pattern id"))?;
            let depth = u32::try_from(dec.varint()?).map_err(|_| corrupt("depth"))?;
            nodes.push(Node {
                edges_start,
                edges_len,
                fail,
                output,
                pattern,
                depth,
            });
        }
        let edge_count = dec.varint_usize()?;
        let mut edge_bytes = Vec::with_capacity(edge_count.min(1 << 20));
        let mut edge_targets = Vec::with_capacity(edge_count.min(1 << 20));
        for _ in 0..edge_count {
            edge_bytes.push(dec.u8()?);
            edge_targets.push(u32::try_from(dec.varint()?).map_err(|_| corrupt("edge target"))?);
        }

        let n = nodes.len() as u64;
        for node in &nodes {
            let start = u64::from(node.edges_start);
            let len = u64::from(node.edges_len);
            if start + len > edge_count as u64 {
                return Err(corrupt("edge run out of range"));
            }
            let run = &edge_bytes
                [node.edges_start as usize..(node.edges_start as usize + node.edges_len as usize)];
            if !run.windows(2).all(|w| w[0] < w[1]) {
                return Err(corrupt("edge run not strictly sorted"));
            }
            if u64::from(node.fail) >= n {
                return Err(corrupt("fail link out of range"));
            }
            if node.output != NO_NODE && u64::from(node.output) >= n {
                return Err(corrupt("output link out of range"));
            }
            if node.pattern != NO_PATTERN && node.pattern >= patterns {
                return Err(corrupt("pattern id out of range"));
            }
        }
        for &to in &edge_targets {
            if u64::from(to) >= n {
                return Err(corrupt("edge target out of range"));
            }
        }

        let mut root = vec![NO_NODE; 256];
        let root_node = nodes[0];
        let start = root_node.edges_start as usize;
        for pos in start..start + root_node.edges_len as usize {
            root[edge_bytes[pos] as usize] = edge_targets[pos];
        }

        let (first_byte, min_pattern_len) = derive_skip(&root, &nodes);
        Ok(AnchorAutomaton {
            root,
            nodes,
            edge_bytes,
            edge_targets,
            patterns,
            first_byte,
            min_pattern_len,
        })
    }
}

/// `NO_NODE`/`NO_PATTERN` as 0, present ids shifted by one.
fn option_code(v: u32) -> u64 {
    if v == u32::MAX {
        0
    } else {
        u64::from(v) + 1
    }
}

fn option_decode(code: u64) -> Option<u32> {
    if code == 0 {
        Some(u32::MAX)
    } else {
        u32::try_from(code - 1).ok()
    }
}

/// Index range of a node's edge run.
fn edge_run(nodes: &[Node], id: u32) -> std::ops::Range<usize> {
    let n = &nodes[id as usize];
    let start = n.edges_start as usize;
    start..start + n.edges_len as usize
}

/// Goto transition with the dense root table, used during construction and
/// the streaming scan (where `node` may be the root).
#[inline]
fn lookup(
    nodes: &[Node],
    root: &[u32],
    edge_bytes: &[u8],
    edge_targets: &[u32],
    node: u32,
    b: u8,
) -> Option<u32> {
    if node == 0 {
        let next = root[b as usize];
        return (next != NO_NODE).then_some(next);
    }
    let n = &nodes[node as usize];
    let start = n.edges_start as usize;
    let run = &edge_bytes[start..start + n.edges_len as usize];
    run.binary_search(&b)
        .ok()
        .map(|pos| edge_targets[start + pos])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<&'static str> {
        vec!["he", "she", "his", "hers", "decoder_0001"]
    }

    #[test]
    fn match_token_is_whole_token_only() {
        let ac = AnchorAutomaton::build(&patterns());
        assert_eq!(ac.match_token(b"he"), Some(0));
        assert_eq!(ac.match_token(b"she"), Some(1));
        assert_eq!(ac.match_token(b"hers"), Some(3));
        assert_eq!(ac.match_token(b"her"), None, "prefix of a pattern");
        assert_eq!(ac.match_token(b"xhe"), None, "suffix embedding ignored");
        assert_eq!(ac.match_token(b"decoder_0001"), Some(4));
        assert_eq!(ac.match_token(b"decoder_0002"), None);
        assert_eq!(ac.match_token(b""), None);
    }

    #[test]
    fn skip_loop_never_hides_a_match() {
        let pats = patterns();
        let ac = AnchorAutomaton::build(&pats);
        // Every pattern is its own whole-token match, so may_match must
        // pass it; and !may_match ⇒ match_token is None, byte-exhaustively
        // for length-1 and length-2 tokens plus pattern-adjacent probes.
        for (id, p) in pats.iter().enumerate() {
            assert!(ac.may_match(p.as_bytes()), "pattern {p:?} skipped");
            assert_eq!(ac.match_token(p.as_bytes()), Some(id as u32));
        }
        for b in 0u8..=255 {
            for probe in [vec![b], vec![b, b'e'], vec![b, b'h', b'e']] {
                if !ac.may_match(&probe) {
                    assert_eq!(ac.match_token(&probe), None, "probe {probe:?}");
                }
            }
        }
        // Punctuation-heavy tokens die on the skip test: none of the
        // patterns start with punctuation, and `=`/`;` are shorter than
        // the shortest pattern anyway.
        for punct in [&b"="[..], b";", b"(", b"[", b"&&", b"=="] {
            assert!(!ac.may_match(punct), "punct {punct:?}");
        }
        // Shorter than every pattern: skipped even with a viable first
        // byte ("h" starts "he"/"his"/"hers" but min pattern length is 2).
        assert!(!ac.may_match(b"h"));
        assert!(ac.may_match(b"hq"), "length/first-byte both viable");
        assert_eq!(ac.match_token(b"hq"), None, "walk still decides");
    }

    #[test]
    fn skip_loop_is_identical_after_decode() {
        let ac = AnchorAutomaton::build(&patterns());
        let mut enc = Encoder::new();
        ac.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let back = AnchorAutomaton::decode_from(&mut Decoder::new(&bytes)).expect("decodes");
        for b in 0u8..=255 {
            for probe in [vec![b], vec![b, b'h'], vec![b, b'e', b'r', b's']] {
                assert_eq!(ac.may_match(&probe), back.may_match(&probe), "{probe:?}");
            }
        }
    }

    #[test]
    fn scan_bytes_matches_brute_force() {
        let pats = patterns();
        let ac = AnchorAutomaton::build(&pats);
        let haystack = b"ushers said he heard of his decoder_0001x";
        let mut want = Vec::new();
        for (id, p) in pats.iter().enumerate() {
            let p = p.as_bytes();
            for end in p.len()..=haystack.len() {
                if &haystack[end - p.len()..end] == p {
                    want.push((id as u32, end));
                }
            }
        }
        let mut got: Vec<(u32, usize)> = ac
            .scan_bytes(haystack)
            .into_iter()
            .map(|o| (o.pattern, o.end))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_degenerate_builds() {
        let ac = AnchorAutomaton::build::<&str>(&[]);
        assert_eq!(ac.match_token(b"anything"), None);
        assert!(ac.scan_bytes(b"anything").is_empty());

        // Empty patterns are ignored, later duplicates win the terminal.
        let ac = AnchorAutomaton::build(&["", "dup", "dup"]);
        assert_eq!(ac.match_token(b"dup"), Some(2));
        assert_eq!(ac.match_token(b""), None);
    }

    #[test]
    fn roundtrips_through_the_codec() {
        let ac = AnchorAutomaton::build(&patterns());
        let mut enc = Encoder::new();
        ac.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = AnchorAutomaton::decode_from(&mut dec).expect("decodes");
        dec.finish().expect("fully consumed");
        assert_eq!(back, ac);
        assert_eq!(back.match_token(b"hers"), Some(3));
        assert_eq!(
            back.scan_bytes(b"ushers").len(),
            ac.scan_bytes(b"ushers").len()
        );
    }

    #[test]
    fn decode_rejects_structural_damage() {
        let ac = AnchorAutomaton::build(&patterns());
        let mut enc = Encoder::new();
        ac.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        // Truncations decode to clean errors, never panics.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let result = AnchorAutomaton::decode_from(&mut dec);
            if let Ok(decoded) = result {
                // A prefix that happens to parse must still be structurally
                // valid — exercised by walking it.
                let _ = decoded.scan_bytes(b"she sells seashells");
            }
        }
    }
}
