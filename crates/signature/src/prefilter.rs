//! Batched candidate prefilter — stage 2 of the scan pipeline.
//!
//! The anchor automaton (stage 1) reports *where* a signature's anchor
//! literal occurs; this module decides, cheaply, whether the surrounding
//! token window can possibly satisfy the whole signature before the exact
//! verifier (stage 3) touches any string data. It borrows the cluster
//! index's histogram idiom — compare cheap per-item summaries before the
//! expensive kernel — and lays everything out SIMD-friendly: fixed-width
//! [`ElemCheck`] records evaluated in a branch-free loop of integer
//! compares and mask tests over precomputed [`TokenProfile`]s.
//!
//! Two levels, cheapest first:
//!
//! 1. **Window class histogram** ([`SigFilter::hist_rejects`]): for each
//!    of the 8 [`CharClass`]es, the window must contain at least as many
//!    tokens *acceptable* to class `c` as the signature has `Class`
//!    elements of class `c`. Eight subtractions against prefix sums —
//!    `O(1)` in the signature length, so it runs first for long
//!    signatures fanned out behind a shared anchor literal.
//! 2. **Element-wise profile check** ([`SigFilter::window_passes`]): one
//!    fixed-width compare per element against the token profile at its
//!    offset. For `Class` elements the check is **exact** (length range +
//!    acceptability bit reproduce `Element::matches_token` precisely);
//!    for `Literal` elements it compares a 32-bit FNV-1a hash and the
//!    length, so a pass still needs stage 3's literal text confirmation
//!    (hash collisions) but a fail is final.
//!
//! Profiles are built **lazily**: a document whose tokens never hit the
//! automaton pays nothing here, keeping the miss path at stage-1 cost.

use crate::pattern::{CharClass, Element, Signature};
use kizzle_js::TokenStream;
use kizzle_snapshot::{Decoder, Encoder, SnapshotError};

/// Per-token summary the branch-free checks compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenProfile {
    /// Character (not byte) count of the token's unquoted text.
    pub chars: u32,
    /// FNV-1a 32-bit hash of the unquoted bytes.
    pub hash: u32,
    /// Bit `c` set iff the [`CharClass`] with discriminant `c` accepts
    /// every character.
    pub mask: u8,
}

/// FNV-1a, 32-bit — the literal-hash side of [`TokenProfile`].
#[must_use]
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Class-acceptance mask of one character: bit `c` set iff template `c`
/// accepts it. ASCII goes through a precomputed table; anything beyond
/// ASCII is accepted only by [`CharClass::Any`].
#[inline]
fn char_mask(c: char) -> u8 {
    const TABLE: [u8; 128] = build_char_table();
    if (c as u32) < 128 {
        TABLE[c as usize]
    } else {
        1 << (CharClass::Any as u8)
    }
}

const fn build_char_table() -> [u8; 128] {
    let mut table = [0u8; 128];
    let mut i = 0;
    while i < 128 {
        let c = i as u8 as char;
        let mut mask = 0u8;
        // Mirrors `CharClass::accepts` exactly; const fn, so spelled out.
        if c.is_ascii_lowercase() {
            mask |= 1 << (CharClass::Lower as u8);
        }
        if c.is_ascii_uppercase() {
            mask |= 1 << (CharClass::Upper as u8);
        }
        if c.is_ascii_alphabetic() {
            mask |= 1 << (CharClass::Alpha as u8);
        }
        if c.is_ascii_digit() {
            mask |= 1 << (CharClass::Digits as u8);
        }
        if c.is_ascii_digit() || (c as u8 >= b'a' && c as u8 <= b'f') {
            mask |= 1 << (CharClass::HexLower as u8);
        }
        if c.is_ascii_alphanumeric() {
            mask |= 1 << (CharClass::AlphaNum as u8);
        }
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '/' | '?' | '=' | '&' | '-') {
            mask |= 1 << (CharClass::Wordlike as u8);
        }
        mask |= 1 << (CharClass::Any as u8);
        table[i] = mask;
        i += 1;
    }
    table
}

/// Profile one token's unquoted text.
#[must_use]
pub fn profile_text(text: &str) -> TokenProfile {
    let mut chars: u32 = 0;
    let mut mask: u8 = 0xFF;
    for c in text.chars() {
        chars += 1;
        mask &= char_mask(c);
    }
    // The empty string is accepted by every class (`accepts_all` over no
    // characters), which `mask = 0xFF` already encodes.
    TokenProfile {
        chars,
        hash: fnv1a32(text.as_bytes()),
        mask,
    }
}

/// Lazily grown per-stream profile table with per-class prefix sums.
///
/// Construction cost is strictly proportional to the **profiled prefix**:
/// [`StreamProfile::ensure`] extends coverage monotonically as the scan
/// advances, so a document whose first anchor hit is at token `k` only
/// ever profiles `k + window` tokens — and a document with no anchor hits
/// never allocates one of these at all (the matcher creates the profile on
/// first use).
#[derive(Debug, Default)]
pub struct StreamProfile {
    profiles: Vec<TokenProfile>,
    /// `prefix[i][c]` = number of tokens in `[0, i)` whose mask has bit
    /// `c`; row `i` exists once token `i - 1` is profiled.
    prefix: Vec<[u32; 8]>,
}

impl StreamProfile {
    /// An empty profile; tokens are summarized on demand via
    /// [`StreamProfile::ensure`].
    #[must_use]
    pub fn new() -> Self {
        StreamProfile {
            profiles: Vec::new(),
            prefix: vec![[0u32; 8]],
        }
    }

    /// Number of tokens profiled so far.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.profiles.len()
    }

    /// Extend coverage so tokens `[0, upto)` are profiled. `upto` beyond
    /// the stream length is clamped.
    pub fn ensure(&mut self, stream: &TokenStream, upto: usize) {
        let tokens = stream.tokens();
        let upto = upto.min(tokens.len());
        while self.profiles.len() < upto {
            let profile = profile_text(tokens[self.profiles.len()].unquoted());
            let mut row = *self.prefix.last().expect("row 0 exists");
            for (c, slot) in row.iter_mut().enumerate() {
                *slot += u32::from(profile.mask >> c & 1);
            }
            self.prefix.push(row);
            self.profiles.push(profile);
        }
    }

    /// Profiles of the window `[start, start + len)` — the caller must
    /// have [`StreamProfile::ensure`]d coverage.
    #[must_use]
    pub fn window(&self, start: usize, len: usize) -> &[TokenProfile] {
        &self.profiles[start..start + len]
    }

    /// Count of tokens acceptable to class `c` within `[start, end)`.
    #[inline]
    #[must_use]
    pub fn class_count(&self, c: usize, start: usize, end: usize) -> u32 {
        self.prefix[end][c] - self.prefix[start][c]
    }
}

/// Element kinds in [`ElemCheck::kind`].
const KIND_LITERAL: u8 = 0;
const KIND_CLASS: u8 = 1;

/// One fixed-width, branch-free element check. 16 bytes, compared with
/// two integer range tests, one equality and one mask probe — no string
/// data touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemCheck {
    /// Minimum unquoted character count.
    min: u32,
    /// Maximum unquoted character count.
    max: u32,
    /// For literals: FNV-1a of the literal bytes. Unused for classes.
    hash: u32,
    /// For classes: the class index (bit position). Unused for literals.
    class_bit: u8,
    /// [`KIND_LITERAL`] or [`KIND_CLASS`].
    kind: u8,
}

impl ElemCheck {
    fn of(element: &Element) -> Self {
        match element {
            Element::Literal(text) => {
                let chars = u32::try_from(text.chars().count()).unwrap_or(u32::MAX);
                ElemCheck {
                    min: chars,
                    max: chars,
                    hash: fnv1a32(text.as_bytes()),
                    class_bit: 0,
                    kind: KIND_LITERAL,
                }
            }
            Element::Class {
                class,
                min_len,
                max_len,
            } => ElemCheck {
                min: u32::try_from(*min_len).unwrap_or(u32::MAX),
                max: u32::try_from(*max_len).unwrap_or(u32::MAX),
                hash: 0,
                class_bit: *class as u8,
                kind: KIND_CLASS,
            },
        }
    }
}

/// The prefilter view of one signature: its element checks plus the class
/// histogram the window-level bound compares against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigFilter {
    checks: Vec<ElemCheck>,
    /// `hist[c]` = number of `Class` elements of class `c`.
    hist: [u16; 8],
}

impl SigFilter {
    /// Build the filter for one signature.
    #[must_use]
    pub fn of(signature: &Signature) -> Self {
        let checks: Vec<ElemCheck> = signature.elements.iter().map(ElemCheck::of).collect();
        let mut hist = [0u16; 8];
        for element in &signature.elements {
            if let Element::Class { class, .. } = element {
                hist[*class as usize] = hist[*class as usize].saturating_add(1);
            }
        }
        SigFilter { checks, hist }
    }

    /// Window length the signature needs (its element count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True for the (unconstructible) empty signature.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Level 1: can the window `[start, start + len)` be rejected on class
    /// counts alone? `true` means *reject* — some class is demanded more
    /// times than the window has acceptable tokens.
    #[inline]
    #[must_use]
    pub fn hist_rejects(&self, profile: &StreamProfile, start: usize) -> bool {
        let end = start + self.checks.len();
        let mut deficit = 0u32;
        for (c, &need) in self.hist.iter().enumerate() {
            let have = profile.class_count(c, start, end);
            deficit |= u32::from(have < u32::from(need));
        }
        deficit != 0
    }

    /// Level 2: the branch-free element-wise check over the window's
    /// profiles. A `false` is a certain rejection; a `true` is exact for
    /// `Class` elements and hash-strength for `Literal` elements (the
    /// matcher confirms literal text afterwards).
    #[inline]
    #[must_use]
    pub fn window_passes(&self, window: &[TokenProfile]) -> bool {
        debug_assert_eq!(window.len(), self.checks.len());
        let mut ok = 1u8;
        for (check, p) in self.checks.iter().zip(window) {
            let len_ok = u8::from(p.chars >= check.min) & u8::from(p.chars <= check.max);
            let lit_ok = u8::from(p.hash == check.hash);
            let class_ok = p.mask >> check.class_bit & 1;
            let is_class = check.kind; // 0 literal, 1 class
                                       // Literal: length + hash must hold; class test is vacuous.
                                       // Class: length + acceptance bit must hold; hash is vacuous.
            ok &= len_ok & (lit_ok | is_class) & (class_ok | (1 - is_class));
        }
        ok == 1
    }

    /// Number of `Class` elements of class `c` (used by the verify
    /// kernel's fuzzy histogram bound).
    #[must_use]
    pub fn class_demand(&self, c: usize) -> u16 {
        self.hist[c]
    }
}

/// Evaluate up to 8 candidate windows **lane-parallel** against one shared
/// [`StreamProfile`]: bit `i` of the result is set iff candidate `i`'s
/// window passes its filter — exactly [`SigFilter::window_passes`] per
/// lane (property-tested against it, and `debug_assert`ed at the call
/// site in the scan pipeline).
///
/// Candidates behind a shared anchor literal tend to disagree with the
/// window at the same early element positions, so the loop runs element
/// positions outermost with a SIMD-within-a-register liveness mask across
/// the lanes: each position costs one profile load and a handful of
/// branch-free integer ops per live lane, and the whole batch retires the
/// moment every lane is dead — the scalar path has to walk each window to
/// its end separately. Lanes shorter than the deepest candidate simply
/// stop contributing once exhausted.
///
/// The caller must have [`StreamProfile::ensure`]d coverage through
/// `start + filter.len()` for every candidate.
#[must_use]
pub fn windows_pass_batch(profile: &StreamProfile, candidates: &[(&SigFilter, usize)]) -> u8 {
    assert!(candidates.len() <= 8, "at most 8 lanes per batch");
    let mut alive: u8 = match candidates.len() {
        8 => 0xFF,
        n => (1u8 << n) - 1,
    };
    let deepest = candidates
        .iter()
        .map(|(filter, _)| filter.checks.len())
        .max()
        .unwrap_or(0);
    for j in 0..deepest {
        for (lane, &(filter, start)) in candidates.iter().enumerate() {
            let Some(check) = filter.checks.get(j) else {
                continue;
            };
            let p = profile.profiles[start + j];
            let len_ok = u8::from(p.chars >= check.min) & u8::from(p.chars <= check.max);
            let lit_ok = u8::from(p.hash == check.hash);
            let class_ok = p.mask >> check.class_bit & 1;
            let is_class = check.kind; // 0 literal, 1 class
            let pass = len_ok & (lit_ok | is_class) & (class_ok | (1 - is_class));
            alive &= !((1 - pass) << lane);
        }
        if alive == 0 {
            break;
        }
    }
    alive
}

impl SigFilter {
    /// Serialize the filter.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.varint_usize(self.checks.len());
        for check in &self.checks {
            enc.u8(check.kind);
            enc.varint(u64::from(check.min));
            enc.varint(u64::from(check.max));
            match check.kind {
                KIND_LITERAL => enc.u32(check.hash),
                _ => enc.u8(check.class_bit),
            }
        }
        // The histogram re-derives from the checks on decode.
    }

    /// Decode a filter written by [`SigFilter::encode_into`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("sig filter: {what}"));
        let count = dec.varint_usize()?;
        if count == 0 {
            return Err(corrupt("empty check list"));
        }
        let mut checks = Vec::with_capacity(count.min(1 << 16));
        let mut hist = [0u16; 8];
        for _ in 0..count {
            let kind = dec.u8()?;
            let min = u32::try_from(dec.varint()?).map_err(|_| corrupt("min length"))?;
            let max = u32::try_from(dec.varint()?).map_err(|_| corrupt("max length"))?;
            if min > max {
                return Err(corrupt("inverted length range"));
            }
            let (hash, class_bit) = match kind {
                KIND_LITERAL => (dec.u32()?, 0),
                KIND_CLASS => {
                    let bit = dec.u8()?;
                    if usize::from(bit) >= CharClass::TEMPLATES.len() {
                        return Err(corrupt("class bit out of range"));
                    }
                    hist[usize::from(bit)] = hist[usize::from(bit)].saturating_add(1);
                    (0, bit)
                }
                other => return Err(corrupt(&format!("unknown element kind {other}"))),
            };
            checks.push(ElemCheck {
                min,
                max,
                hash,
                class_bit,
                kind,
            });
        }
        Ok(SigFilter { checks, hist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_js::tokenize;

    fn sig(elements: Vec<Element>) -> Signature {
        Signature::new("t", elements, 1)
    }

    #[test]
    fn char_table_mirrors_char_class_accepts() {
        for code in 0u32..128 {
            let c = char::from_u32(code).unwrap();
            for class in CharClass::TEMPLATES {
                let expect = class.accepts(c);
                let got = char_mask(c) >> (class as u8) & 1 == 1;
                assert_eq!(got, expect, "char {c:?} class {class:?}");
            }
        }
        // Non-ASCII: only Any.
        assert_eq!(char_mask('é'), 1 << (CharClass::Any as u8));
    }

    #[test]
    fn profile_matches_element_semantics_exactly_for_classes() {
        let stream = tokenize(r#"abc ABC 123 deadbeef a_b "quoted" é"#);
        for token in stream.tokens() {
            let profile = profile_text(token.unquoted());
            for class in CharClass::TEMPLATES {
                let len = token.unquoted().chars().count();
                let element = Element::Class {
                    class,
                    min_len: len,
                    max_len: len,
                };
                let exact = element.matches_token(token);
                let window = [profile];
                let filter = SigFilter::of(&sig(vec![element]));
                assert_eq!(
                    filter.window_passes(&window),
                    exact,
                    "token {:?} class {class:?}",
                    token.text
                );
            }
        }
    }

    #[test]
    fn literal_check_accepts_equal_and_rejects_different_text() {
        let filter = SigFilter::of(&sig(vec![Element::Literal("fromCharCode".into())]));
        assert!(filter.window_passes(&[profile_text("fromCharCode")]));
        assert!(!filter.window_passes(&[profile_text("fromCharCodf")]));
        assert!(!filter.window_passes(&[profile_text("fromCharCod")]));
    }

    #[test]
    fn stream_profile_grows_lazily_and_counts_classes() {
        let stream = tokenize("abc 123 XYZ abc9");
        let mut profile = StreamProfile::new();
        assert_eq!(profile.covered(), 0);
        profile.ensure(&stream, 2);
        assert_eq!(profile.covered(), 2);
        profile.ensure(&stream, 1); // monotone: never shrinks
        assert_eq!(profile.covered(), 2);
        profile.ensure(&stream, 100); // clamped to the stream
        assert_eq!(profile.covered(), stream.len());
        // [abc, 123, XYZ, abc9]: Lower accepts only "abc".
        assert_eq!(
            profile.class_count(CharClass::Lower as usize, 0, stream.len()),
            1
        );
        assert_eq!(
            profile.class_count(CharClass::Digits as usize, 0, 2),
            1,
            "only `123` in the first two"
        );
        assert_eq!(
            profile.class_count(CharClass::Any as usize, 0, stream.len()),
            u32::try_from(stream.len()).unwrap()
        );
    }

    #[test]
    fn hist_reject_fires_only_when_a_class_is_underserved() {
        // Signature demands two Digits tokens; the window has one.
        let demanding = SigFilter::of(&sig(vec![
            Element::Class {
                class: CharClass::Digits,
                min_len: 1,
                max_len: 8,
            },
            Element::Class {
                class: CharClass::Digits,
                min_len: 1,
                max_len: 8,
            },
        ]));
        let stream = tokenize("123 abc");
        let mut profile = StreamProfile::new();
        profile.ensure(&stream, stream.len());
        assert!(demanding.hist_rejects(&profile, 0));

        let satisfied = SigFilter::of(&sig(vec![
            Element::Class {
                class: CharClass::Digits,
                min_len: 1,
                max_len: 8,
            },
            Element::Class {
                class: CharClass::Lower,
                min_len: 1,
                max_len: 8,
            },
        ]));
        assert!(!satisfied.hist_rejects(&profile, 0));
    }

    #[test]
    fn batch_windows_agree_with_the_scalar_oracle() {
        // Filters of mixed lengths and kinds, placed at every viable start
        // of a shared stream — every lane must agree with window_passes.
        let stream = tokenize(
            r#"pieces = buffer.split(delim); el.text += String.fromCharCode(pieces[i]); x9 = "ab3";"#,
        );
        let mut profile = StreamProfile::new();
        profile.ensure(&stream, stream.len());
        let filters = vec![
            SigFilter::of(&sig(vec![Element::Literal("fromCharCode".into())])),
            SigFilter::of(&sig(vec![
                Element::Class {
                    class: CharClass::Wordlike,
                    min_len: 1,
                    max_len: 12,
                },
                Element::Literal("=".into()),
            ])),
            SigFilter::of(&sig(vec![
                Element::Literal(".".into()),
                Element::Class {
                    class: CharClass::Lower,
                    min_len: 2,
                    max_len: 8,
                },
                Element::Literal("(".into()),
            ])),
            SigFilter::of(&sig(vec![Element::Class {
                class: CharClass::Any,
                min_len: 0,
                max_len: 3,
            }])),
        ];
        let mut candidates: Vec<(&SigFilter, usize)> = Vec::new();
        for filter in &filters {
            for start in 0..=stream.len().saturating_sub(filter.len()) {
                candidates.push((filter, start));
            }
        }
        for batch in candidates.chunks(8) {
            let mask = windows_pass_batch(&profile, batch);
            for (lane, &(filter, start)) in batch.iter().enumerate() {
                assert_eq!(
                    mask >> lane & 1 == 1,
                    filter.window_passes(profile.window(start, filter.len())),
                    "lane {lane} start {start} diverged"
                );
            }
        }
        // Sanity: the batch finds the real hits, not all-zeros.
        assert!(candidates
            .chunks(8)
            .any(|batch| windows_pass_batch(&profile, batch) != 0));
    }

    #[test]
    fn batch_handles_partial_and_empty_lane_counts() {
        let stream = tokenize("abc 123");
        let mut profile = StreamProfile::new();
        profile.ensure(&stream, stream.len());
        assert_eq!(windows_pass_batch(&profile, &[]), 0);
        let lower = SigFilter::of(&sig(vec![Element::Class {
            class: CharClass::Lower,
            min_len: 1,
            max_len: 8,
        }]));
        // One lane: only bit 0 may be set, and it reflects the scalar.
        let mask = windows_pass_batch(&profile, &[(&lower, 0)]);
        assert_eq!(mask, 1);
        let mask = windows_pass_batch(&profile, &[(&lower, 1)]);
        assert_eq!(mask, 0, "`123` is not Lower");
        // Dead lanes never leak into live ones.
        let mask = windows_pass_batch(&profile, &[(&lower, 1), (&lower, 0), (&lower, 1)]);
        assert_eq!(mask, 0b010);
    }

    #[test]
    fn filters_roundtrip_through_the_codec() {
        let filter = SigFilter::of(&sig(vec![
            Element::Literal("this".into()),
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 3,
                max_len: 5,
            },
            Element::Literal("]".into()),
        ]));
        let mut enc = Encoder::new();
        filter.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = SigFilter::decode_from(&mut dec).expect("decodes");
        dec.finish().expect("fully consumed");
        assert_eq!(back, filter);
    }

    #[test]
    fn decode_rejects_damage() {
        let filter = SigFilter::of(&sig(vec![Element::Literal("x".into())]));
        let mut enc = Encoder::new();
        filter.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(SigFilter::decode_from(&mut dec).is_err(), "cut {cut}");
        }
        // Unknown kind tag.
        let mut enc = Encoder::new();
        enc.varint_usize(1);
        enc.u8(9);
        enc.varint(1);
        enc.varint(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(SigFilter::decode_from(&mut dec).is_err());
    }
}
