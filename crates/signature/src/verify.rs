//! Bounded approximate verification — the adaptive band kernel behind
//! [`SignatureSet::scan_stream_nearest`](crate::SignatureSet::scan_stream_nearest).
//!
//! The exact scan answers "does some window satisfy every element?". This
//! module answers the graded question the triage workflow needs — *how
//! close* does a document come to each signature — with a semi-global
//! edit distance between a signature's element sequence and the token
//! stream: substituting a token that fails its element costs 1, skipping
//! a signature element costs 1, absorbing an extra stream token inside
//! the aligned region costs 1, and stream tokens before/after the region
//! are free. A distance of 0 is exactly an exact-scan match (the property
//! tests hold the two scans to each other).
//!
//! Cost control is the Ukkonen cutoff discipline, applied twice:
//!
//! * **Within one signature** ([`nearest_in_stream`]): the DP walks the
//!   stream column by column but only computes rows whose running value
//!   can still finish at or below the cutoff — the classic last-active-row
//!   band, so the per-column work is `O(band)`, not `O(signature_len)`.
//! * **Across the set** ([`crate::SignatureSet::scan_stream_nearest`]):
//!   signatures are tried in insertion order with the cutoff lowered to
//!   `best - 1` each time the running best improves — the band *narrows
//!   dynamically* as better candidates are found, so late signatures in a
//!   large set run against a sliver of their full DP table (and most are
//!   discarded by the histogram bound below without any DP at all).
//!
//! Before the DP, the crate-private `stream_deficit` applies the
//! prefilter's histogram
//! idiom fuzzily: every `Class` element demanded more times than the
//! whole stream can supply, and every `Literal` element whose hash never
//! occurs, each force at least one edit — a sound lower bound costing
//! `O(8 + literals)` per signature after one shared `O(tokens)` pass.

use crate::pattern::{Element, Signature};
use crate::prefilter::{fnv1a32, profile_text, SigFilter};
use kizzle_js::{Token, TokenStream};
use std::collections::HashSet;

/// The best approximate hit of a whole-set scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearestMatch {
    /// Insertion-order index of the winning signature.
    pub index: usize,
    /// Its semi-global edit distance to the stream (0 = exact match).
    pub edits: usize,
}

/// Shared per-stream summary for [`stream_deficit`]: how many tokens each
/// class accepts, and which literal hashes occur at all.
#[derive(Debug)]
pub(crate) struct StreamSummary {
    class_counts: [u32; 8],
    literal_hashes: HashSet<u32>,
}

impl StreamSummary {
    /// One `O(tokens)` pass, shared by every signature in the scan.
    #[must_use]
    pub(crate) fn of(stream: &TokenStream) -> Self {
        let mut class_counts = [0u32; 8];
        let mut literal_hashes = HashSet::new();
        for token in stream.tokens() {
            let profile = profile_text(token.unquoted());
            for (c, slot) in class_counts.iter_mut().enumerate() {
                *slot += u32::from(profile.mask >> c & 1);
            }
            literal_hashes.insert(profile.hash);
        }
        StreamSummary {
            class_counts,
            literal_hashes,
        }
    }
}

/// A sound lower bound on the semi-global edit distance of `signature`
/// against the summarized stream: elements that provably cannot be
/// satisfied by *any* stream token must each be edited away.
#[must_use]
pub(crate) fn stream_deficit(
    signature: &Signature,
    filter: &SigFilter,
    summary: &StreamSummary,
) -> usize {
    let mut deficit = 0usize;
    for c in 0..8 {
        let need = u32::from(filter.class_demand(c));
        let have = summary.class_counts[c];
        deficit += usize::try_from(need.saturating_sub(have)).expect("u32 fits usize");
    }
    for element in &signature.elements {
        if let Element::Literal(text) = element {
            if !summary.literal_hashes.contains(&fnv1a32(text.as_bytes())) {
                deficit += 1;
            }
        }
    }
    deficit
}

/// Semi-global banded edit distance of `elements` against `tokens`,
/// bounded by `cutoff`: `Some(d)` with `d <= cutoff` when the signature
/// aligns within `d` edits somewhere in the stream, `None` otherwise.
///
/// Ukkonen's last-active-row band keeps each column `O(min(cutoff,
/// elements))`; see the [module docs](self) for the cost model.
#[must_use]
pub fn nearest_in_stream(elements: &[Element], tokens: &[Token], cutoff: usize) -> Option<usize> {
    let m = elements.len();
    // The sentinel is one past the cutoff: anything at the sentinel can
    // never recover, so it needs no exact value.
    let sentinel = cutoff.saturating_add(1);
    // Column for zero consumed tokens: j deletions to place j elements.
    let mut prev: Vec<usize> = (0..=m).map(|j| j.min(sentinel)).collect();
    let mut cur: Vec<usize> = vec![sentinel; m + 1];
    // Deleting every element "matches" the empty region at cost m.
    let mut best = prev[m];
    // Last row whose value is still within the cutoff.
    let mut last_active = cutoff.min(m);
    for token in tokens {
        if best == 0 {
            break;
        }
        cur[0] = 0;
        // One row past the last active: a diagonal step can extend the
        // band downward by one per column, never more.
        let upper = (last_active + 1).min(m);
        for j in 1..=upper {
            let sub = if elements[j - 1].matches_token(token) {
                0
            } else {
                1
            };
            let v = (prev[j - 1] + sub).min(prev[j] + 1).min(cur[j - 1] + 1);
            cur[j] = v.min(sentinel);
        }
        for slot in cur.iter_mut().take(m + 1).skip(upper + 1) {
            *slot = sentinel;
        }
        // Shrink the band: the last row that can still finish in budget.
        let mut active = upper;
        while active > 0 && cur[active] > cutoff {
            active -= 1;
        }
        last_active = active;
        if upper == m && cur[m] < best {
            best = cur[m];
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (best <= cutoff).then_some(best)
}

/// Reference implementation: the full, unbanded DP. Quadratic and only
/// compiled for tests — the oracle [`nearest_in_stream`] is held to.
#[cfg(test)]
#[must_use]
pub(crate) fn nearest_naive(elements: &[Element], tokens: &[Token]) -> usize {
    let m = elements.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut best = m;
    for token in tokens {
        let mut cur = vec![0usize; m + 1];
        for j in 1..=m {
            let sub = if elements[j - 1].matches_token(token) {
                0
            } else {
                1
            };
            cur[j] = (prev[j - 1] + sub).min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        best = best.min(cur[m]);
        prev = cur;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::CharClass;
    use kizzle_js::tokenize;

    fn lit(s: &str) -> Element {
        Element::Literal(s.to_string())
    }

    fn class(c: CharClass, min: usize, max: usize) -> Element {
        Element::Class {
            class: c,
            min_len: min,
            max_len: max,
        }
    }

    #[test]
    fn exact_window_costs_zero() {
        let elements = vec![lit("this"), lit("["), class(CharClass::AlphaNum, 1, 8)];
        let stream = tokenize(r#"x = this[abc123]"#);
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 5), Some(0));
    }

    #[test]
    fn one_substitution_costs_one() {
        let elements = vec![lit("this"), lit("["), lit("payload")];
        let stream = tokenize(r#"this[other]"#);
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 5), Some(1));
        // And the cutoff excludes it when too tight.
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 0), None);
    }

    #[test]
    fn insertion_inside_the_region_costs_one() {
        let elements = vec![lit("a"), lit("b")];
        let stream = tokenize("a x b");
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 5), Some(1));
    }

    #[test]
    fn leading_and_trailing_tokens_are_free() {
        let elements = vec![lit("needle")];
        let stream = tokenize("lots of hay needle more hay after");
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 3), Some(0));
    }

    #[test]
    fn empty_stream_costs_full_deletion() {
        let elements = vec![lit("a"), lit("b"), lit("c")];
        let stream = tokenize("");
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 5), Some(3));
        assert_eq!(nearest_in_stream(&elements, stream.tokens(), 2), None);
    }

    #[test]
    fn banded_agrees_with_naive_on_structured_cases() {
        let cases: Vec<(Vec<Element>, &str)> = vec![
            (vec![lit("this"), lit("["), lit("x"), lit("]")], "this[x]"),
            (
                vec![lit("this"), lit("["), lit("x"), lit("]")],
                "self[x] this(x) this[y]",
            ),
            (
                vec![
                    class(CharClass::Digits, 1, 4),
                    lit("+"),
                    class(CharClass::Digits, 1, 4),
                ],
                "a = 12 + 34; b = x + 1",
            ),
            (vec![lit("absent")], "nothing here matches at all"),
            (
                vec![lit("a"), lit("b"), lit("c"), lit("d"), lit("e")],
                "a b x c d q e",
            ),
        ];
        for (elements, doc) in cases {
            let stream = tokenize(doc);
            let want = nearest_naive(&elements, stream.tokens());
            for cutoff in 0..=elements.len() + 2 {
                let got = nearest_in_stream(&elements, stream.tokens(), cutoff);
                if want <= cutoff {
                    assert_eq!(got, Some(want), "doc {doc:?} cutoff {cutoff}");
                } else {
                    assert_eq!(got, None, "doc {doc:?} cutoff {cutoff}");
                }
            }
        }
    }

    #[test]
    fn stream_deficit_is_a_sound_lower_bound() {
        let sig = Signature::new(
            "t",
            vec![
                lit("fromCharCode"),
                class(CharClass::Digits, 1, 4),
                class(CharClass::Digits, 1, 4),
            ],
            1,
        );
        let filter = SigFilter::of(&sig);
        // Stream with neither the literal nor any digits: deficit 3.
        let stream = tokenize("alpha beta gamma");
        let summary = StreamSummary::of(&stream);
        let deficit = stream_deficit(&sig, &filter, &summary);
        assert_eq!(deficit, 3);
        let actual = nearest_naive(&sig.elements, stream.tokens());
        assert!(deficit <= actual, "bound {deficit} > actual {actual}");
        // Stream satisfying everything: deficit 0.
        let stream = tokenize("fromCharCode 12 34");
        let summary = StreamSummary::of(&stream);
        assert_eq!(stream_deficit(&sig, &filter, &summary), 0);
    }
}
