//! A deployable set of labeled signatures.
//!
//! This is the consumer side of Kizzle: the signatures the compiler emits
//! are deployed to a scanner (browser, desktop AV, or CDN-side, per the
//! paper's deployment-channel discussion) which matches incoming documents
//! against the active set.

use crate::pattern::Signature;
use kizzle_js::{tokenize_document, TokenStream};
use serde::Serialize;
use std::fmt;

/// A signature together with the label of the family it detects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LabeledSignature {
    /// Family label (e.g. `"Nuclear"`).
    pub label: String,
    /// The structural signature.
    pub signature: Signature,
}

/// A collection of labeled signatures with scan helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SignatureSet {
    signatures: Vec<LabeledSignature>,
}

impl SignatureSet {
    /// Create an empty set.
    #[must_use]
    pub fn new() -> Self {
        SignatureSet::default()
    }

    /// Number of signatures in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if the set contains no signatures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Add a signature under a family label. If an identical signature is
    /// already present under the same label, the set is unchanged and
    /// `false` is returned.
    pub fn add(&mut self, label: impl Into<String>, signature: Signature) -> bool {
        let label = label.into();
        let duplicate = self
            .signatures
            .iter()
            .any(|existing| existing.label == label && existing.signature.elements == signature.elements);
        if duplicate {
            return false;
        }
        self.signatures.push(LabeledSignature { label, signature });
        true
    }

    /// Iterate over the labeled signatures.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledSignature> {
        self.signatures.iter()
    }

    /// Signatures carrying a specific label.
    #[must_use]
    pub fn for_label(&self, label: &str) -> Vec<&LabeledSignature> {
        self.signatures.iter().filter(|s| s.label == label).collect()
    }

    /// Scan an already tokenized sample; returns the label of the first
    /// matching signature.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<&LabeledSignature> {
        self.signatures.iter().find(|s| s.signature.matches_stream(stream))
    }

    /// Scan a raw HTML/JavaScript document.
    #[must_use]
    pub fn scan_document(&self, document: &str) -> Option<&LabeledSignature> {
        self.scan_stream(&tokenize_document(document))
    }

    /// All labels with at least one signature, deduplicated, in insertion
    /// order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for sig in &self.signatures {
            if !out.contains(&sig.label.as_str()) {
                out.push(&sig.label);
            }
        }
        out
    }
}

impl Extend<LabeledSignature> for SignatureSet {
    fn extend<T: IntoIterator<Item = LabeledSignature>>(&mut self, iter: T) {
        for item in iter {
            self.add(item.label, item.signature);
        }
    }
}

impl fmt::Display for SignatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SignatureSet ({} signatures)", self.signatures.len())?;
        for sig in &self.signatures {
            writeln!(f, "  [{}] {}", sig.label, sig.signature.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_signature;
    use crate::pattern::SignatureConfig;
    use kizzle_js::tokenize;

    fn nuclear_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"Euur1V = this["l9D"]("ev#333399al");"#),
            tokenize(r#"jkb0hA = this["uqA"]("ev#ccff00al");"#),
        ];
        generate_signature(
            "NEK.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    fn rig_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"pieces = buffer.split(delim); el.text += String.fromCharCode(pieces[i]);"#),
            tokenize(r#"parts = acc.split(dl); el.text += String.fromCharCode(parts[j]);"#),
        ];
        generate_signature(
            "RIG.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scan_returns_the_matching_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        assert_eq!(set.len(), 2);

        let hit = set
            .scan_document(r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#)
            .expect("should match Nuclear");
        assert_eq!(hit.label, "Nuclear");

        let hit = set
            .scan_document(r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#)
            .expect("should match RIG");
        assert_eq!(hit.label, "RIG");

        assert!(set
            .scan_document("<script>function benign() { return 42; }</script>")
            .is_none());
    }

    #[test]
    fn duplicate_signatures_are_not_added_twice() {
        let mut set = SignatureSet::new();
        assert!(set.add("Nuclear", nuclear_like_signature()));
        assert!(!set.add("Nuclear", nuclear_like_signature()));
        assert_eq!(set.len(), 1);
        // The same elements under a different label are allowed (families
        // borrow code from each other).
        assert!(set.add("RIG", nuclear_like_signature()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn labels_and_for_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        set.add("Nuclear", rig_like_signature());
        assert_eq!(set.labels(), vec!["Nuclear", "RIG"]);
        assert_eq!(set.for_label("Nuclear").len(), 2);
        assert_eq!(set.for_label("Angler").len(), 0);
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = SignatureSet::new();
        assert!(set.is_empty());
        assert!(set.scan_document("<script>anything()</script>").is_none());
    }

    #[test]
    fn extend_deduplicates() {
        let mut set = SignatureSet::new();
        let items = vec![
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
        ];
        set.extend(items);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_lists_signatures() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        let text = set.to_string();
        assert!(text.contains("1 signatures"));
        assert!(text.contains("NEK.sig1"));
    }
}
