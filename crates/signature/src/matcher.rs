//! A deployable set of labeled signatures and its three-stage scan
//! pipeline.
//!
//! This is the consumer side of Kizzle: the signatures the compiler emits
//! are deployed to a scanner (browser, desktop AV, or CDN-side, per the
//! paper's deployment-channel discussion) which matches incoming documents
//! against the active set. The set compounds daily — 50k–500k live
//! signatures at multi-tenant scale — so the scan must stay cheap in the
//! *signature count*, not just the document length. Scanning runs through
//! a [`ScanPipeline`] built once per sealed set:
//!
//! 1. **Anchor automaton** ([`crate::automaton::AnchorAutomaton`]): every
//!    signature with a selective literal element (at least
//!    [`MIN_ANCHOR_LEN`] chars; longest wins — long literals are the most
//!    selective) contributes that literal to one Aho–Corasick automaton
//!    over *all* anchor literals. A scan walks the document's tokens once
//!    through the automaton — `O(token bytes)` total, **independent of
//!    the signature count** — and each terminal hit yields the bucket of
//!    `(signature, anchor offset)` candidates sharing that literal.
//! 2. **Batched prefilter** ([`crate::prefilter`]): each candidate's
//!    token window is screened against fixed-width, branch-free element
//!    checks over cheap per-token profiles (length, class-acceptance
//!    mask, content hash), with a window-level class-histogram bound in
//!    front when many signatures fan out behind one shared literal. The
//!    profiles are built lazily, so a document that never hits an anchor
//!    pays stage 1 only.
//! 3. **Verification**: `Class` elements are already decided exactly by
//!    stage 2; only `Literal` elements need their text confirmed (the
//!    profile compares a 32-bit hash). Signatures with no selective
//!    literal (rare: pure character classes, or only ubiquitous
//!    punctuation like `=` and `[`) fall back to a linear scan.
//!
//! The result is byte-identical to [`SignatureSet::scan_stream_linear`]
//! — first match in insertion order — property-tested in
//! `tests/signature_properties.rs`. The pipeline (automaton, buckets,
//! filters) serializes through [`ScanPipeline::encode_into`] /
//! [`ScanPipeline::decode_from`] so published snapshot chains ship
//! ready-to-scan sets; it is immutable once built, and
//! [`SignatureSet::add`] invalidates it so a mutated set reseals.
//!
//! Beyond the exact scan, [`SignatureSet::scan_stream_nearest`] grades
//! near-misses with the adaptive banded kernel in [`crate::verify`]: the
//! edit-distance band narrows as the running best improves across the
//! set.

use crate::automaton::AnchorAutomaton;
use crate::pattern::{CharClass, Element, Signature};
use crate::prefilter::{windows_pass_batch, SigFilter, StreamProfile};
use crate::verify::{nearest_in_stream, stream_deficit, NearestMatch, StreamSummary};
use kizzle_js::{tokenize_document, TokenStream};
use kizzle_snapshot::{Decoder, Encoder, SnapshotError};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Per-stage scan counters (`kizzle_scan_*`), cheap enough for the
/// ns-scale scan path.
///
/// A scan tallies its stage events in plain locals (`ScanCounts`, only
/// touched when telemetry is enabled — the disabled cost is one relaxed
/// load and predicted branches), then feeds them into thread-local
/// [`kizzle_telemetry::metrics::Batched`] fronts at scan exit: the shared
/// sharded atomics are touched once per [`BATCH`](scan_metrics::BATCH)
/// events per thread, yet totals are exact once scan threads exit or
/// [`flush_scan_counters`] runs.
pub mod scan_metrics {
    use kizzle_telemetry::counter;
    use kizzle_telemetry::metrics::Batched;

    /// Events per thread between touches of a shared counter cell (the
    /// "sampled 1-in-N" rate; remainders flush on thread exit).
    pub const BATCH: u64 = 256;

    /// Local per-scan tallies; all zero when telemetry is disabled.
    #[derive(Debug, Default)]
    pub(super) struct ScanCounts {
        pub scans: u64,
        pub anchor_hits: u64,
        pub prefilter_checked: u64,
        pub prefilter_rejected: u64,
        pub verify_confirmed: u64,
        pub verify_rejected: u64,
        pub unanchored_checked: u64,
    }

    struct Tallies {
        scans: Batched,
        anchor_hits: Batched,
        prefilter_checked: Batched,
        prefilter_rejected: Batched,
        verify_confirmed: Batched,
        verify_rejected: Batched,
        unanchored_checked: Batched,
    }

    impl Tallies {
        fn new() -> Self {
            Tallies {
                scans: Batched::new(counter("kizzle_scans_total"), BATCH),
                anchor_hits: Batched::new(counter("kizzle_scan_anchor_hits_total"), BATCH),
                prefilter_checked: Batched::new(
                    counter("kizzle_scan_prefilter_checked_total"),
                    BATCH,
                ),
                prefilter_rejected: Batched::new(
                    counter("kizzle_scan_prefilter_rejected_total"),
                    BATCH,
                ),
                verify_confirmed: Batched::new(
                    counter("kizzle_scan_verify_confirmed_total"),
                    BATCH,
                ),
                verify_rejected: Batched::new(counter("kizzle_scan_verify_rejected_total"), BATCH),
                unanchored_checked: Batched::new(
                    counter("kizzle_scan_unanchored_checked_total"),
                    BATCH,
                ),
            }
        }

        fn flush(&self) {
            self.scans.flush();
            self.anchor_hits.flush();
            self.prefilter_checked.flush();
            self.prefilter_rejected.flush();
            self.verify_confirmed.flush();
            self.verify_rejected.flush();
            self.unanchored_checked.flush();
        }
    }

    thread_local! {
        static TALLIES: Tallies = Tallies::new();
    }

    impl ScanCounts {
        /// Feed this scan's tallies into the thread-local batched fronts.
        pub(super) fn commit(&self) {
            TALLIES.with(|t| {
                t.scans.bump(self.scans);
                t.anchor_hits.bump(self.anchor_hits);
                t.prefilter_checked.bump(self.prefilter_checked);
                t.prefilter_rejected.bump(self.prefilter_rejected);
                t.verify_confirmed.bump(self.verify_confirmed);
                t.verify_rejected.bump(self.verify_rejected);
                t.unanchored_checked.bump(self.unanchored_checked);
            });
        }
    }

    /// Flush the calling thread's batched scan tallies into the shared
    /// `kizzle_scan_*` counters now.
    ///
    /// Worker threads flush automatically when their TLS is destroyed on
    /// exit, and [`std::thread::JoinHandle::join`] orders that before the
    /// join returns. Two cases need an explicit call: long-lived threads
    /// (the main thread, a serve-daemon worker) before snapshotting the
    /// registry, and `std::thread::scope` workers before their closure
    /// returns — the scope wakes its waiter when the closure finishes,
    /// which does *not* order the worker's TLS destructors before the
    /// scope exits.
    pub fn flush_scan_counters() {
        TALLIES.with(Tallies::flush);
    }
}

pub use scan_metrics::flush_scan_counters;

/// A signature together with the label of the family it detects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LabeledSignature {
    /// Family label (e.g. `"Nuclear"`).
    pub label: String,
    /// The structural signature.
    pub signature: Signature,
}

/// A collection of labeled signatures with scan helpers.
#[derive(Debug, Default, Serialize)]
pub struct SignatureSet {
    signatures: Vec<LabeledSignature>,
    /// Exact-duplicate filter: hash of `(label, elements)` → indices into
    /// `signatures` with that hash, so [`SignatureSet::add`] is
    /// `O(signature_len)` instead of a linear scan over the whole set —
    /// without a second copy of every label and element vector.
    dedup: HashMap<u64, Vec<usize>>,
    /// Distinct labels in first-insertion order (what [`SignatureSet::labels`]
    /// returns without rescanning).
    label_order: Vec<String>,
    /// The sealed scan pipeline, built on first scan (or eagerly via
    /// [`SignatureSet::seal`]) and dropped by [`SignatureSet::add`] —
    /// derived state, never part of equality or serde.
    pipeline: OnceLock<Arc<ScanPipeline>>,
}

impl Clone for SignatureSet {
    fn clone(&self) -> Self {
        SignatureSet {
            signatures: self.signatures.clone(),
            dedup: self.dedup.clone(),
            label_order: self.label_order.clone(),
            // The pipeline is immutable and index-compatible with the
            // cloned members, so the clone shares it by `Arc` — cloning a
            // sealed set stays O(members), not O(rebuild).
            pipeline: match self.pipeline.get() {
                Some(pipeline) => OnceLock::from(Arc::clone(pipeline)),
                None => OnceLock::new(),
            },
        }
    }
}

/// Shortest literal worth anchoring on. Literals below this (single
/// punctuation like `=` or `[`, two-char operators/keywords) occur so often
/// in benign documents that every occurrence would trigger a full window
/// verification, degrading the anchored scan below the linear one; such
/// signatures go to the `unanchored` fallback instead.
pub const MIN_ANCHOR_LEN: usize = 3;

/// The anchor of a signature: the offset of its longest literal element, if
/// that literal is selective enough (see [`MIN_ANCHOR_LEN`]).
fn anchor_of(signature: &Signature) -> Option<(usize, &str)> {
    signature
        .elements
        .iter()
        .enumerate()
        .filter_map(|(offset, element)| match element {
            Element::Literal(text) if text.len() >= MIN_ANCHOR_LEN => Some((offset, text.as_str())),
            _ => None,
        })
        .max_by_key(|(_, text)| text.len())
}

/// Dedup key: hash of the `(label, elements)` pair.
fn dedup_key(label: &str, elements: &[Element]) -> u64 {
    let mut hasher = DefaultHasher::new();
    label.hash(&mut hasher);
    elements.hash(&mut hasher);
    hasher.finish()
}

/// Does `signature` match `stream` with its element at `offset` placed on
/// the token at `position`? The aligned-window oracle the staged pipeline
/// is `debug_assert!`-checked against candidate by candidate.
fn window_matches(
    signature: &Signature,
    stream: &TokenStream,
    position: usize,
    offset: usize,
) -> bool {
    let Some(start) = position.checked_sub(offset) else {
        return false;
    };
    let tokens = stream.tokens();
    let n = signature.elements.len();
    if start + n > tokens.len() {
        return false;
    }
    signature
        .elements
        .iter()
        .zip(&tokens[start..start + n])
        .all(|(element, token)| element.matches_token(token))
}

/// Wire version of the serialized pipeline. Bump when the pipeline layout
/// changes; a version-skewed payload is refused at decode and the loader
/// falls back to rebuilding from the signatures.
pub const PIPELINE_VERSION: u16 = 1;

/// Candidate buckets grow a window-histogram pre-gate from this size on:
/// eight prefix-sum subtractions are only worth it when they can reject
/// for several fanned-out candidates' element loops at once.
const HIST_GATE_MIN_SIG_LEN: usize = 8;

/// The sealed, immutable scan structures of one [`SignatureSet`]: the
/// anchor automaton, the per-literal candidate buckets, the per-signature
/// prefilters and the unanchored fallback list. Built by
/// [`SignatureSet::seal`], shared by `Arc` across clones, and shipped
/// inside snapshots via [`ScanPipeline::encode_into`].
#[derive(Debug, PartialEq)]
pub struct ScanPipeline {
    /// Stage 1: one automaton over every distinct anchor literal.
    automaton: AnchorAutomaton,
    /// The distinct anchor literals, indexed by automaton pattern id.
    literals: Vec<String>,
    /// Pattern id → `(signature index, anchor element offset)` for every
    /// signature anchored on that literal, ascending by signature index.
    buckets: Vec<Vec<(u32, u32)>>,
    /// Stage 2: one prefilter per signature (aligned with the set).
    filters: Vec<SigFilter>,
    /// Signatures with no selective literal, scanned linearly.
    unanchored: Vec<u32>,
}

impl ScanPipeline {
    /// Build the pipeline for a signature slice (insertion order).
    #[must_use]
    pub fn build(signatures: &[LabeledSignature]) -> Self {
        let mut literals: Vec<String> = Vec::new();
        let mut literal_ids: HashMap<&str, u32> = HashMap::new();
        let mut buckets: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut unanchored: Vec<u32> = Vec::new();
        let mut filters: Vec<SigFilter> = Vec::with_capacity(signatures.len());
        for (index, labeled) in signatures.iter().enumerate() {
            let index = u32::try_from(index).expect("signature count fits u32");
            filters.push(SigFilter::of(&labeled.signature));
            match anchor_of(&labeled.signature) {
                Some((offset, text)) => {
                    let pattern = *literal_ids.entry(text).or_insert_with(|| {
                        literals.push(text.to_string());
                        buckets.push(Vec::new());
                        u32::try_from(literals.len() - 1).expect("literal count fits u32")
                    });
                    buckets[pattern as usize]
                        .push((index, u32::try_from(offset).expect("offset fits u32")));
                }
                None => unanchored.push(index),
            }
        }
        let automaton = AnchorAutomaton::build(&literals);
        ScanPipeline {
            automaton,
            literals,
            buckets,
            filters,
            unanchored,
        }
    }

    /// The automaton, for observability (state count, pattern count).
    #[must_use]
    pub fn automaton(&self) -> &AnchorAutomaton {
        &self.automaton
    }

    /// Number of distinct anchor literals.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.literals.len()
    }

    /// Number of signatures on the linear fallback path.
    #[must_use]
    pub fn unanchored_count(&self) -> usize {
        self.unanchored.len()
    }

    /// The staged scan: returns the index of the first matching signature
    /// in insertion order — exactly [`SignatureSet::scan_stream_linear`]'s
    /// answer, reached through the three stages.
    fn scan(&self, signatures: &[LabeledSignature], stream: &TokenStream) -> Option<usize> {
        let tel = kizzle_telemetry::enabled();
        let mut counts = scan_metrics::ScanCounts::default();
        if tel {
            counts.scans = 1;
        }
        let best = self.scan_staged(signatures, stream, tel, &mut counts);
        if tel {
            counts.commit();
        }
        best
    }

    fn scan_staged(
        &self,
        signatures: &[LabeledSignature],
        stream: &TokenStream,
        tel: bool,
        counts: &mut scan_metrics::ScanCounts,
    ) -> Option<usize> {
        let tokens = stream.tokens();
        let mut best: Option<usize> = None;
        // Stage 2's profiles are created on the first automaton hit, so
        // anchor-free documents never pay for them.
        let mut profile: Option<StreamProfile> = None;
        // Candidates surviving the cheap gates, gathered per automaton hit
        // and evaluated lane-parallel (buffer reused across tokens).
        let mut eligible: Vec<(usize, usize)> = Vec::new();
        'tokens: for (position, token) in tokens.iter().enumerate() {
            let Some(pattern) = self.automaton.match_token(token.unquoted().as_bytes()) else {
                continue;
            };
            if tel {
                counts.anchor_hits += 1;
            }
            // Gather pass: bounds, best-index pruning and the histogram
            // pre-gate stay scalar (they are O(1) each); survivors queue
            // for the batched window check.
            eligible.clear();
            for &(index, offset) in &self.buckets[pattern as usize] {
                let index = index as usize;
                // Buckets ascend by signature index: nothing after this
                // candidate can beat the running best.
                if best.is_some_and(|b| index >= b) {
                    break;
                }
                let Some(start) = position.checked_sub(offset as usize) else {
                    continue;
                };
                let filter = &self.filters[index];
                let n = filter.len();
                if start + n > tokens.len() {
                    continue;
                }
                let profile = profile.get_or_insert_with(StreamProfile::new);
                profile.ensure(stream, start + n);
                if n >= HIST_GATE_MIN_SIG_LEN && filter.hist_rejects(profile, start) {
                    debug_assert!(!window_matches(
                        &signatures[index].signature,
                        stream,
                        position,
                        offset as usize
                    ));
                    if tel {
                        counts.prefilter_rejected += 1;
                    }
                    continue;
                }
                if tel {
                    counts.prefilter_checked += 1;
                }
                eligible.push((index, start));
            }
            let Some(profile) = profile.as_ref() else {
                continue;
            };
            // Batched window check: up to 8 candidate windows per group
            // evaluated lane-parallel over the shared profile, then the
            // survivors confirmed in ascending signature index order —
            // the first confirmation is the bucket's best (buckets
            // ascend), so the rest of the hit is pruned.
            for group in eligible.chunks(8) {
                let mut lanes = [(&self.filters[group[0].0], group[0].1); 8];
                for (lane, &(index, start)) in group.iter().enumerate() {
                    lanes[lane] = (&self.filters[index], start);
                }
                let mask = windows_pass_batch(profile, &lanes[..group.len()]);
                for (lane, &(index, start)) in group.iter().enumerate() {
                    let passed = mask >> lane & 1 == 1;
                    debug_assert_eq!(
                        passed,
                        self.filters[index]
                            .window_passes(profile.window(start, self.filters[index].len())),
                        "batch lane diverged from the scalar oracle"
                    );
                    if !passed {
                        debug_assert!(!window_matches(
                            &signatures[index].signature,
                            stream,
                            position,
                            position - start
                        ));
                        if tel {
                            counts.prefilter_rejected += 1;
                        }
                        continue;
                    }
                    // Stage 3: classes are already exact; confirm literal
                    // text (the profile only compared a 32-bit hash).
                    if !confirm_literals(&signatures[index].signature, stream, start) {
                        if tel {
                            counts.verify_rejected += 1;
                        }
                        continue;
                    }
                    if tel {
                        counts.verify_confirmed += 1;
                    }
                    debug_assert!(window_matches(
                        &signatures[index].signature,
                        stream,
                        position,
                        position - start
                    ));
                    best = Some(index);
                    if index == 0 {
                        // Signature 0 is first in insertion order; nothing
                        // can beat it, so stop scanning.
                        return Some(0);
                    }
                    continue 'tokens;
                }
            }
        }
        // Unanchored signatures cannot use the automaton; check them
        // directly.
        for &index in &self.unanchored {
            let index = index as usize;
            if best.is_some_and(|b| index >= b) {
                break;
            }
            if tel {
                counts.unanchored_checked += 1;
            }
            if signatures[index].signature.matches_stream(stream) {
                best = Some(index);
            }
        }
        best
    }

    /// Serialize the pipeline (version-stamped; see [`PIPELINE_VERSION`]).
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.u16(PIPELINE_VERSION);
        enc.varint_usize(self.filters.len());
        self.automaton.encode_into(enc);
        enc.varint_usize(self.literals.len());
        for (literal, bucket) in self.literals.iter().zip(&self.buckets) {
            enc.str(literal);
            enc.varint_usize(bucket.len());
            for &(index, offset) in bucket {
                enc.varint(u64::from(index));
                enc.varint(u64::from(offset));
            }
        }
        for filter in &self.filters {
            filter.encode_into(enc);
        }
        enc.gap_list(&self.unanchored);
    }

    /// Decode a pipeline written by [`ScanPipeline::encode_into`] for a
    /// set of `expected_signatures` members, validating the version stamp
    /// and every index against the set it will serve. A failure here is
    /// recoverable — the caller rebuilds from the signatures.
    pub fn decode_from(
        dec: &mut Decoder<'_>,
        expected_signatures: usize,
    ) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("scan pipeline: {what}"));
        let version = dec.u16()?;
        if version != PIPELINE_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: u32::from(version),
                expected: u32::from(PIPELINE_VERSION),
            });
        }
        let signature_count = dec.varint_usize()?;
        if signature_count != expected_signatures {
            return Err(corrupt("signature count mismatch"));
        }
        let automaton = AnchorAutomaton::decode_from(dec)?;
        let literal_count = dec.varint_usize()?;
        if literal_count != automaton.pattern_count() {
            return Err(corrupt("literal count disagrees with automaton"));
        }
        let mut literals = Vec::with_capacity(literal_count.min(1 << 20));
        let mut buckets = Vec::with_capacity(literal_count.min(1 << 20));
        for _ in 0..literal_count {
            let literal = dec.str()?.to_string();
            if literal.len() < MIN_ANCHOR_LEN {
                return Err(corrupt("anchor literal below minimum length"));
            }
            let entry_count = dec.varint_usize()?;
            let mut bucket: Vec<(u32, u32)> = Vec::with_capacity(entry_count.min(1 << 20));
            for _ in 0..entry_count {
                let index = u32::try_from(dec.varint()?).map_err(|_| corrupt("bucket index"))?;
                if index as usize >= signature_count {
                    return Err(corrupt("bucket index out of range"));
                }
                let offset = u32::try_from(dec.varint()?).map_err(|_| corrupt("anchor offset"))?;
                if bucket.last().is_some_and(|&(prev, _)| prev >= index) {
                    return Err(corrupt("bucket not ascending by signature"));
                }
                bucket.push((index, offset));
            }
            literals.push(literal);
            buckets.push(bucket);
        }
        let mut filters = Vec::with_capacity(signature_count.min(1 << 20));
        for _ in 0..signature_count {
            filters.push(SigFilter::decode_from(dec)?);
        }
        // Anchor offsets must point inside their signature's window.
        for bucket in &buckets {
            for &(index, offset) in bucket {
                if offset as usize >= filters[index as usize].len() {
                    return Err(corrupt("anchor offset outside signature"));
                }
            }
        }
        let unanchored = dec.gap_list()?;
        if unanchored
            .iter()
            .any(|&index| index as usize >= signature_count)
        {
            return Err(corrupt("unanchored index out of range"));
        }
        Ok(ScanPipeline {
            automaton,
            literals,
            buckets,
            filters,
            unanchored,
        })
    }
}

/// Confirm every `Literal` element's text over the window at `start` —
/// the only part of a prefilter pass that is hash-strength rather than
/// exact.
fn confirm_literals(signature: &Signature, stream: &TokenStream, start: usize) -> bool {
    let tokens = stream.tokens();
    signature
        .elements
        .iter()
        .zip(&tokens[start..start + signature.elements.len()])
        .all(|(element, token)| match element {
            Element::Literal(text) => text == token.unquoted(),
            Element::Class { .. } => true,
        })
}

impl SignatureSet {
    /// Create an empty set.
    #[must_use]
    pub fn new() -> Self {
        SignatureSet::default()
    }

    /// Number of signatures in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if the set contains no signatures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Add a signature under a family label. If an identical signature is
    /// already present under the same label, the set is unchanged and
    /// `false` is returned. Adding drops the sealed pipeline; the next
    /// scan (or explicit [`SignatureSet::seal`]) rebuilds it.
    pub fn add(&mut self, label: impl Into<String>, signature: Signature) -> bool {
        let label = label.into();
        let index = self.signatures.len();
        let bucket = self
            .dedup
            .entry(dedup_key(&label, &signature.elements))
            .or_default();
        if bucket.iter().any(|&i| {
            let existing = &self.signatures[i];
            existing.label == label && existing.signature.elements == signature.elements
        }) {
            return false;
        }
        bucket.push(index);
        if !self.label_order.contains(&label) {
            self.label_order.push(label.clone());
        }
        self.pipeline.take();
        self.signatures.push(LabeledSignature { label, signature });
        true
    }

    /// The sealed scan pipeline, building it on first use. Publish paths
    /// call this eagerly (for the side effect) so the build cost lands at
    /// compile/publish time, not on the first scanned document.
    pub fn seal(&self) -> &ScanPipeline {
        self.pipeline
            .get_or_init(|| Arc::new(ScanPipeline::build(&self.signatures)))
    }

    /// True once the pipeline is built (and not invalidated since).
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.pipeline.get().is_some()
    }

    /// Attach a pipeline decoded from a snapshot instead of rebuilding.
    /// Returns `false` (and keeps the set lazy) if the pipeline does not
    /// cover exactly this set's signatures or one is already attached.
    pub fn attach_pipeline(&mut self, pipeline: ScanPipeline) -> bool {
        if pipeline.filters.len() != self.signatures.len() {
            return false;
        }
        self.pipeline.set(Arc::new(pipeline)).is_ok()
    }

    /// Iterate over the labeled signatures.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledSignature> {
        self.signatures.iter()
    }

    /// The signature at insertion-order `index` (what
    /// [`SignatureSet::scan_stream_nearest`] reports).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&LabeledSignature> {
        self.signatures.get(index)
    }

    /// Signatures carrying a specific label.
    #[must_use]
    pub fn for_label(&self, label: &str) -> Vec<&LabeledSignature> {
        self.signatures
            .iter()
            .filter(|s| s.label == label)
            .collect()
    }

    /// Scan an already tokenized sample; returns the first matching
    /// signature in insertion order (the same answer the linear scan
    /// gives), located through the staged pipeline.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<&LabeledSignature> {
        let index = self.scan_stream_index(stream)?;
        Some(&self.signatures[index])
    }

    /// Like [`SignatureSet::scan_stream`] but returning the matching
    /// signature's *index* into insertion order. The serve-tier wire
    /// protocol reports hits by index (stable across every worker holding
    /// the same published set), and [`SignatureSet::get`] resolves it back.
    #[must_use]
    pub fn scan_stream_index(&self, stream: &TokenStream) -> Option<usize> {
        self.seal().scan(&self.signatures, stream)
    }

    /// Reference linear scan: first signature (in insertion order) matching
    /// anywhere in the stream. Kept as the oracle the staged
    /// [`SignatureSet::scan_stream`] is benchmarked and property-tested
    /// against.
    #[must_use]
    pub fn scan_stream_linear(&self, stream: &TokenStream) -> Option<&LabeledSignature> {
        self.signatures
            .iter()
            .find(|s| s.signature.matches_stream(stream))
    }

    /// The signature closest to the stream under the semi-global edit
    /// distance of [`crate::verify`], within `max_edits`. Ties in distance
    /// go to the earlier signature; 0 edits coincides with
    /// [`SignatureSet::scan_stream`]'s match. The cutoff narrows to
    /// `best - 1` as the running best improves, and signatures whose
    /// class/literal demands the whole stream provably cannot meet are
    /// skipped without any DP.
    #[must_use]
    pub fn scan_stream_nearest(
        &self,
        stream: &TokenStream,
        max_edits: usize,
    ) -> Option<NearestMatch> {
        if self.signatures.is_empty() {
            return None;
        }
        let pipeline = self.seal();
        let summary = StreamSummary::of(stream);
        let mut best: Option<NearestMatch> = None;
        for (index, labeled) in self.signatures.iter().enumerate() {
            // A later signature only wins with strictly fewer edits.
            let cutoff = match best {
                Some(b) => {
                    if b.edits == 0 {
                        break;
                    }
                    b.edits - 1
                }
                None => max_edits,
            };
            if stream_deficit(&labeled.signature, &pipeline.filters[index], &summary) > cutoff {
                continue;
            }
            if let Some(edits) =
                nearest_in_stream(&labeled.signature.elements, stream.tokens(), cutoff)
            {
                best = Some(NearestMatch { index, edits });
            }
        }
        best
    }

    /// Scan a raw HTML/JavaScript document.
    #[must_use]
    pub fn scan_document(&self, document: &str) -> Option<&LabeledSignature> {
        self.scan_stream(&tokenize_document(document))
    }

    /// All labels with at least one signature, deduplicated, in insertion
    /// order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.label_order.iter().map(String::as_str).collect()
    }

    /// Serialize the set's members in insertion order (which the scan's
    /// first-match semantics depend on). The pipeline is **not** included
    /// — encode it separately via [`SignatureSet::seal`] and
    /// [`ScanPipeline::encode_into`] when shipping ready-to-scan sets.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.usize(self.signatures.len());
        for labeled in &self.signatures {
            enc.str(&labeled.label);
            enc.str(&labeled.signature.name);
            enc.usize(labeled.signature.support);
            enc.usize(labeled.signature.elements.len());
            for element in &labeled.signature.elements {
                match element {
                    Element::Literal(text) => {
                        enc.u8(0);
                        enc.str(text);
                    }
                    Element::Class {
                        class,
                        min_len,
                        max_len,
                    } => {
                        enc.u8(1);
                        enc.u8(char_class_code(*class));
                        enc.usize(*min_len);
                        enc.usize(*max_len);
                    }
                }
            }
        }
    }

    /// Rebuild a set from [`SignatureSet::encode_into`] output; the dedup
    /// and label tables are re-derived by re-adding in order, and the
    /// pipeline is left unsealed (attach or rebuild separately).
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("signature set: {what}"));
        let count = dec.usize()?;
        let mut set = SignatureSet::new();
        for _ in 0..count {
            let label = dec.str()?.to_string();
            let name = dec.str()?.to_string();
            let support = dec.usize()?;
            let element_count = dec.usize()?;
            if element_count == 0 {
                return Err(corrupt("signature without elements"));
            }
            let mut elements = Vec::with_capacity(element_count.min(1 << 16));
            for _ in 0..element_count {
                elements.push(match dec.u8()? {
                    0 => Element::Literal(dec.str()?.to_string()),
                    1 => {
                        let class = char_class_from_code(dec.u8()?)
                            .ok_or_else(|| corrupt("unknown character class"))?;
                        let min_len = dec.usize()?;
                        let max_len = dec.usize()?;
                        if min_len > max_len {
                            return Err(corrupt("inverted class length range"));
                        }
                        Element::Class {
                            class,
                            min_len,
                            max_len,
                        }
                    }
                    other => return Err(corrupt(&format!("unknown element tag {other}"))),
                });
            }
            set.add(label, Signature::new(name, elements, support));
        }
        Ok(set)
    }
}

/// Stable wire code of a [`CharClass`] (part of the signature-set wire
/// format; distinct from the enum discriminant by design — the wire
/// format must survive enum reordering).
#[must_use]
pub fn char_class_code(class: CharClass) -> u8 {
    match class {
        CharClass::Lower => 0,
        CharClass::Upper => 1,
        CharClass::Alpha => 2,
        CharClass::Digits => 3,
        CharClass::HexLower => 4,
        CharClass::AlphaNum => 5,
        CharClass::Wordlike => 6,
        CharClass::Any => 7,
    }
}

/// Inverse of [`char_class_code`].
#[must_use]
pub fn char_class_from_code(code: u8) -> Option<CharClass> {
    Some(match code {
        0 => CharClass::Lower,
        1 => CharClass::Upper,
        2 => CharClass::Alpha,
        3 => CharClass::Digits,
        4 => CharClass::HexLower,
        5 => CharClass::AlphaNum,
        6 => CharClass::Wordlike,
        7 => CharClass::Any,
        _ => return None,
    })
}

impl PartialEq for SignatureSet {
    fn eq(&self, other: &Self) -> bool {
        // The lookup structures (dedup, labels, pipeline) are derived from
        // `signatures`; comparing the members is the whole story.
        self.signatures == other.signatures
    }
}

impl Eq for SignatureSet {}

impl Extend<LabeledSignature> for SignatureSet {
    fn extend<T: IntoIterator<Item = LabeledSignature>>(&mut self, iter: T) {
        for item in iter {
            self.add(item.label, item.signature);
        }
    }
}

impl fmt::Display for SignatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SignatureSet ({} signatures)", self.signatures.len())?;
        for sig in &self.signatures {
            writeln!(f, "  [{}] {}", sig.label, sig.signature.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_signature;
    use crate::pattern::SignatureConfig;
    use kizzle_js::tokenize;

    fn nuclear_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"Euur1V = this["l9D"]("ev#333399al");"#),
            tokenize(r#"jkb0hA = this["uqA"]("ev#ccff00al");"#),
        ];
        generate_signature(
            "NEK.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    fn rig_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"pieces = buffer.split(delim); el.text += String.fromCharCode(pieces[i]);"#),
            tokenize(r#"parts = acc.split(dl); el.text += String.fromCharCode(parts[j]);"#),
        ];
        generate_signature(
            "RIG.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scan_returns_the_matching_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        assert_eq!(set.len(), 2);

        let hit = set
            .scan_document(r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#)
            .expect("should match Nuclear");
        assert_eq!(hit.label, "Nuclear");

        let hit = set
            .scan_document(r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#)
            .expect("should match RIG");
        assert_eq!(hit.label, "RIG");

        assert!(set
            .scan_document("<script>function benign() { return 42; }</script>")
            .is_none());
    }

    #[test]
    fn anchored_scan_agrees_with_linear_scan() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        for doc in [
            r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#,
            r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#,
            "<script>function benign() { return 42; }</script>",
            "",
            "<script>this this this = = = fromCharCode</script>",
        ] {
            let stream = kizzle_js::tokenize_document(doc);
            let staged = set.scan_stream(&stream).map(|s| s.signature.name.clone());
            let linear = set
                .scan_stream_linear(&stream)
                .map(|s| s.signature.name.clone());
            assert_eq!(staged, linear, "doc: {doc}");
        }
    }

    #[test]
    fn first_match_in_insertion_order_wins() {
        // Two signatures that both match the same document; the earlier
        // one must win, exactly as in the linear scan.
        let early = Signature::new(
            "early",
            vec![
                Element::Literal("this".to_string()),
                Element::Literal("[".to_string()),
            ],
            1,
        );
        let late = Signature::new(
            "late",
            vec![
                Element::Literal("[".to_string()),
                Element::Class {
                    class: CharClass::Any,
                    min_len: 1,
                    max_len: 64,
                },
                Element::Literal("]".to_string()),
            ],
            1,
        );
        let mut set = SignatureSet::new();
        set.add("A", late.clone());
        set.add("B", early.clone());
        let stream = tokenize(r#"x = this["y"]"#);
        assert_eq!(set.scan_stream(&stream).unwrap().signature.name, "late");

        let mut reversed = SignatureSet::new();
        reversed.add("B", early);
        reversed.add("A", late);
        assert_eq!(
            reversed.scan_stream(&stream).unwrap().signature.name,
            "early"
        );
    }

    #[test]
    fn unanchored_signature_still_matches() {
        // A signature of pure character classes has no literal anchor and
        // must fall back to the linear path.
        let classes_only = Signature::new(
            "classes",
            vec![
                Element::Class {
                    class: CharClass::Lower,
                    min_len: 3,
                    max_len: 8,
                },
                Element::Class {
                    class: CharClass::Digits,
                    min_len: 1,
                    max_len: 4,
                },
            ],
            1,
        );
        let mut set = SignatureSet::new();
        set.add("X", classes_only);
        assert_eq!(set.seal().unanchored_count(), 1);
        assert!(set.scan_stream(&tokenize("abc 123")).is_some());
        assert!(set.scan_stream(&tokenize("ABC 123")).is_none());
    }

    #[test]
    fn adding_a_signature_invalidates_the_sealed_pipeline() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        assert!(!set.is_sealed());
        let _ = set.seal();
        assert!(set.is_sealed());
        set.add("RIG", rig_like_signature());
        assert!(!set.is_sealed(), "add must drop the stale pipeline");
        // The resealed pipeline covers both signatures.
        let stream = kizzle_js::tokenize_document(
            r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#,
        );
        assert_eq!(set.scan_stream(&stream).unwrap().label, "RIG");
    }

    #[test]
    fn cloning_a_sealed_set_shares_the_pipeline() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        let _ = set.seal();
        let clone = set.clone();
        assert!(clone.is_sealed(), "clone keeps the sealed pipeline");
        assert!(
            std::ptr::eq(set.seal(), clone.seal()),
            "shared, not rebuilt"
        );
        // An unsealed set clones unsealed.
        let mut lazy = SignatureSet::new();
        lazy.add("Nuclear", nuclear_like_signature());
        assert!(!lazy.clone().is_sealed());
    }

    #[test]
    fn shared_anchor_literal_fans_out_through_one_bucket() {
        // Many signatures anchored on the same literal but with different
        // class length ranges: the prefilter must pick exactly the right
        // one, in insertion order.
        let mut set = SignatureSet::new();
        for i in 0..50usize {
            set.add(
                "X",
                Signature::new(
                    format!("shared.sig{i}"),
                    vec![
                        Element::Literal("sharedAnchor".to_string()),
                        Element::Class {
                            class: CharClass::Digits,
                            min_len: i + 1,
                            max_len: i + 1,
                        },
                    ],
                    1,
                ),
            );
        }
        assert_eq!(set.seal().literal_count(), 1, "one shared literal");
        // A document whose digit run is 8 long matches exactly sig7.
        let stream = tokenize("sharedAnchor 12345678");
        assert_eq!(
            set.scan_stream(&stream).unwrap().signature.name,
            "shared.sig7"
        );
        let linear = set.scan_stream_linear(&stream).unwrap();
        assert_eq!(linear.signature.name, "shared.sig7");
        assert!(set.scan_stream(&tokenize("sharedAnchor x")).is_none());
    }

    #[test]
    fn duplicate_signatures_are_not_added_twice() {
        let mut set = SignatureSet::new();
        assert!(set.add("Nuclear", nuclear_like_signature()));
        assert!(!set.add("Nuclear", nuclear_like_signature()));
        assert_eq!(set.len(), 1);
        // The same elements under a different label are allowed (families
        // borrow code from each other).
        assert!(set.add("RIG", nuclear_like_signature()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn labels_and_for_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        set.add("Nuclear", rig_like_signature());
        assert_eq!(set.labels(), vec!["Nuclear", "RIG"]);
        assert_eq!(set.for_label("Nuclear").len(), 2);
        assert_eq!(set.for_label("Angler").len(), 0);
        assert_eq!(set.get(0).unwrap().label, "Nuclear");
        assert!(set.get(3).is_none());
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = SignatureSet::new();
        assert!(set.is_empty());
        assert!(set.scan_document("<script>anything()</script>").is_none());
        assert!(set.scan_stream_nearest(&tokenize("anything"), 10).is_none());
    }

    #[test]
    fn extend_deduplicates() {
        let mut set = SignatureSet::new();
        let items = vec![
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
        ];
        set.extend(items);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_lists_signatures() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        let text = set.to_string();
        assert!(text.contains("1 signatures"));
        assert!(text.contains("NEK.sig1"));
    }

    #[test]
    fn nearest_scan_agrees_with_exact_scan_on_hits() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        let stream = kizzle_js::tokenize_document(
            r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#,
        );
        let exact = set.scan_stream(&stream).expect("exact match");
        let nearest = set.scan_stream_nearest(&stream, 5).expect("nearest");
        assert_eq!(nearest.edits, 0);
        assert_eq!(set.get(nearest.index).unwrap().label, exact.label);
    }

    #[test]
    fn nearest_scan_grades_near_misses() {
        let mut set = SignatureSet::new();
        set.add(
            "X",
            Signature::new(
                "x.sig1",
                vec![
                    Element::Literal("decode".to_string()),
                    Element::Literal("(".to_string()),
                    Element::Literal("payload".to_string()),
                    Element::Literal(")".to_string()),
                ],
                1,
            ),
        );
        // One token substituted inside the window: distance 1.
        let stream = tokenize("decode(other)");
        assert!(set.scan_stream(&stream).is_none(), "not an exact match");
        let nearest = set.scan_stream_nearest(&stream, 3).expect("graded");
        assert_eq!(nearest.edits, 1);
        // Budget below the distance: no hit.
        assert!(set.scan_stream_nearest(&stream, 0).is_none());
        // Ties in distance go to the earlier signature; strictly closer
        // later signatures win.
        set.add(
            "Y",
            Signature::new(
                "y.sig1",
                vec![
                    Element::Literal("decode".to_string()),
                    Element::Literal("(".to_string()),
                    Element::Literal("other".to_string()),
                    Element::Literal(")".to_string()),
                ],
                1,
            ),
        );
        let nearest = set.scan_stream_nearest(&stream, 3).expect("graded");
        assert_eq!((nearest.index, nearest.edits), (1, 0));
    }

    #[test]
    fn set_codec_roundtrips_and_rejects_damage() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        let mut enc = Encoder::new();
        set.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SignatureSet::decode_from(&mut dec).expect("decodes");
        dec.finish().expect("fully consumed");
        assert_eq!(restored, set);
        assert_eq!(restored.labels(), set.labels());
        assert!(!restored.is_sealed(), "codec ships members, not pipeline");
        // Truncations fail cleanly.
        let mut dec = Decoder::new(&bytes[..bytes.len() - 3]);
        assert!(SignatureSet::decode_from(&mut dec)
            .and_then(|_| dec.finish())
            .is_err());
    }

    #[test]
    fn pipeline_codec_roundtrips_and_validates() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        let pipeline = set.seal();
        let mut enc = Encoder::new();
        pipeline.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        let decoded = ScanPipeline::decode_from(&mut dec, set.len()).expect("decodes");
        dec.finish().expect("fully consumed");
        assert_eq!(&decoded, pipeline);

        // Wrong signature count is refused (a pipeline must exactly cover
        // the set it serves).
        let mut dec = Decoder::new(&bytes);
        assert!(ScanPipeline::decode_from(&mut dec, set.len() + 1).is_err());

        // Version skew is a typed error so loaders can fall back.
        let mut skewed = bytes.clone();
        skewed[0] ^= 0x40;
        let mut dec = Decoder::new(&skewed);
        assert!(matches!(
            ScanPipeline::decode_from(&mut dec, set.len()),
            Err(SnapshotError::VersionSkew { .. })
        ));

        // A decoded pipeline attached to an equal set scans identically.
        let mut enc = Encoder::new();
        set.encode_into(&mut enc);
        let set_bytes = enc.into_bytes();
        let mut dec = Decoder::new(&set_bytes);
        let mut restored = SignatureSet::decode_from(&mut dec).expect("set decodes");
        let mut dec = Decoder::new(&bytes);
        let decoded = ScanPipeline::decode_from(&mut dec, restored.len()).expect("decodes");
        assert!(restored.attach_pipeline(decoded));
        assert!(restored.is_sealed());
        let doc = r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#;
        assert_eq!(
            restored.scan_document(doc).map(|s| s.label.clone()),
            set.scan_document(doc).map(|s| s.label.clone())
        );

        // Truncations decode to clean errors.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(
                ScanPipeline::decode_from(&mut dec, set.len())
                    .and_then(|_| dec.finish())
                    .is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn attach_pipeline_refuses_mismatched_coverage() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        let pipeline = ScanPipeline::build(&[]);
        assert!(!set.attach_pipeline(pipeline), "covers 0 of 1 signatures");
        assert!(!set.is_sealed());
    }

    #[test]
    fn char_class_codes_roundtrip() {
        for class in CharClass::TEMPLATES {
            assert_eq!(char_class_from_code(char_class_code(class)), Some(class));
        }
        assert_eq!(char_class_from_code(99), None);
    }
}
