//! A deployable set of labeled signatures.
//!
//! This is the consumer side of Kizzle: the signatures the compiler emits
//! are deployed to a scanner (browser, desktop AV, or CDN-side, per the
//! paper's deployment-channel discussion) which matches incoming documents
//! against the active set.
//!
//! Scanning is **anchored**: every signature with a selective literal
//! element (at least `MIN_ANCHOR_LEN` chars; longest text wins — long
//! literals are the most selective) registers that literal in an inverted
//! index from literal text to `(signature, offset)`. A scan walks the
//! document's tokens once, looks each token up in the index, and only
//! verifies a full signature window where an anchor literal actually
//! occurs — so a non-matching document costs `O(tokens)` hash lookups
//! instead of `O(signatures × tokens × signature_len)` window comparisons.
//! Signatures with no selective literal (rare: pure character classes, or
//! only ubiquitous punctuation like `=` and `[`) fall back to the linear
//! scan.

use crate::pattern::{Element, Signature};
use kizzle_js::{tokenize_document, TokenStream};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A signature together with the label of the family it detects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LabeledSignature {
    /// Family label (e.g. `"Nuclear"`).
    pub label: String,
    /// The structural signature.
    pub signature: Signature,
}

/// A collection of labeled signatures with scan helpers.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SignatureSet {
    signatures: Vec<LabeledSignature>,
    /// Exact-duplicate filter: hash of `(label, elements)` → indices into
    /// `signatures` with that hash, so [`SignatureSet::add`] is
    /// `O(signature_len)` instead of a linear scan over the whole set —
    /// without a second copy of every label and element vector.
    dedup: HashMap<u64, Vec<usize>>,
    /// Distinct labels in first-insertion order (what [`SignatureSet::labels`]
    /// returns without rescanning).
    label_order: Vec<String>,
    /// Anchor index: literal token text → every `(signature index, element
    /// offset of that literal)` that chose it as its anchor.
    anchors: HashMap<String, Vec<(usize, usize)>>,
    /// Indices of signatures with no literal element, scanned linearly.
    unanchored: Vec<usize>,
}

/// Shortest literal worth anchoring on. Literals below this (single
/// punctuation like `=` or `[`, two-char operators/keywords) occur so often
/// in benign documents that every occurrence would trigger a full window
/// verification, degrading the anchored scan below the linear one; such
/// signatures go to the `unanchored` fallback instead.
const MIN_ANCHOR_LEN: usize = 3;

/// The anchor of a signature: the offset of its longest literal element, if
/// that literal is selective enough (see [`MIN_ANCHOR_LEN`]).
fn anchor_of(signature: &Signature) -> Option<(usize, &str)> {
    signature
        .elements
        .iter()
        .enumerate()
        .filter_map(|(offset, element)| match element {
            Element::Literal(text) if text.len() >= MIN_ANCHOR_LEN => Some((offset, text.as_str())),
            _ => None,
        })
        .max_by_key(|(_, text)| text.len())
}

/// Dedup key: hash of the `(label, elements)` pair.
fn dedup_key(label: &str, elements: &[Element]) -> u64 {
    let mut hasher = DefaultHasher::new();
    label.hash(&mut hasher);
    elements.hash(&mut hasher);
    hasher.finish()
}

impl SignatureSet {
    /// Create an empty set.
    #[must_use]
    pub fn new() -> Self {
        SignatureSet::default()
    }

    /// Number of signatures in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if the set contains no signatures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Add a signature under a family label. If an identical signature is
    /// already present under the same label, the set is unchanged and
    /// `false` is returned.
    pub fn add(&mut self, label: impl Into<String>, signature: Signature) -> bool {
        let label = label.into();
        let index = self.signatures.len();
        let bucket = self
            .dedup
            .entry(dedup_key(&label, &signature.elements))
            .or_default();
        if bucket.iter().any(|&i| {
            let existing = &self.signatures[i];
            existing.label == label && existing.signature.elements == signature.elements
        }) {
            return false;
        }
        bucket.push(index);
        if !self.label_order.contains(&label) {
            self.label_order.push(label.clone());
        }
        match anchor_of(&signature) {
            Some((offset, text)) => self
                .anchors
                .entry(text.to_string())
                .or_default()
                .push((index, offset)),
            None => self.unanchored.push(index),
        }
        self.signatures.push(LabeledSignature { label, signature });
        true
    }

    /// Iterate over the labeled signatures.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledSignature> {
        self.signatures.iter()
    }

    /// Signatures carrying a specific label.
    #[must_use]
    pub fn for_label(&self, label: &str) -> Vec<&LabeledSignature> {
        self.signatures
            .iter()
            .filter(|s| s.label == label)
            .collect()
    }

    /// Does `signature` match `stream` with its element at `offset` placed
    /// on the token at `position`?
    fn window_matches(
        signature: &Signature,
        stream: &TokenStream,
        position: usize,
        offset: usize,
    ) -> bool {
        let Some(start) = position.checked_sub(offset) else {
            return false;
        };
        let tokens = stream.tokens();
        let n = signature.elements.len();
        if start + n > tokens.len() {
            return false;
        }
        signature
            .elements
            .iter()
            .zip(&tokens[start..start + n])
            .all(|(element, token)| element.matches_token(token))
    }

    /// Scan an already tokenized sample; returns the first matching
    /// signature in insertion order (the same answer the linear scan
    /// gives), located through the anchor index.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<&LabeledSignature> {
        // Collect candidate signatures whose anchor literal occurs in the
        // document, with every position it occurs at.
        let mut best: Option<usize> = None;
        let consider = |idx: usize, best: &mut Option<usize>| {
            if best.is_none_or(|b| idx < b) {
                *best = Some(idx);
            }
        };
        for (position, token) in stream.tokens().iter().enumerate() {
            if let Some(hits) = self.anchors.get(token.unquoted()) {
                for &(idx, offset) in hits {
                    if best.is_some_and(|b| idx >= b) {
                        continue;
                    }
                    if Self::window_matches(
                        &self.signatures[idx].signature,
                        stream,
                        position,
                        offset,
                    ) {
                        consider(idx, &mut best);
                        if best == Some(0) {
                            // Signature 0 is first in insertion order;
                            // nothing can beat it, so stop scanning.
                            return Some(&self.signatures[0]);
                        }
                    }
                }
            }
        }
        // Unanchored signatures cannot use the index; check them directly.
        for &idx in &self.unanchored {
            if best.is_some_and(|b| idx >= b) {
                continue;
            }
            if self.signatures[idx].signature.matches_stream(stream) {
                consider(idx, &mut best);
            }
        }
        best.map(|idx| &self.signatures[idx])
    }

    /// Reference linear scan: first signature (in insertion order) matching
    /// anywhere in the stream. Kept as the oracle the anchored
    /// [`SignatureSet::scan_stream`] is benchmarked and property-tested
    /// against.
    #[must_use]
    pub fn scan_stream_linear(&self, stream: &TokenStream) -> Option<&LabeledSignature> {
        self.signatures
            .iter()
            .find(|s| s.signature.matches_stream(stream))
    }

    /// Scan a raw HTML/JavaScript document.
    #[must_use]
    pub fn scan_document(&self, document: &str) -> Option<&LabeledSignature> {
        self.scan_stream(&tokenize_document(document))
    }

    /// All labels with at least one signature, deduplicated, in insertion
    /// order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.label_order.iter().map(String::as_str).collect()
    }
}

impl PartialEq for SignatureSet {
    fn eq(&self, other: &Self) -> bool {
        // The lookup structures are derived from `signatures`; comparing
        // the members is the whole story.
        self.signatures == other.signatures
    }
}

impl Eq for SignatureSet {}

impl Extend<LabeledSignature> for SignatureSet {
    fn extend<T: IntoIterator<Item = LabeledSignature>>(&mut self, iter: T) {
        for item in iter {
            self.add(item.label, item.signature);
        }
    }
}

impl fmt::Display for SignatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SignatureSet ({} signatures)", self.signatures.len())?;
        for sig in &self.signatures {
            writeln!(f, "  [{}] {}", sig.label, sig.signature.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_signature;
    use crate::pattern::{CharClass, SignatureConfig};
    use kizzle_js::tokenize;

    fn nuclear_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"Euur1V = this["l9D"]("ev#333399al");"#),
            tokenize(r#"jkb0hA = this["uqA"]("ev#ccff00al");"#),
        ];
        generate_signature(
            "NEK.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    fn rig_like_signature() -> Signature {
        let samples = vec![
            tokenize(r#"pieces = buffer.split(delim); el.text += String.fromCharCode(pieces[i]);"#),
            tokenize(r#"parts = acc.split(dl); el.text += String.fromCharCode(parts[j]);"#),
        ];
        generate_signature(
            "RIG.sig1",
            &samples,
            &SignatureConfig {
                min_tokens: 4,
                ..SignatureConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scan_returns_the_matching_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        assert_eq!(set.len(), 2);

        let hit = set
            .scan_document(r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#)
            .expect("should match Nuclear");
        assert_eq!(hit.label, "Nuclear");

        let hit = set
            .scan_document(r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#)
            .expect("should match RIG");
        assert_eq!(hit.label, "RIG");

        assert!(set
            .scan_document("<script>function benign() { return 42; }</script>")
            .is_none());
    }

    #[test]
    fn anchored_scan_agrees_with_linear_scan() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        for doc in [
            r#"<script>zZzQ9p = this["abc"]("ev#000000al");</script>"#,
            r#"<script>piece = buf.split(del); el.text += String.fromCharCode(piece[k]);</script>"#,
            "<script>function benign() { return 42; }</script>",
            "",
            "<script>this this this = = = fromCharCode</script>",
        ] {
            let stream = kizzle_js::tokenize_document(doc);
            let anchored = set.scan_stream(&stream).map(|s| s.signature.name.clone());
            let linear = set
                .scan_stream_linear(&stream)
                .map(|s| s.signature.name.clone());
            assert_eq!(anchored, linear, "doc: {doc}");
        }
    }

    #[test]
    fn first_match_in_insertion_order_wins() {
        // Two signatures that both match the same document; the earlier
        // one must win, exactly as in the linear scan.
        let early = Signature::new(
            "early",
            vec![
                Element::Literal("this".to_string()),
                Element::Literal("[".to_string()),
            ],
            1,
        );
        let late = Signature::new(
            "late",
            vec![
                Element::Literal("[".to_string()),
                Element::Class {
                    class: CharClass::Any,
                    min_len: 1,
                    max_len: 64,
                },
                Element::Literal("]".to_string()),
            ],
            1,
        );
        let mut set = SignatureSet::new();
        set.add("A", late.clone());
        set.add("B", early.clone());
        let stream = tokenize(r#"x = this["y"]"#);
        assert_eq!(set.scan_stream(&stream).unwrap().signature.name, "late");

        let mut reversed = SignatureSet::new();
        reversed.add("B", early);
        reversed.add("A", late);
        assert_eq!(
            reversed.scan_stream(&stream).unwrap().signature.name,
            "early"
        );
    }

    #[test]
    fn unanchored_signature_still_matches() {
        // A signature of pure character classes has no literal anchor and
        // must fall back to the linear path.
        let classes_only = Signature::new(
            "classes",
            vec![
                Element::Class {
                    class: CharClass::Lower,
                    min_len: 3,
                    max_len: 8,
                },
                Element::Class {
                    class: CharClass::Digits,
                    min_len: 1,
                    max_len: 4,
                },
            ],
            1,
        );
        let mut set = SignatureSet::new();
        set.add("X", classes_only);
        assert!(set.scan_stream(&tokenize("abc 123")).is_some());
        assert!(set.scan_stream(&tokenize("ABC 123")).is_none());
    }

    #[test]
    fn duplicate_signatures_are_not_added_twice() {
        let mut set = SignatureSet::new();
        assert!(set.add("Nuclear", nuclear_like_signature()));
        assert!(!set.add("Nuclear", nuclear_like_signature()));
        assert_eq!(set.len(), 1);
        // The same elements under a different label are allowed (families
        // borrow code from each other).
        assert!(set.add("RIG", nuclear_like_signature()));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn labels_and_for_label() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        set.add("RIG", rig_like_signature());
        set.add("Nuclear", rig_like_signature());
        assert_eq!(set.labels(), vec!["Nuclear", "RIG"]);
        assert_eq!(set.for_label("Nuclear").len(), 2);
        assert_eq!(set.for_label("Angler").len(), 0);
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = SignatureSet::new();
        assert!(set.is_empty());
        assert!(set.scan_document("<script>anything()</script>").is_none());
    }

    #[test]
    fn extend_deduplicates() {
        let mut set = SignatureSet::new();
        let items = vec![
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
            LabeledSignature {
                label: "Nuclear".to_string(),
                signature: nuclear_like_signature(),
            },
        ];
        set.extend(items);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_lists_signatures() {
        let mut set = SignatureSet::new();
        set.add("Nuclear", nuclear_like_signature());
        let text = set.to_string();
        assert!(text.contains("1 signatures"));
        assert!(text.contains("NEK.sig1"));
    }
}
