//! Unpacker for the Nuclear packer (paper Fig. 4(b)).
//!
//! Nuclear encodes the payload as fixed-width decimal indexes into a
//! per-response shuffled `cryptkey` string; characters outside the key
//! (whitespace, quotes, backslashes) are escaped as an out-of-range index
//! followed by a three-digit character code. The August 12, 2014 semantic
//! packer change widened the index from two to three digits, so the
//! unpacker tries both widths and keeps the decode that looks like
//! JavaScript — which is exactly how an analyst-maintained unpacker handles
//! a packer revision.

use crate::literals::string_literals;
use crate::{looks_like_javascript, Result, UnpackError};

/// Length of the shuffled key emitted by the packer: the printable ASCII
/// alphabet minus the double quote and backslash.
const KEY_LEN: usize = 92;

/// Minimum number of digits for a literal to be considered the encoded
/// payload.
const MIN_PAYLOAD_LEN: usize = 64;

/// Unpack a Nuclear-packed script.
///
/// # Errors
///
/// Returns [`UnpackError::MissingComponent`] if the cryptkey or encoded
/// payload cannot be found, and [`UnpackError::MalformedEncoding`] if
/// neither index width produces a plausible payload.
pub fn unpack(js: &str) -> Result<String> {
    let literals = string_literals(js);

    let key = literals
        .iter()
        .map(|lit| lit.value.as_str())
        .find(|v| v.chars().count() == KEY_LEN && !v.chars().any(|c| c.is_ascii_whitespace()))
        .ok_or(UnpackError::MissingComponent("Nuclear cryptkey"))?;

    let payload = literals
        .iter()
        .map(|lit| lit.value.as_str())
        .filter(|v| v.len() >= MIN_PAYLOAD_LEN && v.bytes().all(|b| b.is_ascii_digit()))
        .max_by_key(|v| v.len())
        .ok_or(UnpackError::MissingComponent("Nuclear encoded payload"))?;

    let key_chars: Vec<char> = key.chars().collect();
    let candidates: Vec<String> = [2usize, 3]
        .iter()
        .filter_map(|&width| decode(payload, &key_chars, width))
        .collect();

    candidates
        .into_iter()
        .max_by(|a, b| score(a).partial_cmp(&score(b)).expect("scores are finite"))
        .filter(|text| looks_like_javascript(text))
        .ok_or_else(|| {
            UnpackError::MalformedEncoding("Nuclear payload decoded to garbage".to_string())
        })
}

/// Decode the digit stream with the given index width. Returns `None` on
/// structural errors (odd trailing digits, out-of-range indexes).
fn decode(digits: &str, key: &[char], width: usize) -> Option<String> {
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() / width);
    let mut pos = 0;
    while pos < bytes.len() {
        if pos + width > bytes.len() {
            return None;
        }
        let idx: usize = digits[pos..pos + width].parse().ok()?;
        pos += width;
        if idx < key.len() {
            out.push(key[idx]);
        } else if idx == key.len() {
            // Escape: the next three digits are the raw character code.
            if pos + 3 > bytes.len() {
                return None;
            }
            let code: u32 = digits[pos..pos + 3].parse().ok()?;
            pos += 3;
            out.push(char::from_u32(code)?);
        } else {
            return None;
        }
    }
    Some(out)
}

/// Score a candidate decode: fraction of printable characters plus a bonus
/// for JavaScript keywords.
fn score(text: &str) -> f64 {
    if text.is_empty() {
        return 0.0;
    }
    let printable = text
        .bytes()
        .filter(|b| b.is_ascii_graphic() || b.is_ascii_whitespace())
        .count() as f64
        / text.len() as f64;
    let keywords = ["function", "var ", "return", "document"]
        .iter()
        .filter(|kw| text.contains(**kw))
        .count() as f64;
    printable + keywords
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{KitFamily, KitModel, SimDate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn packed_script(day: u32, seed: u64) -> (String, String) {
        let model = KitModel::new(KitFamily::Nuclear);
        let date = SimDate::new(2014, 8, day);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let html = model.generate_sample(date, &mut rng);
        (crate::script_text(&html), model.reference_payload(date))
    }

    #[test]
    fn decodes_two_digit_indexes_before_august_12() {
        let (js, expected) = packed_script(5, 1);
        assert_eq!(unpack(&js).unwrap(), expected);
    }

    #[test]
    fn decodes_three_digit_indexes_after_the_semantic_change() {
        let (js, expected) = packed_script(20, 2);
        assert_eq!(unpack(&js).unwrap(), expected);
    }

    #[test]
    fn escaped_characters_roundtrip() {
        // The payload contains spaces, newlines, quotes and backslashes
        // (the AV-check block); all of them go through the escape path.
        let (js, expected) = packed_script(30, 3);
        let unpacked = unpack(&js).unwrap();
        // The payload *source text* spells the path with escaped (double)
        // backslashes; those exact characters must survive the roundtrip.
        assert!(unpacked.contains(r"c:\\windows\\system32"));
        assert_eq!(unpacked, expected);
    }

    #[test]
    fn missing_key_is_reported() {
        let err = unpack("var payload = \"123456\";").unwrap_err();
        assert_eq!(err, UnpackError::MissingComponent("Nuclear cryptkey"));
    }

    #[test]
    fn missing_payload_is_reported() {
        let key: String = ('!'..='~').filter(|c| *c != '"' && *c != '\\').collect();
        let js = format!("var k = \"{key}\";");
        let err = unpack(&js).unwrap_err();
        assert_eq!(
            err,
            UnpackError::MissingComponent("Nuclear encoded payload")
        );
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let key: Vec<char> = ('a'..='z').collect();
        assert_eq!(decode("012", &key, 2), None, "odd trailing digit");
        assert!(decode("0102", &key, 2).is_some());
    }
}
