//! Unpacker for the RIG packer (paper Fig. 4(a)).
//!
//! RIG accumulates the payload's character codes, separated by a short
//! randomized delimiter, through repeated `collect("...")` calls, then
//! splits and rebuilds the payload with `String.fromCharCode`. The unpacker
//! statically re-performs that computation: find the delimiter, gather the
//! encoded chunks, join, split and decode.

use crate::literals::{decode_charcodes, is_digits_and, string_literals};
use crate::{Result, UnpackError};

/// Minimum length for a string literal to be considered an encoded payload
/// chunk rather than a decorative constant.
const MIN_CHUNK_LEN: usize = 20;

/// Maximum length of the delimiter literal.
const MAX_DELIM_LEN: usize = 8;

/// Unpack a RIG-packed script.
///
/// # Errors
///
/// Returns [`UnpackError::MissingComponent`] if no delimiter or no encoded
/// chunks are present, and [`UnpackError::MalformedEncoding`] if the chunks
/// do not decode to character codes.
pub fn unpack(js: &str) -> Result<String> {
    let literals = string_literals(js);

    // The delimiter is the first short, non-empty literal that precedes the
    // encoded chunks (RIG declares `var delim = "y6";` before the first
    // collect() call).
    let delimiter = literals
        .iter()
        .find(|lit| {
            !lit.value.is_empty()
                && lit.value.len() <= MAX_DELIM_LEN
                && !lit.value.chars().next().is_some_and(|c| c.is_ascii_digit())
        })
        .map(|lit| lit.value.clone())
        .ok_or(UnpackError::MissingComponent("RIG delimiter"))?;

    // Encoded chunks are the string arguments of the accumulator calls
    // (`collect("...")`): selected by call context rather than length so
    // that a short trailing chunk is never dropped.
    let encoded: String = literals
        .iter()
        .filter(|lit| {
            lit.previous.as_deref() == Some("(")
                && is_digits_and(&lit.value, &delimiter)
                && (lit.value.len() >= MIN_CHUNK_LEN
                    || lit.value.chars().any(|c| c.is_ascii_digit()))
        })
        .map(|lit| lit.value.as_str())
        .collect();
    if encoded.is_empty() {
        return Err(UnpackError::MissingComponent("RIG encoded chunks"));
    }

    decode_charcodes(&encoded, &delimiter).ok_or_else(|| {
        UnpackError::MalformedEncoding(format!(
            "RIG chunks did not decode with delimiter {delimiter:?}"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written miniature of the paper's Fig. 4(a).
    fn figure_4a(payload: &str, delim: &str) -> String {
        let encoded: String = payload
            .chars()
            .map(|c| format!("{}{delim}", c as u32))
            .collect();
        let (a, b) = encoded.split_at(encoded.len() / 2);
        format!(
            r#"var buffer="";
var delim="{delim}";
function collect(text) {{ buffer += text; }}
collect("{a}");
collect("{b}");
var pieces = buffer.split(delim);
var screlem = document.createElement("script");
for (var i=0; i<pieces.length; i++) {{ screlem.text += String.fromCharCode(pieces[i]); }}
document.body.appendChild(screlem);"#
        )
    }

    #[test]
    fn unpacks_the_figure_4a_shape() {
        let payload = "var x = document.title; eval(x); function go() { return 1; }";
        let js = figure_4a(payload, "y6");
        assert_eq!(unpack(&js).unwrap(), payload);
    }

    #[test]
    fn works_with_multi_character_delimiters() {
        let payload = "function f(a, b) { return a + b; }";
        for delim in ["y6", "p3k", "zz4", "qX"] {
            let js = figure_4a(payload, delim);
            assert_eq!(unpack(&js).unwrap(), payload, "delimiter {delim}");
        }
    }

    #[test]
    fn missing_chunks_is_an_error() {
        let err = unpack("var delim=\"y6\"; var other = 1;").unwrap_err();
        assert_eq!(err, UnpackError::MissingComponent("RIG encoded chunks"));
    }

    #[test]
    fn missing_delimiter_is_an_error() {
        let err = unpack("var a = 1 + 2;").unwrap_err();
        assert_eq!(err, UnpackError::MissingComponent("RIG delimiter"));
    }
}
