//! String-literal extraction shared by the unpackers.

use kizzle_js::{tokenize, TokenClass};

/// A string literal found in a script, with its surrounding context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLiteral {
    /// The literal's content, without quotes.
    pub value: String,
    /// Index of the token within the script's token stream.
    pub token_index: usize,
    /// The concrete text of the previous non-string token, if any (used to
    /// recognize patterns like `split("...")`).
    pub previous: Option<String>,
}

/// Extract every string literal of a script, in source order.
#[must_use]
pub fn string_literals(js: &str) -> Vec<StringLiteral> {
    let stream = tokenize(js);
    let tokens = stream.tokens();
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.class == TokenClass::String {
            out.push(StringLiteral {
                value: tok.unquoted().to_string(),
                token_index: i,
                previous: i.checked_sub(1).map(|p| tokens[p].text.clone()),
            });
        }
    }
    out
}

/// True if `value` consists only of ASCII digits and characters drawn from
/// `extra`.
#[must_use]
pub fn is_digits_and(value: &str, extra: &str) -> bool {
    !value.is_empty()
        && value
            .chars()
            .all(|c| c.is_ascii_digit() || extra.contains(c))
}

/// Decode a stream of decimal character codes separated by `delimiter` into
/// text. Empty segments (e.g. from a trailing delimiter) are skipped.
///
/// Returns `None` if any non-empty segment is not a valid character code.
#[must_use]
pub fn decode_charcodes(encoded: &str, delimiter: &str) -> Option<String> {
    if delimiter.is_empty() {
        return None;
    }
    let mut out = String::with_capacity(encoded.len() / (delimiter.len() + 2));
    for segment in encoded.split(delimiter) {
        if segment.is_empty() {
            continue;
        }
        let code: u32 = segment.parse().ok()?;
        out.push(char::from_u32(code)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_are_extracted_in_order_with_context() {
        let js = r#"var a = "first"; b.split("second"); c("third");"#;
        let lits = string_literals(js);
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[0].value, "first");
        assert_eq!(lits[1].value, "second");
        assert_eq!(lits[1].previous.as_deref(), Some("("));
        assert!(lits[0].token_index < lits[1].token_index);
    }

    #[test]
    fn is_digits_and_accepts_only_the_given_alphabet() {
        assert!(is_digits_and("104y6101y6", "y6"));
        assert!(!is_digits_and("104z6101", "y6"));
        assert!(!is_digits_and("", "y6"));
        assert!(is_digits_and("123456", ""));
    }

    #[test]
    fn decode_charcodes_roundtrip() {
        let encoded = "104y6101y6108y6108y6111y6";
        assert_eq!(decode_charcodes(encoded, "y6").as_deref(), Some("hello"));
        // Trailing delimiter and empty segments are tolerated.
        assert_eq!(decode_charcodes("72y6y673y6", "y6").as_deref(), Some("HI"));
    }

    #[test]
    fn decode_charcodes_rejects_garbage() {
        assert_eq!(decode_charcodes("10xy", "y6"), None);
        assert_eq!(decode_charcodes("104", ""), None);
        assert_eq!(decode_charcodes("4294967295y6", "y6"), None, "not a char");
    }
}
