//! Unpacker for the Sweet Orange packer.
//!
//! Sweet Orange pushes delimiter-joined character codes into an array,
//! joins the array, splits on the delimiter and rebuilds the payload with
//! `String.fromCharCode`, while hiding the decoder's integer constants
//! behind arithmetic identities (`Math.sqrt(196)` for `14`, swapped for
//! `Math.exp(1) - Math.E` after the kit's packer revision). The unpacker
//! only needs the delimiter — taken from the `split("...")` call — and the
//! pushed chunks.

use crate::literals::{decode_charcodes, is_digits_and, string_literals, StringLiteral};
use crate::{Result, UnpackError};

/// Unpack a Sweet Orange-packed script.
///
/// # Errors
///
/// Returns [`UnpackError::MissingComponent`] if the delimiter or chunks are
/// missing, and [`UnpackError::MalformedEncoding`] if the chunks cannot be
/// decoded as character codes.
pub fn unpack(js: &str) -> Result<String> {
    let literals = string_literals(js);

    let delimiter = find_split_delimiter(js, &literals)
        .ok_or(UnpackError::MissingComponent("Sweet Orange delimiter"))?;

    let encoded: String = literals
        .iter()
        .filter(|lit| {
            lit.previous.as_deref() == Some("(")
                && lit.value != delimiter
                && lit.value.chars().any(|c| c.is_ascii_digit())
                && is_digits_and(&lit.value, &delimiter)
        })
        .map(|lit| lit.value.as_str())
        .collect();
    if encoded.is_empty() {
        return Err(UnpackError::MissingComponent("Sweet Orange encoded chunks"));
    }

    decode_charcodes(&encoded, &delimiter).ok_or_else(|| {
        UnpackError::MalformedEncoding(format!(
            "Sweet Orange chunks did not decode with delimiter {delimiter:?}"
        ))
    })
}

/// The delimiter is the string literal passed to `.split("...")`.
fn find_split_delimiter(js: &str, literals: &[StringLiteral]) -> Option<String> {
    // Token-context scan: a literal whose predecessor is `(` and which is
    // preceded in the source by `split` just before that parenthesis.
    for lit in literals {
        if lit.previous.as_deref() != Some("(") || lit.value.is_empty() || lit.value.len() > 8 {
            continue;
        }
        // Cheap source-level confirmation that this call is `.split(`.
        let needle = format!("split(\"{}\")", lit.value);
        if js.contains(&needle) {
            return Some(lit.value.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{KitFamily, KitModel, SimDate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrips_generated_sweet_orange_samples_across_the_revision() {
        let model = KitModel::new(KitFamily::SweetOrange);
        // August 10 is the packer revision (Math.sqrt -> Math.exp identity).
        for (day, seed) in [(5u32, 10u64), (9, 11), (10, 12), (25, 13)] {
            let date = SimDate::new(2014, 8, day);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let html = model.generate_sample(date, &mut rng);
            let unpacked = unpack(&crate::script_text(&html)).unwrap();
            assert_eq!(unpacked, model.reference_payload(date), "8/{day}");
        }
    }

    #[test]
    fn hand_written_sample_decodes() {
        let payload = "var player = document.getElementById(\"vid\"); player.play();";
        let delim = "bEW";
        let encoded: String = payload
            .chars()
            .map(|c| format!("{}{delim}", c as u32))
            .collect();
        let js = format!(
            "var ar = [];\nar.push(\"{encoded}\");\nfunction dec() {{\n  var ok = ar.join(\"\").split(\"{delim}\");\n  var s = \"\";\n  for (var q = Math.sqrt(0); q < ok.length - Math.sqrt(1); q++) {{ s += String.fromCharCode(parseInt(ok[q], 10)); }}\n  return s;\n}}\nwindow[\"ev\" + \"al\"](dec());"
        );
        assert_eq!(unpack(&js).unwrap(), payload);
    }

    #[test]
    fn missing_split_call_is_reported() {
        let err = unpack("var a = [1, 2, 3]; a.join(\"\");").unwrap_err();
        assert_eq!(err, UnpackError::MissingComponent("Sweet Orange delimiter"));
    }

    #[test]
    fn missing_chunks_is_reported() {
        let js = "var ok = x.split(\"bEW\"); var y = 1;";
        let err = unpack(js).unwrap_err();
        assert_eq!(
            err,
            UnpackError::MissingComponent("Sweet Orange encoded chunks")
        );
    }
}
