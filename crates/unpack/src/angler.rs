//! Unpacker for the Angler packer.
//!
//! Angler scatters the hex-encoded payload over several chunk variables,
//! concatenates them at runtime and decodes two hex digits at a time. The
//! unpacker gathers the hex chunk literals in source order and performs the
//! same decode statically.

use crate::literals::string_literals;
use crate::{Result, UnpackError};

/// Minimum length for a literal to be considered a hex chunk (filters out
/// short decorative strings that happen to be hex, like `"ad"`).
const MIN_CHUNK_LEN: usize = 8;

/// Unpack an Angler-packed script.
///
/// # Errors
///
/// Returns [`UnpackError::MissingComponent`] when no hex chunks are present
/// and [`UnpackError::MalformedEncoding`] when the concatenated chunks are
/// not valid hex-encoded text.
pub fn unpack(js: &str) -> Result<String> {
    let hex: String = string_literals(js)
        .iter()
        .filter(|lit| is_hex_chunk(&lit.value))
        .map(|lit| lit.value.as_str())
        .collect();
    if hex.is_empty() {
        return Err(UnpackError::MissingComponent("Angler hex chunks"));
    }
    decode_hex(&hex)
        .ok_or_else(|| UnpackError::MalformedEncoding("Angler hex payload invalid".to_string()))
}

fn is_hex_chunk(value: &str) -> bool {
    value.len() >= MIN_CHUNK_LEN
        && value.len().is_multiple_of(2)
        && value
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn decode_hex(hex: &str) -> Option<String> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        let s = std::str::from_utf8(pair).ok()?;
        bytes.push(u8::from_str_radix(s, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{KitFamily, KitModel, SimDate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrips_generated_angler_samples() {
        let model = KitModel::new(KitFamily::Angler);
        for (day, seed) in [(5u32, 1u64), (13, 2), (25, 3)] {
            let date = SimDate::new(2014, 8, day);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let html = model.generate_sample(date, &mut rng);
            let unpacked = unpack(&crate::script_text(&html)).unwrap();
            assert_eq!(unpacked, model.reference_payload(date), "8/{day}");
        }
    }

    #[test]
    fn hand_written_chunked_hex_decodes() {
        let payload = "function probe() { return navigator.userAgent; } probe();";
        let hex: String = payload.bytes().map(|b| format!("{b:02x}")).collect();
        let (a, b) = hex.split_at(hex.len() / 2 - (hex.len() / 2) % 2);
        let js = format!(
            "var q1 = \"{a}\";\nvar q2 = \"{b}\";\nvar all = q1 + q2;\nwindow[\"ev\" + \"al\"](all);"
        );
        assert_eq!(unpack(&js).unwrap(), payload);
    }

    #[test]
    fn short_hex_lookalikes_are_ignored() {
        let err = unpack("var color = \"ffeedd\"; var x = 1;").unwrap_err();
        assert_eq!(err, UnpackError::MissingComponent("Angler hex chunks"));
    }

    #[test]
    fn invalid_utf8_is_reported_as_malformed() {
        // 0xff bytes are not valid UTF-8 text.
        let js = "var q = \"ffffffffffffffff\"; var r = \"ffffffffffffffff\";";
        let err = unpack(js).unwrap_err();
        assert!(matches!(err, UnpackError::MalformedEncoding(_)));
    }

    #[test]
    fn hex_chunk_predicate() {
        assert!(is_hex_chunk("00ff12ab"));
        assert!(!is_hex_chunk("00ff12a"), "odd length");
        assert!(
            !is_hex_chunk("00FF12AB"),
            "uppercase is not produced by the packer"
        );
        assert!(!is_hex_chunk("short"));
    }
}
