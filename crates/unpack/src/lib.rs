//! # kizzle-unpack — per-kit unpackers
//!
//! Kizzle labels a cluster by unpacking its prototype and comparing the
//! unpacked body against known kits. The paper's implementation does not
//! hook a JavaScript engine's `eval` loop; instead, "for our work, which
//! focuses on a fixed set of exploit kits, we instead implemented unpackers
//! for all kits under investigation" (§III-A). This crate does exactly
//! that for the four packers modeled in `kizzle-corpus`:
//!
//! * [`rig`] — re-joins the delimiter-separated character codes accumulated
//!   through `collect("...")` calls.
//! * [`nuclear`] — recovers the shuffled `cryptkey` and decodes the
//!   fixed-width key-index payload (handling the kit's August 12 switch
//!   from two- to three-digit indexes).
//! * [`angler`] — concatenates the hex chunk variables and decodes them.
//! * [`sweet_orange`] — finds the `split("...")` delimiter and decodes the
//!   delimiter-joined character codes.
//!
//! All unpackers are static string/token processors: they never execute the
//! sample. [`unpack`] dispatches by family; [`try_unpack_any`] is the
//! "which unpacker applies?" loop used when the family is unknown, and
//! [`unpack_or_passthrough`] is what the labeling stage calls on a cluster
//! prototype — benign prototypes simply pass through unmodified.
//!
//! ## Example
//!
//! ```
//! use kizzle_corpus::{KitFamily, KitModel, SimDate};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let model = KitModel::new(KitFamily::Rig);
//! let date = SimDate::new(2014, 8, 10);
//! let landing_page = model.generate_sample(date, &mut rng);
//!
//! let unpacked = kizzle_unpack::unpack(KitFamily::Rig, &landing_page).unwrap();
//! assert!(unpacked.contains("launch_rig"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angler;
pub mod nuclear;
pub mod rig;
pub mod sweet_orange;

mod literals;

pub use literals::{string_literals, StringLiteral};

use kizzle_corpus::KitFamily;
use std::fmt;

/// Why an unpacker failed on a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackError {
    /// The document contains no inline script to unpack.
    NoScript,
    /// A required component of the packer (key, payload, delimiter, hex
    /// chunks) could not be located.
    MissingComponent(&'static str),
    /// The encoded payload was found but could not be decoded.
    MalformedEncoding(String),
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnpackError::NoScript => f.write_str("document contains no inline script"),
            UnpackError::MissingComponent(what) => {
                write!(f, "packer component not found: {what}")
            }
            UnpackError::MalformedEncoding(detail) => {
                write!(f, "encoded payload could not be decoded: {detail}")
            }
        }
    }
}

impl std::error::Error for UnpackError {}

/// Result alias for unpacking operations.
pub type Result<T> = std::result::Result<T, UnpackError>;

/// Extract the inline-script text of an HTML document (or return the input
/// unchanged when it is bare JavaScript).
#[must_use]
pub fn script_text(document: &str) -> String {
    let scripts = kizzle_js::extract_scripts(document);
    if scripts.is_empty() {
        return document.to_string();
    }
    scripts
        .iter()
        .map(|s| s.body.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Unpack a document with the unpacker for a specific kit family.
///
/// # Errors
///
/// Returns an [`UnpackError`] if the document does not contain that
/// family's packer structure or the payload cannot be decoded.
pub fn unpack(family: KitFamily, document: &str) -> Result<String> {
    let js = script_text(document);
    if js.trim().is_empty() {
        return Err(UnpackError::NoScript);
    }
    match family {
        KitFamily::Rig => rig::unpack(&js),
        KitFamily::Nuclear => nuclear::unpack(&js),
        KitFamily::Angler => angler::unpack(&js),
        KitFamily::SweetOrange => sweet_orange::unpack(&js),
    }
}

/// Try every family's unpacker and return the first success.
///
/// Unpackers are tried in a fixed order (Nuclear, Angler, RIG, Sweet
/// Orange); the packer structures are distinct enough that at most one
/// realistic decoder produces a plausible JavaScript payload, and the
/// result is validated before being accepted.
#[must_use]
pub fn try_unpack_any(document: &str) -> Option<(KitFamily, String)> {
    for family in [
        KitFamily::Nuclear,
        KitFamily::Angler,
        KitFamily::Rig,
        KitFamily::SweetOrange,
    ] {
        if let Ok(payload) = unpack(family, document) {
            if looks_like_javascript(&payload) {
                return Some((family, payload));
            }
        }
    }
    None
}

/// Unpack a cluster prototype if any unpacker applies; otherwise return the
/// document's script text unchanged (benign prototypes and already-unpacked
/// code flow through the labeling stage as-is).
#[must_use]
pub fn unpack_or_passthrough(document: &str) -> (Option<KitFamily>, String) {
    match try_unpack_any(document) {
        Some((family, payload)) => (Some(family), payload),
        None => (None, script_text(document)),
    }
}

/// A cheap sanity check that a decoded payload is JavaScript-ish text and
/// not the garbage a wrong decoder produces.
#[must_use]
pub fn looks_like_javascript(text: &str) -> bool {
    if text.len() < 40 {
        return false;
    }
    let printable = text
        .bytes()
        .filter(|b| b.is_ascii_graphic() || b.is_ascii_whitespace())
        .count();
    if (printable as f64) < text.len() as f64 * 0.98 {
        return false;
    }
    ["function", "var ", "return", "document", "window"]
        .iter()
        .filter(|kw| text.contains(**kw))
        .count()
        >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{KitModel, SimDate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample(family: KitFamily, day: u32, seed: u64) -> String {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KitModel::new(family).generate_sample(SimDate::new(2014, 8, day), &mut rng)
    }

    #[test]
    fn every_family_roundtrips_through_its_unpacker() {
        for family in KitFamily::ALL {
            let date = SimDate::new(2014, 8, 15);
            let model = KitModel::new(family);
            let html = sample(family, 15, 42);
            let unpacked = unpack(family, &html).unwrap_or_else(|e| panic!("{family}: {e}"));
            assert_eq!(
                unpacked,
                model.reference_payload(date),
                "{family}: unpacked payload must equal the original payload"
            );
        }
    }

    #[test]
    fn roundtrip_holds_across_the_whole_evaluation_month() {
        for family in KitFamily::ALL {
            for day in [1, 8, 13, 20, 27, 31] {
                let html = sample(family, day, u64::from(day) * 31);
                let unpacked =
                    unpack(family, &html).unwrap_or_else(|e| panic!("{family} 8/{day}: {e}"));
                assert!(
                    unpacked.contains("PluginProbe"),
                    "{family} 8/{day}: payload body missing"
                );
            }
        }
    }

    #[test]
    fn try_unpack_any_identifies_the_right_family() {
        for family in KitFamily::ALL {
            let html = sample(family, 20, 7);
            let (detected, payload) = try_unpack_any(&html).expect("should unpack");
            // RIG and Sweet Orange use closely related encodings; what
            // matters for labeling is that *a* correct payload is produced.
            assert!(payload.contains("function"), "{family}");
            if family == KitFamily::Nuclear || family == KitFamily::Angler {
                assert_eq!(detected, family);
            }
        }
    }

    #[test]
    fn benign_documents_pass_through() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let benign = kizzle_corpus::benign::generate_benign(
            kizzle_corpus::benign::BenignKind::LibraryBoilerplate,
            &mut rng,
        );
        let (family, text) = unpack_or_passthrough(&benign);
        assert_eq!(family, None);
        assert!(text.contains("extend"));
    }

    #[test]
    fn unpack_fails_cleanly_on_empty_and_foreign_input() {
        assert_eq!(unpack(KitFamily::Rig, "   "), Err(UnpackError::NoScript));
        let err = unpack(KitFamily::Nuclear, "<script>var a = 1;</script>").unwrap_err();
        assert!(matches!(err, UnpackError::MissingComponent(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn looks_like_javascript_filters_garbage() {
        assert!(looks_like_javascript(
            "function f() { var x = document.title; return x; } window.onload = f;"
        ));
        assert!(!looks_like_javascript("short"));
        assert!(!looks_like_javascript(&"\u{1}\u{2}\u{3}garbage".repeat(20)));
    }

    #[test]
    fn script_text_handles_bare_js() {
        assert_eq!(script_text("var a = 1;"), "var a = 1;");
        assert!(script_text("<script>var a = 1;</script>").contains("var a = 1;"));
    }
}
