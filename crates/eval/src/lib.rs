//! # kizzle-eval — the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (§IV) on the
//! synthetic corpus: the month-long simulation comparing Kizzle against the
//! baseline AV engine, the day-over-day similarity measurements, and one
//! experiment entry point per figure/table of the paper (see the
//! per-experiment index in `DESIGN.md` and the measured results in
//! `EXPERIMENTS.md`).
//!
//! The harness is deterministic: every experiment takes an [`EvalConfig`]
//! whose seed fixes the grayware stream, so reruns reproduce the same
//! numbers.
//!
//! Run all experiments with:
//!
//! ```bash
//! cargo run --release -p kizzle-eval --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod experiments;
pub mod metrics;
pub mod monthly;
pub mod similarity;

pub use metrics::{DailyMetrics, DetectorCounts, FamilyCounts};
pub use monthly::{EvalConfig, MonthlyEvaluation, MonthlyResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_consistent() {
        let cfg = EvalConfig::quick(1);
        assert!(cfg.start <= cfg.end);
        assert!(cfg.stream.samples_per_day > 0);
    }
}
