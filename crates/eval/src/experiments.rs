//! One entry point per paper figure/table (the per-experiment index E1–E12
//! in DESIGN.md). Every function returns a plain-text report; the
//! `experiments` binary prints them and EXPERIMENTS.md records a reference
//! run.

use crate::adversarial::run_cycle;
use crate::monthly::{EvalConfig, MonthlyEvaluation, MonthlyResult};
use crate::similarity::{plugindetect_overlap_with_nuclear, similarity_over_time};
use kizzle::{KizzleConfig, ReferenceCorpus};
use kizzle_corpus::evolution::timeline;
use kizzle_corpus::family::cve_table;
use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_winnow::WinnowConfig;
use std::fmt::Write as _;

/// E1 / Fig. 2 — the CVE-per-kit table.
#[must_use]
pub fn exp_cve_table() -> String {
    format!(
        "[E1 / Fig. 2] CVEs used by each exploit kit\n{}",
        cve_table()
    )
}

/// E2 / Fig. 5 — the Nuclear evolution timeline.
#[must_use]
pub fn exp_evolution_timeline() -> String {
    format!("[E2 / Fig. 5] {}", timeline(KitFamily::Nuclear))
}

/// E4 / Fig. 8 — tokenization of the paper's example line.
#[must_use]
pub fn exp_tokenization() -> String {
    let stream = kizzle_js::tokenize(r#"var Euur1V = this["l9D"]("ev#333399al")"#);
    format!(
        "[E4 / Fig. 8] Tokenization in action\n{}",
        stream.to_table()
    )
}

/// E5 / Figs. 9–10 — signature generation for each kit from a small
/// same-day cluster of packed samples.
#[must_use]
pub fn exp_signatures() -> String {
    use rand::SeedableRng;
    let date = SimDate::new(2014, 8, 26);
    let config = KizzleConfig::paper();
    let mut out = String::from("[E5 / Figs. 9-10] Kizzle-generated signatures (one per kit)\n");
    for family in KitFamily::ALL {
        let model = KitModel::new(family);
        let samples: Vec<_> = (0..6u64)
            .map(|i| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1000 + i);
                let stream = kizzle_js::tokenize_document(&model.generate_sample(date, &mut rng));
                let cap = config.token_cap.min(stream.len());
                stream.slice(0, cap)
            })
            .collect();
        match kizzle_signature::generate_signature(
            &format!("{}.sig", family.short_code()),
            &samples,
            &config.signature,
        ) {
            Ok(sig) => {
                let rendered = sig.render();
                let shown: String = rendered.chars().take(400).collect();
                let _ = writeln!(
                    out,
                    "--- {} ({} tokens, {} chars) ---\n{}{}",
                    family,
                    sig.len(),
                    sig.rendered_len(),
                    shown,
                    if rendered.len() > 400 { "…" } else { "" }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "--- {family} --- signature generation failed: {e}");
            }
        }
    }
    out
}

/// E6 / Fig. 11 — unpacked similarity over time, per kit.
#[must_use]
pub fn exp_similarity_over_time() -> String {
    let cfg = WinnowConfig::default();
    let mut out = String::from(
        "[E6 / Fig. 11] Unpacked-body similarity with all previous days (max winnow overlap)\n",
    );
    for family in KitFamily::ALL {
        let series = similarity_over_time(
            family,
            SimDate::evaluation_start(),
            SimDate::evaluation_end(),
            &cfg,
        );
        let _ = writeln!(out, "{family}:");
        for point in &series {
            let _ = writeln!(
                out,
                "  {:>6}  {:5.1}%",
                point.date.axis_label(),
                point.max_overlap_with_history * 100.0
            );
        }
    }
    out
}

/// E10 / Fig. 15 — the PluginDetect false-positive overlap with Nuclear.
#[must_use]
pub fn exp_false_positive_case() -> String {
    let overlap = plugindetect_overlap_with_nuclear(1, &WinnowConfig::default());
    format!(
        "[E10 / Fig. 15] Benign PluginDetect page vs unpacked Nuclear\n\
         winnow overlap = {:.1}% (paper reports 79% for its corpus)\n\
         labeling threshold for Nuclear = {:.0}%, so the page is {}\n",
        overlap * 100.0,
        KizzleConfig::paper().label_threshold * 100.0,
        if overlap >= KizzleConfig::paper().label_threshold {
            "labeled malicious (a Kizzle false positive)"
        } else {
            "(usually) kept benign by the threshold"
        }
    )
}

/// E12 / Fig. 1 — the adversarial cycle.
#[must_use]
pub fn exp_adversarial_cycle() -> String {
    let result = run_cycle(KitFamily::Nuclear, 6, 7);
    let mut out = String::from(
        "[E12 / Fig. 1] Adversarial cycle: mutating Nuclear vs Kizzle and lagged AV\n",
    );
    let _ = writeln!(
        out,
        "attacker mutations: {}; days Kizzle detected majority: {}/31; AV: {}/31",
        result.mutations,
        result.kizzle_winning_days(),
        result.av_winning_days()
    );
    for day in &result.days {
        let _ = writeln!(
            out,
            "  {:>6}  mutated={}  kizzle={:5.1}%  av={:5.1}%",
            day.date.axis_label(),
            if day.attacker_mutated { "yes" } else { " no" },
            day.kizzle_detection * 100.0,
            day.av_detection * 100.0
        );
    }
    out
}

/// Render the monthly-evaluation experiments (E3 / Fig. 6, E7 / Fig. 12,
/// E8 / Fig. 13, E9 / Fig. 14, E11 / §IV performance) from one evaluation
/// run, because they all come from the same simulation.
#[must_use]
pub fn render_monthly(result: &MonthlyResult) -> String {
    let mut out = String::new();

    // E3 / Fig. 6 — Angler window of vulnerability.
    out.push_str("[E3 / Fig. 6] Angler false negatives over time (window of vulnerability)\n");
    out.push_str("  day      AV FN%   Kizzle FN%\n");
    for day in &result.days {
        let _ = writeln!(
            out,
            "  {:>6}  {:6.1}%   {:6.1}%",
            day.date.axis_label(),
            day.av_angler.fn_rate() * 100.0,
            day.kizzle_angler.fn_rate() * 100.0
        );
    }

    // E7 / Fig. 12 — signature lengths over time.
    out.push_str("\n[E7 / Fig. 12] Kizzle signature lengths over time (characters)\n");
    out.push_str("  day      RIG   Angler  SweetOr  Nuclear   new signatures\n");
    for day in &result.days {
        let _ = writeln!(
            out,
            "  {:>6}  {:5}  {:6}  {:7}  {:7}   {}",
            day.date.axis_label(),
            day.signature_length(KitFamily::Rig),
            day.signature_length(KitFamily::Angler),
            day.signature_length(KitFamily::SweetOrange),
            day.signature_length(KitFamily::Nuclear),
            day.new_signatures.join(" ")
        );
    }

    // E8 / Fig. 13 — FP/FN rates over time.
    out.push_str("\n[E8 / Fig. 13] False positives and false negatives over time\n");
    out.push_str("  day      AV FP%   Kizzle FP%   AV FN%   Kizzle FN%\n");
    for day in &result.days {
        let _ = writeln!(
            out,
            "  {:>6}  {:6.3}%  {:9.3}%  {:6.1}%  {:9.1}%",
            day.date.axis_label(),
            day.av.fp_rate() * 100.0,
            day.kizzle.fp_rate() * 100.0,
            day.av.fn_rate() * 100.0,
            day.kizzle.fn_rate() * 100.0
        );
    }
    let kizzle_total = result.kizzle_total();
    let av_total = result.av_total();
    let _ = writeln!(
        out,
        "  window totals: Kizzle FP {:.3}% FN {:.1}%  |  AV FP {:.3}% FN {:.1}%",
        kizzle_total.fp_rate() * 100.0,
        kizzle_total.fn_rate() * 100.0,
        av_total.fp_rate() * 100.0,
        av_total.fn_rate() * 100.0
    );

    // E9 / Fig. 14 — absolute counts.
    out.push_str("\n[E9 / Fig. 14] Absolute false positives / negatives per kit\n");
    out.push_str("  EK            Ground truth   AV FP   AV FN   Kizzle FP   Kizzle FN\n");
    let mut sums = (0usize, 0usize, 0usize, 0usize, 0usize);
    for family in KitFamily::ALL {
        let counts = result.family(family);
        sums.0 += counts.ground_truth;
        sums.1 += counts.av_fp;
        sums.2 += counts.av_fn;
        sums.3 += counts.kizzle_fp;
        sums.4 += counts.kizzle_fn;
        let _ = writeln!(
            out,
            "  {:<13} {:12}  {:6}  {:6}  {:10}  {:10}",
            family.name(),
            counts.ground_truth,
            counts.av_fp,
            counts.av_fn,
            counts.kizzle_fp,
            counts.kizzle_fn
        );
    }
    let _ = writeln!(
        out,
        "  {:<13} {:12}  {:6}  {:6}  {:10}  {:10}",
        "Sum", sums.0, sums.1, sums.2, sums.3, sums.4
    );

    // E11 / §IV — processing performance.
    out.push_str("\n[E11 / §IV] Cluster-based processing performance\n");
    let total_seconds: f64 = result.days.iter().map(|d| d.clustering_seconds).sum();
    let clusters_min = result.days.iter().map(|d| d.clusters).min().unwrap_or(0);
    let clusters_max = result.days.iter().map(|d| d.clusters).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "  clusters per day: {clusters_min}..{clusters_max} (paper: 280..1,200 at ~1000x our scale)\n  \
         clustering time over the window: {total_seconds:.1}s on one machine (paper: ~90 min/day on 50 machines)"
    );
    out
}

/// Run every experiment and return a single combined report. `seed` drives
/// the grayware stream of the monthly simulation.
#[must_use]
pub fn run_all(seed: u64, quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&exp_cve_table());
    out.push('\n');
    out.push_str(&exp_evolution_timeline());
    out.push('\n');
    out.push_str(&exp_tokenization());
    out.push('\n');
    out.push_str(&exp_signatures());
    out.push('\n');
    out.push_str(&exp_similarity_over_time());
    out.push('\n');
    out.push_str(&exp_false_positive_case());
    out.push('\n');

    let config = if quick {
        EvalConfig::quick(seed)
    } else {
        EvalConfig::paper(seed)
    };
    let result = MonthlyEvaluation::new(config).run();
    out.push_str(&render_monthly(&result));
    out.push('\n');
    out.push_str(&exp_adversarial_cycle());

    // Seed-corpus sanity: the reference corpus labels every kit payload.
    let reference =
        ReferenceCorpus::seeded_from_models(SimDate::evaluation_start(), &KizzleConfig::paper());
    let _ = writeln!(
        out,
        "\nreference corpus: {} families seeded",
        reference.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_experiments_render() {
        assert!(exp_cve_table().contains("CVE-2013-2551"));
        assert!(exp_evolution_timeline().contains("AV detection added"));
        assert!(exp_tokenization().contains("Keyword"));
        assert!(exp_false_positive_case().contains("winnow overlap"));
    }

    #[test]
    fn signature_experiment_produces_one_signature_per_kit() {
        let report = exp_signatures();
        for family in KitFamily::ALL {
            assert!(report.contains(family.name()), "{family} missing");
        }
        assert!(
            report.contains("(?<var0>"),
            "no generalized variables rendered"
        );
        assert!(!report.contains("generation failed"), "{report}");
    }

    #[test]
    fn monthly_rendering_contains_every_experiment_header() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(2)).run();
        let text = render_monthly(&result);
        for header in ["Fig. 6", "Fig. 12", "Fig. 13", "Fig. 14", "§IV"] {
            assert!(text.contains(header), "missing {header}");
        }
        assert!(text.contains("Sum"));
    }
}
