//! Detection metrics: daily and cumulative false positives / negatives.

use kizzle_corpus::{KitFamily, SimDate};
use serde::Serialize;

/// False-positive / false-negative counts for one detector over one day (or
/// accumulated over a window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DetectorCounts {
    /// Benign samples flagged as malicious.
    pub false_positives: usize,
    /// Malicious samples missed.
    pub false_negatives: usize,
    /// Malicious samples detected.
    pub true_positives: usize,
    /// Benign samples passed through.
    pub true_negatives: usize,
}

impl DetectorCounts {
    /// Record one scan outcome.
    pub fn record(&mut self, truth_malicious: bool, detected: bool) {
        match (truth_malicious, detected) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &DetectorCounts) {
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_positives += other.true_positives;
        self.true_negatives += other.true_negatives;
    }

    /// Number of benign samples seen.
    #[must_use]
    pub fn benign_total(&self) -> usize {
        self.false_positives + self.true_negatives
    }

    /// Number of malicious samples seen.
    #[must_use]
    pub fn malicious_total(&self) -> usize {
        self.false_negatives + self.true_positives
    }

    /// False-positive rate over benign samples (paper Fig. 13(a)); 0 when no
    /// benign samples were seen.
    #[must_use]
    pub fn fp_rate(&self) -> f64 {
        ratio(self.false_positives, self.benign_total())
    }

    /// False-negative rate over malicious samples (paper Figs. 6/13(b)); 0
    /// when no malicious samples were seen.
    #[must_use]
    pub fn fn_rate(&self) -> f64 {
        ratio(self.false_negatives, self.malicious_total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-family counts for the Fig. 14 table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FamilyCounts {
    /// Ground-truth malicious samples of this family.
    pub ground_truth: usize,
    /// AV false positives attributed to this family (benign samples the AV
    /// flagged with this family's signature).
    pub av_fp: usize,
    /// AV false negatives (samples of this family the AV missed).
    pub av_fn: usize,
    /// Kizzle false positives attributed to this family.
    pub kizzle_fp: usize,
    /// Kizzle false negatives.
    pub kizzle_fn: usize,
}

/// Everything measured on one simulated day.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DailyMetrics {
    /// The day.
    pub date: SimDate,
    /// Samples processed.
    pub samples: usize,
    /// Clusters found by Kizzle's clustering stage.
    pub clusters: usize,
    /// Kizzle detection counts (all kits pooled).
    pub kizzle: DetectorCounts,
    /// Baseline AV detection counts.
    pub av: DetectorCounts,
    /// Kizzle counts restricted to Angler samples (Fig. 6).
    pub kizzle_angler: DetectorCounts,
    /// AV counts restricted to Angler samples (Fig. 6).
    pub av_angler: DetectorCounts,
    /// Per-family rendered length of the newest Kizzle signature (Fig. 12);
    /// 0 when no signature exists yet for the family.
    pub signature_lengths: Vec<(KitFamily, usize)>,
    /// Names of signatures Kizzle issued today.
    pub new_signatures: Vec<String>,
    /// Wall-clock seconds spent in the clustering stage (final prototype
    /// pass included).
    pub clustering_seconds: f64,
    /// Wall-clock seconds of the final per-cluster prototype computation
    /// alone — the formerly untimed hotspot called out on the ROADMAP; it
    /// is part of `clustering_seconds`.
    pub prototype_seconds: f64,
    /// Live samples held by the warm corpus engine after the day ran
    /// (today's batch plus the retained overlap window).
    pub live_corpus: usize,
    /// Clusters found when the *entire retention window* is clustered as
    /// one batch after the day ran (the multi-day eval mode); `None` when
    /// window clustering was not requested.
    pub window_clusters: Option<usize>,
}

impl DailyMetrics {
    /// Signature length recorded for one family on this day.
    #[must_use]
    pub fn signature_length(&self, family: KitFamily) -> usize {
        self.signature_lengths
            .iter()
            .find(|(f, _)| *f == family)
            .map_or(0, |(_, len)| *len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_the_right_bucket() {
        let mut counts = DetectorCounts::default();
        counts.record(true, true);
        counts.record(true, false);
        counts.record(false, true);
        counts.record(false, false);
        assert_eq!(counts.true_positives, 1);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.true_negatives, 1);
        assert_eq!(counts.benign_total(), 2);
        assert_eq!(counts.malicious_total(), 2);
        assert!((counts.fp_rate() - 0.5).abs() < 1e-12);
        assert!((counts.fn_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_zero_rates() {
        let counts = DetectorCounts::default();
        assert_eq!(counts.fp_rate(), 0.0);
        assert_eq!(counts.fn_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DetectorCounts {
            false_positives: 1,
            false_negatives: 2,
            true_positives: 3,
            true_negatives: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.false_positives, 2);
        assert_eq!(a.true_negatives, 8);
    }

    #[test]
    fn daily_metrics_signature_length_lookup() {
        let metrics = DailyMetrics {
            date: SimDate::new(2014, 8, 1),
            samples: 10,
            clusters: 3,
            kizzle: DetectorCounts::default(),
            av: DetectorCounts::default(),
            kizzle_angler: DetectorCounts::default(),
            av_angler: DetectorCounts::default(),
            signature_lengths: vec![(KitFamily::Nuclear, 123)],
            new_signatures: vec![],
            clustering_seconds: 0.1,
            prototype_seconds: 0.02,
            live_corpus: 10,
            window_clusters: None,
        };
        assert_eq!(metrics.signature_length(KitFamily::Nuclear), 123);
        assert_eq!(metrics.signature_length(KitFamily::Rig), 0);
    }
}
