//! The month-long evaluation: Kizzle vs. the baseline AV over August 2014.

use crate::metrics::{DailyMetrics, DetectorCounts, FamilyCounts};
use kizzle::{KizzleCompiler, KizzleConfig, ReferenceCorpus};
use kizzle_avsim::{AvConfig, AvEngine};
use kizzle_corpus::{GraywareStream, GroundTruth, KitFamily, SimDate, StreamConfig};
use serde::Serialize;

/// Configuration of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Grayware stream configuration (scale, mixture, seed).
    pub stream: StreamConfig,
    /// Kizzle pipeline configuration.
    pub kizzle: KizzleConfig,
    /// Baseline AV configuration.
    pub av: AvConfig,
    /// First day of the window.
    pub start: SimDate,
    /// Last day of the window (inclusive).
    pub end: SimDate,
}

impl EvalConfig {
    /// The paper-shaped evaluation: the full month of August 2014 at the
    /// default (scaled-down) stream size.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        EvalConfig {
            stream: StreamConfig {
                seed,
                ..StreamConfig::default()
            },
            kizzle: KizzleConfig::paper(),
            av: AvConfig::default(),
            start: SimDate::evaluation_start(),
            end: SimDate::evaluation_end(),
        }
    }

    /// A small configuration for unit tests and smoke runs: fewer samples
    /// per day and a one-week window.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        EvalConfig {
            stream: StreamConfig {
                samples_per_day: 80,
                malicious_fraction: 0.3,
                ..StreamConfig::small(seed)
            },
            kizzle: KizzleConfig::fast(),
            av: AvConfig::default(),
            start: SimDate::new(2014, 8, 10),
            end: SimDate::new(2014, 8, 16),
        }
    }
}

/// The result of an evaluation run.
#[derive(Debug, Clone, Serialize)]
pub struct MonthlyResult {
    /// One entry per simulated day.
    pub days: Vec<DailyMetrics>,
    /// Per-family absolute counts over the whole window (Fig. 14).
    pub per_family: Vec<(KitFamily, FamilyCounts)>,
}

impl MonthlyResult {
    /// Cumulative Kizzle counts over the window.
    #[must_use]
    pub fn kizzle_total(&self) -> DetectorCounts {
        let mut total = DetectorCounts::default();
        for day in &self.days {
            total.merge(&day.kizzle);
        }
        total
    }

    /// Cumulative AV counts over the window.
    #[must_use]
    pub fn av_total(&self) -> DetectorCounts {
        let mut total = DetectorCounts::default();
        for day in &self.days {
            total.merge(&day.av);
        }
        total
    }

    /// Counts for one family (Fig. 14 row).
    #[must_use]
    pub fn family(&self, family: KitFamily) -> FamilyCounts {
        self.per_family
            .iter()
            .find(|(f, _)| *f == family)
            .map_or_else(FamilyCounts::default, |(_, c)| *c)
    }
}

/// The evaluation driver.
#[derive(Debug, Clone)]
pub struct MonthlyEvaluation {
    config: EvalConfig,
}

impl MonthlyEvaluation {
    /// Create an evaluation with the given configuration.
    #[must_use]
    pub fn new(config: EvalConfig) -> Self {
        MonthlyEvaluation { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Run the evaluation: for each day, generate the grayware batch, run
    /// the Kizzle pipeline on it (signatures become active the same day),
    /// then scan every sample with both Kizzle and the baseline AV and
    /// compare against ground truth.
    #[must_use]
    pub fn run(&self) -> MonthlyResult {
        let stream = GraywareStream::new(self.config.stream.clone());
        let reference = ReferenceCorpus::seeded_from_models(self.config.start, &self.config.kizzle);
        let mut compiler = KizzleCompiler::new(self.config.kizzle, reference);
        let av = AvEngine::new(self.config.av);

        let mut days = Vec::new();
        let mut per_family: Vec<(KitFamily, FamilyCounts)> = KitFamily::ALL
            .iter()
            .map(|f| (*f, FamilyCounts::default()))
            .collect();

        for date in self.config.start.range_inclusive(self.config.end) {
            let samples = stream.generate_day(date);
            let streams: Vec<_> = samples
                .iter()
                .map(|s| compiler.tokenize_capped(&s.html))
                .collect();
            let report = compiler.process_day_tokenized(date, &samples, &streams);

            let mut kizzle_counts = DetectorCounts::default();
            let mut av_counts = DetectorCounts::default();
            let mut kizzle_angler = DetectorCounts::default();
            let mut av_angler = DetectorCounts::default();

            for (sample, stream_tokens) in samples.iter().zip(&streams) {
                let truth_malicious = sample.truth.is_malicious();
                let kizzle_hit = compiler.scan_stream(stream_tokens);
                let av_hit = av.scan(date, &sample.html);

                kizzle_counts.record(truth_malicious, kizzle_hit.is_some());
                av_counts.record(truth_malicious, av_hit.is_some());

                match sample.truth {
                    GroundTruth::Malicious(family) => {
                        let slot = per_family
                            .iter_mut()
                            .find(|(f, _)| *f == family)
                            .expect("all families present");
                        slot.1.ground_truth += 1;
                        if kizzle_hit.is_none() {
                            slot.1.kizzle_fn += 1;
                        }
                        if av_hit.is_none() {
                            slot.1.av_fn += 1;
                        }
                        if family == KitFamily::Angler {
                            kizzle_angler.record(true, kizzle_hit.is_some());
                            av_angler.record(true, av_hit.is_some());
                        }
                    }
                    GroundTruth::Benign => {
                        if let Some(family) = kizzle_hit {
                            let slot = per_family
                                .iter_mut()
                                .find(|(f, _)| *f == family)
                                .expect("all families present");
                            slot.1.kizzle_fp += 1;
                        }
                        if let Some(family) = av_hit {
                            let slot = per_family
                                .iter_mut()
                                .find(|(f, _)| *f == family)
                                .expect("all families present");
                            slot.1.av_fp += 1;
                        }
                    }
                }
            }

            let signature_lengths = KitFamily::ALL
                .iter()
                .map(|family| {
                    let len = compiler
                        .signatures()
                        .for_label(family.name())
                        .last()
                        .map_or(0, |s| s.signature.rendered_len());
                    (*family, len)
                })
                .collect();

            days.push(DailyMetrics {
                date,
                samples: samples.len(),
                clusters: report.clusters,
                kizzle: kizzle_counts,
                av: av_counts,
                kizzle_angler,
                av_angler,
                signature_lengths,
                new_signatures: report.new_signatures.clone(),
                clustering_seconds: report.clustering_stats.total_time().as_secs_f64(),
                live_corpus: compiler.engine().len(),
            });
        }

        MonthlyResult { days, per_family }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_a_day_per_date_and_sane_rates() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(5)).run();
        assert_eq!(result.days.len(), 7);
        let kizzle = result.kizzle_total();
        let av = result.av_total();
        assert!(kizzle.malicious_total() > 0);
        assert_eq!(kizzle.malicious_total(), av.malicious_total());
        assert!(kizzle.fp_rate() <= 0.05, "kizzle fp {}", kizzle.fp_rate());
        assert!(kizzle.fn_rate() < 0.5, "kizzle fn {}", kizzle.fn_rate());
        // The window covers the Angler change of August 13, so the AV must
        // show a worse Angler false-negative rate than Kizzle.
        let mut av_angler = DetectorCounts::default();
        let mut kizzle_angler = DetectorCounts::default();
        for day in &result.days {
            av_angler.merge(&day.av_angler);
            kizzle_angler.merge(&day.kizzle_angler);
        }
        assert!(av_angler.fn_rate() > kizzle_angler.fn_rate());
    }

    #[test]
    fn warm_engine_is_threaded_through_the_window() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(5)).run();
        // Every day clusters through the warm engine, and within the
        // retention window (2 days for the quick config) the live store
        // still covers yesterday's distinct class-strings — each of
        // yesterday's clusters needs at least one, so the live count can
        // never drop below either day's cluster count.
        for day in &result.days {
            assert!(day.live_corpus > 0, "day {} has an empty engine", day.date);
        }
        for pair in result.days.windows(2) {
            assert!(
                pair[1].live_corpus >= pair[0].clusters.max(pair[1].clusters),
                "day {} retained too little: {} live vs {}/{} clusters",
                pair[1].date,
                pair[1].live_corpus,
                pair[0].clusters,
                pair[1].clusters
            );
        }
    }

    #[test]
    fn per_family_counts_sum_to_totals() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(9)).run();
        let family_truth: usize = result.per_family.iter().map(|(_, c)| c.ground_truth).sum();
        assert_eq!(family_truth, result.kizzle_total().malicious_total());
        let family_kizzle_fn: usize = result.per_family.iter().map(|(_, c)| c.kizzle_fn).sum();
        assert_eq!(family_kizzle_fn, result.kizzle_total().false_negatives);
    }

    #[test]
    fn signature_lengths_become_nonzero_once_signatures_exist() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(3)).run();
        let last = result.days.last().unwrap();
        assert!(
            KitFamily::ALL
                .iter()
                .any(|f| last.signature_length(*f) > 0),
            "no signatures at all after a week"
        );
    }
}
