//! The month-long evaluation: Kizzle vs. the baseline AV over August 2014.

use crate::metrics::{DailyMetrics, DetectorCounts, FamilyCounts};
use kizzle::prelude::*;
use kizzle_avsim::{AvConfig, AvEngine};
use kizzle_corpus::{GraywareStream, GroundTruth, KitFamily, Sample, SimDate, StreamConfig};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Configuration of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Grayware stream configuration (scale, mixture, seed).
    pub stream: StreamConfig,
    /// Kizzle pipeline configuration.
    pub kizzle: KizzleConfig,
    /// Baseline AV configuration.
    pub av: AvConfig,
    /// First day of the window.
    pub start: SimDate,
    /// Last day of the window (inclusive).
    pub end: SimDate,
    /// After each day, also cluster the *entire retention window* as one
    /// batch and record the cluster count ([`DailyMetrics::window_clusters`])
    /// — the ROADMAP's multi-day eval mode, showing how much the day
    /// boundary fragments slow-moving families.
    pub window_cluster: bool,
    /// Snapshot-chain compaction cadence for the persisting run modes:
    /// the state chain accumulates up to this many delta files before a
    /// save rewrites the full base. `0` writes a full snapshot every day
    /// (the pre-chain behavior).
    pub compact_every: usize,
    /// Streaming-ingest mini-batch size: each day is fed to the
    /// [`DaySession`] in chunks of this many samples, as a live frontend
    /// would. `0` ingests the whole day in one call — the single-shot
    /// semantics of the pre-façade `process_day`. Both shapes seal to
    /// byte-identical reports (the façade's core property), which the CI
    /// examples smoke diffs end to end.
    pub ingest_batch: usize,
    /// Pipelined-frontend producer thread count: with a non-zero value
    /// (and a non-zero [`EvalConfig::ingest_batch`]) the day's mini-batches
    /// ride the bounded-channel frontend from this many producer threads
    /// instead of the caller's thread. The producers rendezvous on a turn
    /// counter so the day's sample order — and therefore every report —
    /// stays byte-identical to the serial shapes, which the CI pipelined
    /// smoke diffs end to end. `0` keeps the direct in-session ingest.
    pub pipeline_producers: usize,
    /// Channel bound for the pipelined frontend (mini-batches that may
    /// queue before producers block); clamped to at least 1 when the
    /// pipelined mode is on.
    pub pipeline_bound: usize,
}

impl EvalConfig {
    /// The paper-shaped evaluation: the full month of August 2014 at the
    /// default (scaled-down) stream size.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        EvalConfig {
            stream: StreamConfig {
                seed,
                ..StreamConfig::default()
            },
            kizzle: KizzleConfig::paper(),
            av: AvConfig::default(),
            start: SimDate::evaluation_start(),
            end: SimDate::evaluation_end(),
            window_cluster: false,
            compact_every: kizzle::DEFAULT_MAX_DELTAS,
            ingest_batch: 0,
            pipeline_producers: 0,
            pipeline_bound: 0,
        }
    }

    /// A small configuration for unit tests and smoke runs: fewer samples
    /// per day and a one-week window.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        EvalConfig {
            stream: StreamConfig {
                samples_per_day: 80,
                malicious_fraction: 0.3,
                ..StreamConfig::small(seed)
            },
            kizzle: KizzleConfig::fast(),
            av: AvConfig::default(),
            start: SimDate::new(2014, 8, 10),
            end: SimDate::new(2014, 8, 16),
            window_cluster: false,
            compact_every: kizzle::DEFAULT_MAX_DELTAS,
            ingest_batch: 0,
            pipeline_producers: 0,
            pipeline_bound: 0,
        }
    }
}

/// The result of an evaluation run.
#[derive(Debug, Clone, Serialize)]
pub struct MonthlyResult {
    /// One entry per simulated day.
    pub days: Vec<DailyMetrics>,
    /// Per-family absolute counts over the whole window (Fig. 14).
    pub per_family: Vec<(KitFamily, FamilyCounts)>,
}

impl MonthlyResult {
    /// Cumulative Kizzle counts over the window.
    #[must_use]
    pub fn kizzle_total(&self) -> DetectorCounts {
        let mut total = DetectorCounts::default();
        for day in &self.days {
            total.merge(&day.kizzle);
        }
        total
    }

    /// Cumulative AV counts over the window.
    #[must_use]
    pub fn av_total(&self) -> DetectorCounts {
        let mut total = DetectorCounts::default();
        for day in &self.days {
            total.merge(&day.av);
        }
        total
    }

    /// Counts for one family (Fig. 14 row).
    #[must_use]
    pub fn family(&self, family: KitFamily) -> FamilyCounts {
        self.per_family
            .iter()
            .find(|(f, _)| *f == family)
            .map_or_else(FamilyCounts::default, |(_, c)| *c)
    }
}

/// The evaluation driver.
#[derive(Debug, Clone)]
pub struct MonthlyEvaluation {
    config: EvalConfig,
}

impl MonthlyEvaluation {
    /// Create an evaluation with the given configuration.
    #[must_use]
    pub fn new(config: EvalConfig) -> Self {
        MonthlyEvaluation { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Run the evaluation: for each day, generate the grayware batch, run
    /// the Kizzle pipeline on it (signatures become active the same day),
    /// then scan every sample with both Kizzle and the baseline AV and
    /// compare against ground truth. The compiler lives for the whole
    /// window — the long-lived warm process.
    #[must_use]
    pub fn run(&self) -> MonthlyResult {
        self.run_impl(None, false)
    }

    /// Like [`MonthlyEvaluation::run`] (one long-lived compiler), but also
    /// persisting the compiler state into `state_dir` after every day —
    /// how an operator bootstraps a snapshot for inspection tools without
    /// changing the run itself.
    #[must_use]
    pub fn run_persisting(&self, state_dir: &std::path::Path) -> MonthlyResult {
        self.run_impl(Some(state_dir), false)
    }

    /// Run the evaluation the way the production cron deployment actually
    /// executes: the service is **dropped after every day** and
    /// reconstructed for the next one from the state snapshot in
    /// `state_dir` ([`KizzleService::save`] / [`KizzleService::open`]).
    /// With an intact snapshot chain the
    /// per-day results are byte-identical to [`MonthlyEvaluation::run`]
    /// (modulo wall-clock timings); a missing or damaged snapshot degrades
    /// to a cold rebuild for that day instead of failing the run.
    ///
    /// # Panics
    ///
    /// Panics if the state snapshot cannot be *written* (filesystem
    /// failure) — unreadable state is recoverable, unwritable state is an
    /// operational error worth failing loudly on.
    #[must_use]
    pub fn run_restarting(&self, state_dir: &std::path::Path) -> MonthlyResult {
        self.run_impl(Some(state_dir), true)
    }

    fn run_impl(&self, state_dir: Option<&std::path::Path>, restart: bool) -> MonthlyResult {
        let stream = GraywareStream::new(self.config.stream.clone());
        let av = AvEngine::new(self.config.av);

        let mut days = Vec::new();
        let mut per_family: Vec<(KitFamily, FamilyCounts)> = KitFamily::ALL
            .iter()
            .map(|f| (*f, FamilyCounts::default()))
            .collect();

        // Long-lived modes keep one resident service; restart mode
        // rebuilds it from disk every day and drops it after saving.
        let mut resident: Option<KizzleService> = None;
        for date in self.config.start.range_inclusive(self.config.end) {
            let seeded_reference =
                || ReferenceCorpus::seeded_from_models(self.config.start, &self.config.kizzle);
            let mut service = match (resident.take(), state_dir, restart) {
                (Some(service), _, _) => service,
                (None, Some(dir), true) => {
                    KizzleService::open(dir, self.config.kizzle, seeded_reference)
                        .expect("evaluation config is valid")
                        .0
                }
                (None, _, _) => KizzleService::new(self.config.kizzle, seeded_reference())
                    .expect("evaluation config is valid"),
            };
            // A resumed snapshot can sit *ahead* of the day being replayed
            // — e.g. a damaged chain truncated to a base that was saved
            // after this date, now being re-run from the top. Sessions
            // refuse time travel ([`KizzleError::Ingest`]), so replaying
            // the past means deciding explicitly to start from scratch.
            if service.last_processed_day().is_some_and(|last| last > date) {
                service = KizzleService::new(
                    self.config.kizzle,
                    ReferenceCorpus::seeded_from_models(self.config.start, &self.config.kizzle),
                )
                .expect("evaluation config is valid");
            }
            let metrics = self.process_one_day(&mut service, &av, &stream, date, &mut per_family);
            days.push(metrics);
            if let Some(dir) = state_dir {
                service
                    .save_compacting(dir, self.config.compact_every)
                    .expect("failed to write service state snapshot");
            }
            if restart {
                drop(service); // the simulated process exit
            } else {
                resident = Some(service);
            }
        }

        MonthlyResult { days, per_family }
    }

    /// One simulated day against one service: stream the day into a
    /// session (mini-batched per [`EvalConfig::ingest_batch`]), seal, then
    /// scan every sample through a matcher handle over the freshly
    /// published set.
    fn process_one_day(
        &self,
        service: &mut KizzleService,
        av: &AvEngine,
        stream: &GraywareStream,
        date: SimDate,
        per_family: &mut [(KitFamily, FamilyCounts)],
    ) -> DailyMetrics {
        let samples = stream.generate_day(date);
        let streams: Vec<_> = {
            // The eval pre-tokenizes the day (both detectors scan the same
            // token streams), so the service-side ingest sites only ever
            // see tokenized batches — this block is the day's real ingest
            // phase, so the span lives here.
            let _ingest_span = kizzle_telemetry::span!("day.ingest");
            // One guard for the whole day's tokenization: the per-call
            // accessor would lock (and wait out any background seal) once
            // per sample.
            let compiler = service.compiler();
            samples
                .iter()
                .map(|s| compiler.tokenize_capped(&s.html))
                .collect()
        };
        let report = match (self.config.ingest_batch, self.config.pipeline_producers) {
            // Single-shot: borrow the slices straight through (no session
            // buffering) — the pre-façade semantics.
            (0, _) => service
                .process_day_tokenized(date, &samples, &streams)
                .expect("evaluation days are monotone"),
            (chunk, 0) => {
                let mut session = service
                    .begin_day(date)
                    .expect("evaluation days are monotone");
                for (sample_chunk, stream_chunk) in samples.chunks(chunk).zip(streams.chunks(chunk))
                {
                    session.ingest_tokenized(sample_chunk, stream_chunk);
                }
                session.seal()
            }
            // Pipelined: the mini-batches ride the bounded channel from
            // `producers` threads. A turn rendezvous serializes the *sends*
            // (channel FIFO order defines the day's sample order) while
            // still exercising cross-thread submission and backpressure —
            // so the sealed report stays byte-identical to the serial
            // shapes above.
            (chunk, producers) => {
                let mut session = service
                    .begin_day(date)
                    .expect("evaluation days are monotone");
                let producer = session.pipeline(self.config.pipeline_bound);
                let chunks: Vec<(Arc<[Sample]>, &[kizzle_js::TokenStream])> = samples
                    .chunks(chunk)
                    .zip(streams.chunks(chunk))
                    .map(|(s, t)| (Arc::from(s), t))
                    .collect();
                let turn = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for worker in 0..producers {
                        let producer = producer.clone();
                        let turn = &turn;
                        let chunks = &chunks;
                        scope.spawn(move || {
                            for (i, (sample_chunk, stream_chunk)) in chunks.iter().enumerate() {
                                if i % producers != worker {
                                    continue;
                                }
                                while turn.load(Ordering::Acquire) != i {
                                    std::thread::yield_now();
                                }
                                assert!(producer.send_tokenized(
                                    Arc::clone(sample_chunk),
                                    stream_chunk.to_vec()
                                ));
                                turn.store(i + 1, Ordering::Release);
                            }
                        });
                    }
                });
                drop(producer);
                session.seal()
            }
        };
        let matcher = service.matcher();

        let mut kizzle_counts = DetectorCounts::default();
        let mut av_counts = DetectorCounts::default();
        let mut kizzle_angler = DetectorCounts::default();
        let mut av_angler = DetectorCounts::default();

        for (sample, stream_tokens) in samples.iter().zip(&streams) {
            let truth_malicious = sample.truth.is_malicious();
            let kizzle_hit = matcher.scan_stream(stream_tokens);
            let av_hit = av.scan(date, &sample.html);

            kizzle_counts.record(truth_malicious, kizzle_hit.is_some());
            av_counts.record(truth_malicious, av_hit.is_some());

            match sample.truth {
                GroundTruth::Malicious(family) => {
                    let slot = per_family
                        .iter_mut()
                        .find(|(f, _)| *f == family)
                        .expect("all families present");
                    slot.1.ground_truth += 1;
                    if kizzle_hit.is_none() {
                        slot.1.kizzle_fn += 1;
                    }
                    if av_hit.is_none() {
                        slot.1.av_fn += 1;
                    }
                    if family == KitFamily::Angler {
                        kizzle_angler.record(true, kizzle_hit.is_some());
                        av_angler.record(true, av_hit.is_some());
                    }
                }
                GroundTruth::Benign => {
                    if let Some(family) = kizzle_hit {
                        let slot = per_family
                            .iter_mut()
                            .find(|(f, _)| *f == family)
                            .expect("all families present");
                        slot.1.kizzle_fp += 1;
                    }
                    if let Some(family) = av_hit {
                        let slot = per_family
                            .iter_mut()
                            .find(|(f, _)| *f == family)
                            .expect("all families present");
                        slot.1.av_fp += 1;
                    }
                }
            }
        }

        let signature_lengths = KitFamily::ALL
            .iter()
            .map(|family| {
                let len = service
                    .signatures()
                    .for_label(family.name())
                    .last()
                    .map_or(0, |s| s.signature.rendered_len());
                (*family, len)
            })
            .collect();

        let window_clusters = self
            .config
            .window_cluster
            .then(|| service.cluster_window().0.cluster_count());

        DailyMetrics {
            date,
            samples: samples.len(),
            clusters: report.clusters,
            kizzle: kizzle_counts,
            av: av_counts,
            kizzle_angler,
            av_angler,
            signature_lengths,
            new_signatures: report.new_signatures.clone(),
            clustering_seconds: report.clustering_stats.total_time().as_secs_f64(),
            prototype_seconds: report.clustering_stats.prototype_time.as_secs_f64(),
            live_corpus: service.engine().len(),
            window_clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_a_day_per_date_and_sane_rates() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(5)).run();
        assert_eq!(result.days.len(), 7);
        let kizzle = result.kizzle_total();
        let av = result.av_total();
        assert!(kizzle.malicious_total() > 0);
        assert_eq!(kizzle.malicious_total(), av.malicious_total());
        assert!(kizzle.fp_rate() <= 0.05, "kizzle fp {}", kizzle.fp_rate());
        assert!(kizzle.fn_rate() < 0.5, "kizzle fn {}", kizzle.fn_rate());
        // The window covers the Angler change of August 13, so the AV must
        // show a worse Angler false-negative rate than Kizzle.
        let mut av_angler = DetectorCounts::default();
        let mut kizzle_angler = DetectorCounts::default();
        for day in &result.days {
            av_angler.merge(&day.av_angler);
            kizzle_angler.merge(&day.kizzle_angler);
        }
        assert!(av_angler.fn_rate() > kizzle_angler.fn_rate());
    }

    #[test]
    fn warm_engine_is_threaded_through_the_window() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(5)).run();
        // Every day clusters through the warm engine, and within the
        // retention window (2 days for the quick config) the live store
        // still covers yesterday's distinct class-strings — each of
        // yesterday's clusters needs at least one, so the live count can
        // never drop below either day's cluster count.
        for day in &result.days {
            assert!(day.live_corpus > 0, "day {} has an empty engine", day.date);
        }
        for pair in result.days.windows(2) {
            assert!(
                pair[1].live_corpus >= pair[0].clusters.max(pair[1].clusters),
                "day {} retained too little: {} live vs {}/{} clusters",
                pair[1].date,
                pair[1].live_corpus,
                pair[0].clusters,
                pair[1].clusters
            );
        }
    }

    /// Wall-clock noise stripped: everything that must be byte-identical
    /// between a long-lived and a restart-each-day run.
    fn normalized(days: &[DailyMetrics]) -> Vec<DailyMetrics> {
        days.iter()
            .map(|d| DailyMetrics {
                clustering_seconds: 0.0,
                prototype_seconds: 0.0,
                ..d.clone()
            })
            .collect()
    }

    fn three_day_config(seed: u64) -> EvalConfig {
        let mut config = EvalConfig::quick(seed);
        config.stream.samples_per_day = 40;
        config.end = config.start.next().next();
        config
    }

    #[test]
    fn restart_each_day_matches_the_long_lived_run() {
        let config = three_day_config(5);
        let state_dir =
            std::env::temp_dir().join(format!("kizzle-eval-restart-test-{}", std::process::id()));
        std::fs::remove_dir_all(&state_dir).ok();

        let long_lived = MonthlyEvaluation::new(config.clone()).run();
        let restarted = MonthlyEvaluation::new(config).run_restarting(&state_dir);

        assert_eq!(normalized(&long_lived.days), normalized(&restarted.days));
        assert_eq!(long_lived.per_family, restarted.per_family);
        // The snapshot chain really was used: day 2 and 3 resumed warm.
        assert!(state_dir.join("kizzle-state.snap").exists());
        assert!(state_dir.join("MANIFEST").exists());
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn corrupting_the_snapshot_mid_window_degrades_not_panics() {
        let config = three_day_config(6);
        let state_dir =
            std::env::temp_dir().join(format!("kizzle-eval-corrupt-test-{}", std::process::id()));
        std::fs::remove_dir_all(&state_dir).ok();

        // Day 1 only, to leave a snapshot behind…
        let mut first = config.clone();
        first.end = first.start;
        let _ = MonthlyEvaluation::new(first).run_restarting(&state_dir);
        // …then vandalize it and run the full window: the run completes and
        // still produces one report per day.
        let snap = state_dir.join("kizzle-state.snap");
        let mut bytes = std::fs::read(&snap).expect("snapshot exists");
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        std::fs::write(&snap, &bytes).expect("rewrite");
        let result = MonthlyEvaluation::new(config).run_restarting(&state_dir);
        assert_eq!(result.days.len(), 3);
        assert!(result.days.iter().all(|d| d.samples > 0));
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn window_cluster_mode_reports_a_window_count() {
        let mut config = three_day_config(5);
        config.window_cluster = true;
        let result = MonthlyEvaluation::new(config).run();
        // Every day records a count. The window clusters *distinct*
        // retained class-strings (the day view weights duplicates, the
        // store dedups them), so the count can sit below the per-day one —
        // but across a multi-day window some family must still clear
        // min_points on distinct variants alone.
        assert!(result.days.iter().all(|d| d.window_clusters.is_some()));
        let peak = result
            .days
            .iter()
            .filter_map(|d| d.window_clusters)
            .max()
            .expect("days present");
        assert!(peak > 0, "no window clusters all window: {result:?}");
        // Without the flag the column stays empty.
        let result = MonthlyEvaluation::new(three_day_config(5)).run();
        assert!(result.days.iter().all(|d| d.window_clusters.is_none()));
    }

    #[test]
    fn mini_batched_ingest_matches_single_shot_end_to_end() {
        // The façade's core property, exercised through the whole eval
        // harness: streaming each day in mini-batches produces the same
        // report table as single-shot ingest.
        let single = MonthlyEvaluation::new(three_day_config(5)).run();
        let mut batched_config = three_day_config(5);
        batched_config.ingest_batch = 7;
        let batched = MonthlyEvaluation::new(batched_config).run();
        assert_eq!(normalized(&single.days), normalized(&batched.days));
        assert_eq!(single.per_family, batched.per_family);
    }

    #[test]
    fn pipelined_multi_producer_ingest_matches_single_shot_end_to_end() {
        // The PR 7 tentpole property through the whole harness: the
        // bounded-channel frontend with several producer threads and the
        // serial single-shot runs produce identical report tables.
        let single = MonthlyEvaluation::new(three_day_config(5)).run();
        let mut piped_config = three_day_config(5);
        piped_config.ingest_batch = 7;
        piped_config.pipeline_producers = 3;
        piped_config.pipeline_bound = 2;
        let piped = MonthlyEvaluation::new(piped_config).run();
        assert_eq!(normalized(&single.days), normalized(&piped.days));
        assert_eq!(single.per_family, piped.per_family);
    }

    #[test]
    fn per_family_counts_sum_to_totals() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(9)).run();
        let family_truth: usize = result.per_family.iter().map(|(_, c)| c.ground_truth).sum();
        assert_eq!(family_truth, result.kizzle_total().malicious_total());
        let family_kizzle_fn: usize = result.per_family.iter().map(|(_, c)| c.kizzle_fn).sum();
        assert_eq!(family_kizzle_fn, result.kizzle_total().false_negatives);
    }

    #[test]
    fn signature_lengths_become_nonzero_once_signatures_exist() {
        let result = MonthlyEvaluation::new(EvalConfig::quick(3)).run();
        let last = result.days.last().unwrap();
        assert!(
            KitFamily::ALL.iter().any(|f| last.signature_length(*f) > 0),
            "no signatures at all after a week"
        );
    }
}
