//! Regenerate the paper's evaluation on the synthetic corpus.
//!
//! Usage:
//!
//! ```bash
//! # Everything, at the full (scaled-down) month: ~a few minutes in release.
//! cargo run --release -p kizzle-eval --bin experiments -- all
//!
//! # Everything, on a one-week quick window.
//! cargo run --release -p kizzle-eval --bin experiments -- quick
//!
//! # A single experiment by its DESIGN.md id (e1, e2, e4, e5, e6, e10, e12)
//! # or `monthly` for the combined E3/E7/E8/E9/E11 run.
//! cargo run --release -p kizzle-eval --bin experiments -- e6
//! ```

use kizzle_eval::experiments;
use kizzle_eval::{EvalConfig, MonthlyEvaluation};

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "quick".to_string());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let report = match arg.as_str() {
        "all" => experiments::run_all(seed, false),
        "quick" => experiments::run_all(seed, true),
        "e1" => experiments::exp_cve_table(),
        "e2" => experiments::exp_evolution_timeline(),
        "e4" => experiments::exp_tokenization(),
        "e5" => experiments::exp_signatures(),
        "e6" => experiments::exp_similarity_over_time(),
        "e10" => experiments::exp_false_positive_case(),
        "e12" => experiments::exp_adversarial_cycle(),
        "monthly" => {
            let result = MonthlyEvaluation::new(EvalConfig::paper(seed)).run();
            experiments::render_monthly(&result)
        }
        "monthly-quick" => {
            let result = MonthlyEvaluation::new(EvalConfig::quick(seed)).run();
            experiments::render_monthly(&result)
        }
        other => {
            eprintln!("unknown experiment `{other}`; expected all|quick|monthly|monthly-quick|e1|e2|e4|e5|e6|e10|e12");
            std::process::exit(2);
        }
    };
    println!("{report}");
}
