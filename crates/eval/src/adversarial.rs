//! The adversarial cycle (paper Fig. 1): attacker mutates, defender
//! re-signs.
//!
//! The paper's argument is asymmetry: a packer mutation costs the attacker
//! minutes, while a manual signature costs the analyst days — and Kizzle
//! collapses the defender's side to hours because signature generation is
//! automatic. This module plays that loop out explicitly: an attacker who
//! rotates the kit's delimiter whenever their current variant is detected,
//! against (a) Kizzle, which re-clusters and re-signs the same day, and
//! (b) a manual-AV defender who reacts with a fixed delay.

use kizzle::prelude::*;
use kizzle_avsim::{AvConfig, AvEngine};
use kizzle_corpus::{GroundTruth, KitFamily, KitModel, Sample, SampleId, SimDate};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// One day of the simulated cycle.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CycleDay {
    /// The day.
    pub date: SimDate,
    /// Did the attacker ship a mutated variant today (because yesterday's
    /// variant was detected)?
    pub attacker_mutated: bool,
    /// Fraction of today's kit samples Kizzle detected.
    pub kizzle_detection: f64,
    /// Fraction of today's kit samples the lagged AV detected.
    pub av_detection: f64,
}

/// Result of an adversarial-cycle simulation.
#[derive(Debug, Clone, Serialize)]
pub struct CycleResult {
    /// Per-day outcomes.
    pub days: Vec<CycleDay>,
    /// Number of attacker mutations over the window.
    pub mutations: usize,
}

impl CycleResult {
    /// Number of days on which Kizzle detected the majority of samples.
    #[must_use]
    pub fn kizzle_winning_days(&self) -> usize {
        self.days
            .iter()
            .filter(|d| d.kizzle_detection > 0.5)
            .count()
    }

    /// Number of days on which the lagged AV detected the majority of
    /// samples.
    #[must_use]
    pub fn av_winning_days(&self) -> usize {
        self.days.iter().filter(|d| d.av_detection > 0.5).count()
    }
}

/// Simulate the adversarial cycle for one family over August 2014.
///
/// The attacker uses the scheduled kit, but mutates the *sample seed* (a
/// stand-in for re-randomizing the packer) every time the previous day's
/// variant was detected by Kizzle. Because Kizzle keys on structure rather
/// than concrete strings, the mutation does not help; because the AV keys
/// on concrete strings with a reaction delay, every real (scheduled)
/// delimiter rotation opens a window.
#[must_use]
pub fn run_cycle(family: KitFamily, samples_per_day: usize, seed: u64) -> CycleResult {
    let config = KizzleConfig::fast();
    let start = SimDate::evaluation_start();
    let reference = ReferenceCorpus::seeded_from_models(start, &config);
    let mut service = KizzleService::new(config, reference).expect("fast config is valid");
    // The defender's scanner fleet holds matcher handles; each day's seal
    // republishes and the handles pick the new set up atomically.
    let matcher = service.matcher();
    let av = AvEngine::new(AvConfig::default());
    let model = KitModel::new(family);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut days = Vec::new();
    let mut mutations = 0usize;
    let mut detected_yesterday = false;
    let mut id = 0u64;

    for date in start.range_inclusive(SimDate::evaluation_end()) {
        let attacker_mutated = detected_yesterday;
        if attacker_mutated {
            mutations += 1;
            // Re-randomize the packer output (fresh identifiers / chunking).
            rng = ChaCha8Rng::seed_from_u64(
                seed ^ (mutations as u64) << 32 ^ u64::from(date.ordinal()),
            );
        }

        let samples: Vec<Sample> = (0..samples_per_day)
            .map(|_| {
                id += 1;
                Sample::new(
                    SampleId(id),
                    date,
                    model.generate_sample(date, &mut rng),
                    GroundTruth::Malicious(family),
                )
            })
            .collect();

        service
            .process_day(date, &samples)
            .expect("cycle days are monotone");
        let kizzle_hits = samples
            .iter()
            .filter(|s| matcher.scan(&s.html).is_some())
            .count();
        let av_hits = samples
            .iter()
            .filter(|s| av.scan(date, &s.html).is_some())
            .count();
        let kizzle_detection = kizzle_hits as f64 / samples_per_day as f64;
        let av_detection = av_hits as f64 / samples_per_day as f64;
        detected_yesterday = kizzle_detection > 0.5;

        days.push(CycleDay {
            date,
            attacker_mutated,
            kizzle_detection,
            av_detection,
        });
    }

    CycleResult { days, mutations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kizzle_keeps_detecting_despite_attacker_mutations() {
        let result = run_cycle(KitFamily::Nuclear, 6, 11);
        assert_eq!(result.days.len(), 31);
        assert!(result.mutations > 10, "the attacker should keep mutating");
        assert!(
            result.kizzle_winning_days() >= 25,
            "Kizzle should win most days, won {}",
            result.kizzle_winning_days()
        );
        assert!(
            result.kizzle_winning_days() > result.av_winning_days(),
            "Kizzle {} vs AV {}",
            result.kizzle_winning_days(),
            result.av_winning_days()
        );
    }
}
