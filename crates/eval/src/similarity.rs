//! Day-over-day similarity of unpacked kits (paper Fig. 11) and the
//! PluginDetect false-positive overlap (paper Fig. 15).

use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_winnow::{Fingerprint, WinnowConfig};
use serde::Serialize;

/// One day's similarity measurement for one family.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimilarityPoint {
    /// The day.
    pub date: SimDate,
    /// Maximum winnow overlap of this day's unpacked kit body with any
    /// previous day in the window.
    pub max_overlap_with_history: f64,
}

/// Compute the Fig. 11 series for one family over `[start, end]`.
///
/// For every day, the unpacked kit body (the cluster centroid in the
/// paper's pipeline; here the kit model's reference payload) is
/// fingerprinted and compared against all previous days; the maximum
/// overlap is reported. The first day has no history and is skipped,
/// exactly as in the paper's plot which starts on August 2.
#[must_use]
pub fn similarity_over_time(
    family: KitFamily,
    start: SimDate,
    end: SimDate,
    winnow: &WinnowConfig,
) -> Vec<SimilarityPoint> {
    let model = KitModel::new(family);
    let days = start.range_inclusive(end);
    let fingerprints: Vec<(SimDate, Fingerprint)> = days
        .iter()
        .map(|&d| (d, Fingerprint::of_text(&model.reference_payload(d), winnow)))
        .collect();

    let mut out = Vec::new();
    for (i, (date, fp)) in fingerprints.iter().enumerate().skip(1) {
        let max_overlap = fingerprints[..i]
            .iter()
            .map(|(_, prev)| fp.overlap(prev))
            .fold(0.0f64, f64::max);
        out.push(SimilarityPoint {
            date: *date,
            max_overlap_with_history: max_overlap,
        });
    }
    out
}

/// The Fig. 15 measurement: winnow overlap of a benign PluginDetect-style
/// page with the unpacked Nuclear kit (the paper reports 79%).
#[must_use]
pub fn plugindetect_overlap_with_nuclear(seed: u64, winnow: &WinnowConfig) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let benign = kizzle_corpus::benign::generate_benign(
        kizzle_corpus::benign::BenignKind::PluginDetect,
        &mut rng,
    );
    let benign_js = kizzle_unpack::script_text(&benign);
    let nuclear = KitModel::new(KitFamily::Nuclear).reference_payload(SimDate::new(2014, 8, 15));
    let probe = Fingerprint::of_text(&benign_js, winnow);
    let reference = Fingerprint::of_text(&nuclear, winnow);
    probe.overlap(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn august() -> (SimDate, SimDate) {
        (SimDate::evaluation_start(), SimDate::evaluation_end())
    }

    #[test]
    fn nuclear_and_angler_stay_nearly_identical() {
        let (start, end) = august();
        let cfg = WinnowConfig::default();
        for family in [KitFamily::Nuclear, KitFamily::Angler] {
            let series = similarity_over_time(family, start, end, &cfg);
            assert_eq!(series.len(), 30);
            let min = series
                .iter()
                .map(|p| p.max_overlap_with_history)
                .fold(1.0f64, f64::min);
            assert!(min > 0.9, "{family}: min similarity {min:.2}");
        }
    }

    #[test]
    fn rig_churns_much_more_than_the_others() {
        let (start, end) = august();
        let cfg = WinnowConfig::default();
        let rig = similarity_over_time(KitFamily::Rig, start, end, &cfg);
        let avg: f64 =
            rig.iter().map(|p| p.max_overlap_with_history).sum::<f64>() / rig.len() as f64;
        assert!(
            avg < 0.85,
            "RIG average similarity {avg:.2} should be well below the others"
        );
        assert!(
            avg > 0.2,
            "RIG should still share its stable body, got {avg:.2}"
        );
    }

    #[test]
    fn similarity_values_are_probabilities() {
        let (start, end) = august();
        let cfg = WinnowConfig::default();
        for family in KitFamily::ALL {
            for point in similarity_over_time(family, start, end, &cfg) {
                assert!((0.0..=1.0).contains(&point.max_overlap_with_history));
            }
        }
    }

    #[test]
    fn plugindetect_overlap_is_substantial_like_figure_15() {
        let overlap = plugindetect_overlap_with_nuclear(1, &WinnowConfig::default());
        assert!(
            (0.25..0.95).contains(&overlap),
            "expected a large-but-not-total overlap, got {overlap:.2}"
        );
    }
}
