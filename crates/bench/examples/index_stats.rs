//! Print the neighbor-index pruning funnel on a synthetic day.
//!
//! ```sh
//! cargo run --release -p kizzle-bench --example index_stats [samples]
//! ```
//!
//! This regenerates the pruning-efficiency table in PERF.md.

use kizzle_bench::synthetic_day_class_strings;
use kizzle_cluster::{dbscan_indexed, DbscanParams};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let day = synthetic_day_class_strings(n, 900);
    let params = DbscanParams::new(0.10, 4);

    let t = Instant::now();
    let (result, stats) = dbscan_indexed(&day, &params);
    let elapsed = t.elapsed();

    let all_ordered_pairs = n * n.saturating_sub(1);
    println!("samples:                {n}");
    println!("clusters:               {}", result.cluster_count());
    println!("noise:                  {}", result.noise_count());
    println!("wall clock:             {elapsed:?}");
    println!("ordered pairs:          {all_ordered_pairs}");
    println!(
        "survived length window: {} ({:.2}%)",
        stats.window_candidates,
        100.0 * stats.window_candidates as f64 / all_ordered_pairs.max(1) as f64
    );
    println!(
        "pruned by histogram:    {} ({:.2}% of window)",
        stats.pruned_by_histogram,
        100.0 * stats.pruned_by_histogram as f64 / stats.window_candidates.max(1) as f64
    );
    println!(
        "edit-distance calls:    {} ({:.2}% of all pairs)",
        stats.distance_calls,
        100.0 * stats.distance_calls as f64 / all_ordered_pairs.max(1) as f64
    );
    println!("neighbors found:        {}", stats.neighbors_found);
}
