//! CI perf-regression gate: compare a smoke-bench run against committed
//! thresholds.
//!
//! The vendored criterion harness appends one JSON object per benchmark to
//! the file named by `KIZZLE_BENCH_OUT`
//! (`{"name":…,"mean_ns":…,"min_ns":…,"max_ns":…,"samples":…}`). This
//! binary reads that file plus the committed `crates/bench/thresholds.json`
//! (a flat `{"bench name": threshold_mean_ns}` object) and exits non-zero
//! when any gated benchmark regressed more than the allowed margin over
//! its threshold, or when a gated benchmark is missing from the run (a
//! silently dropped bench must not pass the gate).
//!
//! ```text
//! usage: bench_check <bench-out.json> <thresholds.json> [--max-regression PCT]
//! ```
//!
//! Thresholds are ceilings on the *mean*, set from measured CI numbers
//! with headroom for machine variance; the default margin on top is 25%.
//! Benches observed in the run but absent from the thresholds file are
//! reported informationally and never fail the gate — new benches opt in
//! by committing a threshold.
//!
//! No `serde_json`: the workspace has no crate registry, and both formats
//! are flat enough for the hand-rolled readers below (which reject
//! anything they do not understand rather than guessing).

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut max_regression_pct = 25.0f64;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            let value = iter.next().unwrap_or_default();
            match value.parse::<f64>() {
                Ok(pct) if pct >= 0.0 => max_regression_pct = pct,
                _ => return usage(&format!("--max-regression: bad value {value:?}")),
            }
        } else {
            positional.push(arg);
        }
    }
    let [results_path, thresholds_path] = positional.as_slice() else {
        return usage("expected <bench-out.json> <thresholds.json>");
    };

    let results = match read_results(results_path) {
        Ok(results) => results,
        Err(err) => return fail(&format!("{results_path}: {err}")),
    };
    let thresholds = match read_thresholds(thresholds_path) {
        Ok(thresholds) => thresholds,
        Err(err) => return fail(&format!("{thresholds_path}: {err}")),
    };
    if thresholds.is_empty() {
        return fail(&format!("{thresholds_path}: no thresholds — nothing gated"));
    }

    let margin = 1.0 + max_regression_pct / 100.0;
    let mut failures = 0usize;
    for (name, &threshold_ns) in &thresholds {
        let Some(&observed_ns) = results.get(name) else {
            eprintln!("FAIL {name}: gated benchmark missing from the run");
            failures += 1;
            continue;
        };
        let limit = threshold_ns * margin;
        let ratio = observed_ns / threshold_ns;
        if observed_ns > limit {
            eprintln!(
                "FAIL {name}: {} observed vs {} threshold ({:+.1}% > +{max_regression_pct:.0}% allowed)",
                fmt_ns(observed_ns),
                fmt_ns(threshold_ns),
                (ratio - 1.0) * 100.0
            );
            failures += 1;
        } else {
            println!(
                "ok   {name}: {} vs {} threshold ({:+.1}%)",
                fmt_ns(observed_ns),
                fmt_ns(threshold_ns),
                (ratio - 1.0) * 100.0
            );
        }
    }
    for name in results.keys() {
        if !thresholds.contains_key(name) {
            println!("note {name}: observed but not gated (no committed threshold)");
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} of {} gated benchmark(s) failed",
            thresholds.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_check: all {} gated benchmark(s) within +{max_regression_pct:.0}% of threshold",
            thresholds.len()
        );
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "bench_check: {problem}\n\
         usage: bench_check <bench-out.json> <thresholds.json> [--max-regression PCT]"
    );
    ExitCode::FAILURE
}

fn fail(problem: &str) -> ExitCode {
    eprintln!("bench_check: {problem}");
    ExitCode::FAILURE
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Read the harness's JSON-lines output: `name` → `mean_ns`. A bench that
/// ran several times (several samples-size invocations appending to one
/// file) keeps its *last* observation.
fn read_results(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| err.to_string())?;
    let mut results = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let object =
            parse_flat_object(line).map_err(|err| format!("line {}: {err}", lineno + 1))?;
        let name = match object.get("name") {
            Some(Value::Str(name)) => name.clone(),
            _ => return Err(format!("line {}: no \"name\" string", lineno + 1)),
        };
        let mean = match object.get("mean_ns") {
            Some(Value::Num(mean)) => *mean,
            _ => return Err(format!("line {}: no \"mean_ns\" number", lineno + 1)),
        };
        results.insert(name, mean);
    }
    Ok(results)
}

/// Read the committed thresholds: a flat JSON object mapping bench names
/// to mean-ns ceilings. String values are ignored (comment keys).
fn read_thresholds(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| err.to_string())?;
    let object = parse_flat_object(text.trim())?;
    Ok(object
        .into_iter()
        .filter_map(|(key, value)| match value {
            Value::Num(ns) => Some((key, ns)),
            Value::Str(_) => None,
        })
        .collect())
}

enum Value {
    Str(String),
    Num(f64),
}

/// Parse one flat JSON object of string/number values — the only JSON
/// shape this tool consumes. Nested structures are a parse error.
fn parse_flat_object(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut chars = text.chars().peekable();
    let mut object = BTreeMap::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, object);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => Value::Num(parse_number(&mut chars)?),
            other => return Err(format!("unsupported value starting with {other:?}")),
        };
        object.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, object),
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn finish(
    mut chars: Chars<'_>,
    object: BTreeMap<String, Value>,
) -> Result<BTreeMap<String, Value>, String> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(object),
        Some(c) => Err(format!("trailing {c:?} after object")),
    }
}

fn skip_ws(chars: &mut Chars<'_>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, found {other:?}")),
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_number(chars: &mut Chars<'_>) -> Result<f64, String> {
    let mut text = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_'))
    {
        let c = chars.next().expect("peeked");
        if c != '_' {
            text.push(c);
        }
    }
    text.parse::<f64>()
        .map_err(|err| format!("bad number {text:?}: {err}"))
}
