//! # kizzle-bench — shared fixtures for the Criterion benchmark harness
//!
//! The benchmarks live in `benches/`:
//!
//! * `paper_experiments` — one Criterion group per paper table/figure
//!   (the E1–E12 index of DESIGN.md), regenerating each result at bench
//!   scale plus the ablations called out in DESIGN.md §5.
//! * `components` — micro-benchmarks of the individual pipeline stages
//!   (tokenization, edit distance, DBSCAN, winnowing, signature
//!   generation, scanning).
//!
//! This library only holds the fixture helpers those benches share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_js::TokenStream;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generate `count` packed landing pages of one kit for a fixed date.
#[must_use]
pub fn packed_samples(family: KitFamily, day: u32, count: usize) -> Vec<String> {
    let model = KitModel::new(family);
    let date = SimDate::new(2014, 8, day);
    (0..count as u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(9_000 + i);
            model.generate_sample(date, &mut rng)
        })
        .collect()
}

/// Tokenize documents and truncate each to `cap` tokens.
#[must_use]
pub fn tokenized(documents: &[String], cap: usize) -> Vec<TokenStream> {
    documents
        .iter()
        .map(|doc| {
            let stream = kizzle_js::tokenize_document(doc);
            stream.slice(0, cap.min(stream.len()))
        })
        .collect()
}

/// Token-class strings for clustering benches.
#[must_use]
pub fn class_strings(documents: &[String], cap: usize) -> Vec<Vec<u8>> {
    tokenized(documents, cap)
        .iter()
        .map(TokenStream::class_codes)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_consistent_shapes() {
        let docs = packed_samples(KitFamily::Nuclear, 5, 3);
        assert_eq!(docs.len(), 3);
        let streams = tokenized(&docs, 200);
        assert!(streams.iter().all(|s| s.len() <= 200 && !s.is_empty()));
        assert_eq!(class_strings(&docs, 200).len(), 3);
    }
}
