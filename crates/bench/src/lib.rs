//! # kizzle-bench — shared fixtures for the Criterion benchmark harness
//!
//! The benchmarks live in `benches/`:
//!
//! * `paper_experiments` — one Criterion group per paper table/figure
//!   (the E1–E12 index of DESIGN.md), regenerating each result at bench
//!   scale plus the ablations called out in DESIGN.md §5.
//! * `components` — micro-benchmarks of the individual pipeline stages
//!   (tokenization, edit distance, DBSCAN, winnowing, signature
//!   generation, scanning).
//!
//! This library only holds the fixture helpers those benches share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_js::TokenStream;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generate `count` packed landing pages of one kit for a fixed date.
#[must_use]
pub fn packed_samples(family: KitFamily, day: u32, count: usize) -> Vec<String> {
    let model = KitModel::new(family);
    let date = SimDate::new(2014, 8, day);
    (0..count as u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(9_000 + i);
            model.generate_sample(date, &mut rng)
        })
        .collect()
}

/// Tokenize documents and truncate each to `cap` tokens.
#[must_use]
pub fn tokenized(documents: &[String], cap: usize) -> Vec<TokenStream> {
    documents
        .iter()
        .map(|doc| {
            let stream = kizzle_js::tokenize_document(doc);
            stream.slice(0, cap.min(stream.len()))
        })
        .collect()
}

/// Token-class strings for clustering benches.
#[must_use]
pub fn class_strings(documents: &[String], cap: usize) -> Vec<Vec<u8>> {
    tokenized(documents, cap)
        .iter()
        .map(TokenStream::class_codes)
        .collect()
}

/// Token-class strings of one synthetic "day" for the clustering benches:
/// a mix of exploit-kit families (clusterable near-duplicates) and benign
/// one-off pages (noise), matching what the daily pipeline clusters.
///
/// Deterministic for a given `total`; documents are capped at `cap` tokens
/// like `KizzleCompiler::tokenize_capped` does.
#[must_use]
pub fn synthetic_day_class_strings(total: usize, cap: usize) -> Vec<Vec<u8>> {
    use kizzle_corpus::benign::{generate_benign, BenignKind};
    let families = [
        KitFamily::Angler,
        KitFamily::Nuclear,
        KitFamily::Rig,
        KitFamily::SweetOrange,
    ];
    let malicious = total * 7 / 10;
    let per_family = malicious / families.len();
    let date = SimDate::new(2014, 8, 14);
    let mut documents: Vec<String> = Vec::with_capacity(total);
    for (f, family) in families.iter().enumerate() {
        let model = KitModel::new(*family);
        for i in 0..per_family {
            let mut rng = ChaCha8Rng::seed_from_u64((f * 100_000 + i) as u64);
            documents.push(model.generate_sample(date, &mut rng));
        }
    }
    let mut i = 0u64;
    while documents.len() < total {
        let mut rng = ChaCha8Rng::seed_from_u64(7_000_000 + i);
        let kind = BenignKind::ALL[(i as usize) % BenignKind::ALL.len()];
        documents.push(generate_benign(kind, &mut rng));
        i += 1;
    }
    class_strings(&documents, cap)
}

/// Like [`synthetic_day_class_strings`], but every string is guaranteed
/// distinct: sample `i` carries a 6-token class-code prefix encoding `i`.
///
/// The kit generators are *too* faithful for some benches: variants of one
/// family often collapse to the same token-class sequence, and anything
/// built on [`kizzle_cluster::CorpusStore`] dedups them down to a handful
/// of live samples. The prefix keeps every sample live while staying ≤ 6
/// edits from its base (far inside the clustering `eps` at realistic
/// lengths), so family clusters survive intact.
///
/// # Panics
///
/// Panics if `total` exceeds the 6-digit base-6 prefix space (46,656).
#[must_use]
pub fn distinct_day_class_strings(total: usize, cap: usize) -> Vec<Vec<u8>> {
    assert!(total <= 6usize.pow(6), "prefix space exhausted");
    synthetic_day_class_strings(total, cap)
        .into_iter()
        .enumerate()
        .map(|(i, base)| {
            let mut tagged = Vec::with_capacity(base.len() + 6);
            let mut rest = i;
            for _ in 0..6 {
                tagged.push((rest % 6) as u8);
                rest /= 6;
            }
            tagged.extend_from_slice(&base);
            tagged
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_day_has_requested_size() {
        let day = synthetic_day_class_strings(40, 300);
        assert_eq!(day.len(), 40);
        assert!(day.iter().all(|s| s.len() <= 300));
    }

    #[test]
    fn distinct_day_strings_are_all_distinct() {
        let day = distinct_day_class_strings(50, 300);
        assert_eq!(day.len(), 50);
        let unique: std::collections::HashSet<&[u8]> = day.iter().map(|s| &s[..]).collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn fixtures_produce_consistent_shapes() {
        let docs = packed_samples(KitFamily::Nuclear, 5, 3);
        assert_eq!(docs.len(), 3);
        let streams = tokenized(&docs, 200);
        assert!(streams.iter().all(|s| s.len() <= 200 && !s.is_empty()));
        assert_eq!(class_strings(&docs, 200).len(), 3);
    }
}
