//! # kizzle-bench — shared fixtures for the Criterion benchmark harness
//!
//! The benchmarks live in `benches/`:
//!
//! * `paper_experiments` — one Criterion group per paper table/figure
//!   (the E1–E12 index of DESIGN.md), regenerating each result at bench
//!   scale plus the ablations called out in DESIGN.md §5.
//! * `components` — micro-benchmarks of the individual pipeline stages
//!   (tokenization, edit distance, DBSCAN, winnowing, signature
//!   generation, scanning).
//!
//! This library only holds the fixture helpers those benches share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_js::TokenStream;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generate `count` packed landing pages of one kit for a fixed date.
#[must_use]
pub fn packed_samples(family: KitFamily, day: u32, count: usize) -> Vec<String> {
    let model = KitModel::new(family);
    let date = SimDate::new(2014, 8, day);
    (0..count as u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(9_000 + i);
            model.generate_sample(date, &mut rng)
        })
        .collect()
}

/// Tokenize documents and truncate each to `cap` tokens.
#[must_use]
pub fn tokenized(documents: &[String], cap: usize) -> Vec<TokenStream> {
    documents
        .iter()
        .map(|doc| {
            let stream = kizzle_js::tokenize_document(doc);
            stream.slice(0, cap.min(stream.len()))
        })
        .collect()
}

/// Token-class strings for clustering benches.
#[must_use]
pub fn class_strings(documents: &[String], cap: usize) -> Vec<Vec<u8>> {
    tokenized(documents, cap)
        .iter()
        .map(TokenStream::class_codes)
        .collect()
}

/// Token-class strings of one synthetic "day" for the clustering benches:
/// a mix of exploit-kit families (clusterable near-duplicates) and benign
/// one-off pages (noise), matching what the daily pipeline clusters.
///
/// Deterministic for a given `total`; documents are capped at `cap` tokens
/// like `KizzleCompiler::tokenize_capped` does.
#[must_use]
pub fn synthetic_day_class_strings(total: usize, cap: usize) -> Vec<Vec<u8>> {
    use kizzle_corpus::benign::{generate_benign, BenignKind};
    let families = [
        KitFamily::Angler,
        KitFamily::Nuclear,
        KitFamily::Rig,
        KitFamily::SweetOrange,
    ];
    let malicious = total * 7 / 10;
    let per_family = malicious / families.len();
    let date = SimDate::new(2014, 8, 14);
    let mut documents: Vec<String> = Vec::with_capacity(total);
    for (f, family) in families.iter().enumerate() {
        let model = KitModel::new(*family);
        for i in 0..per_family {
            let mut rng = ChaCha8Rng::seed_from_u64((f * 100_000 + i) as u64);
            documents.push(model.generate_sample(date, &mut rng));
        }
    }
    let mut i = 0u64;
    while documents.len() < total {
        let mut rng = ChaCha8Rng::seed_from_u64(7_000_000 + i);
        let kind = BenignKind::ALL[(i as usize) % BenignKind::ALL.len()];
        documents.push(generate_benign(kind, &mut rng));
        i += 1;
    }
    class_strings(&documents, cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_day_has_requested_size() {
        let day = synthetic_day_class_strings(40, 300);
        assert_eq!(day.len(), 40);
        assert!(day.iter().all(|s| s.len() <= 300));
    }

    #[test]
    fn fixtures_produce_consistent_shapes() {
        let docs = packed_samples(KitFamily::Nuclear, 5, 3);
        assert_eq!(docs.len(), 3);
        let streams = tokenized(&docs, 200);
        assert!(streams.iter().all(|s| s.len() <= 200 && !s.is_empty()));
        assert_eq!(class_strings(&docs, 200).len(), 3);
    }
}
