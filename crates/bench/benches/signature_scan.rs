//! Anchored vs. linear signature-set scanning.
//!
//! Acceptance bar (ISSUE 1): with 500 deployed signatures, the anchored
//! scan must beat the linear scan by ≥ 5× on non-matching documents. The
//! anchored scan walks the document once and does hash lookups per token;
//! the linear scan slides every signature across every token offset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_corpus::benign::{generate_benign, BenignKind};
use kizzle_signature::{CharClass, Element, Signature, SignatureSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

/// A realistic packer-shaped signature with a unique long literal anchor,
/// in the mold of the paper's Fig. 9.
fn synthetic_signature(i: usize) -> Signature {
    Signature::new(
        format!("SYN.sig{i}"),
        vec![
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 5,
                max_len: 8,
            },
            Element::Literal("=".to_string()),
            Element::Literal(format!("decoder_{i:04}")),
            Element::Literal("[".to_string()),
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 3,
                max_len: 6,
            },
            Element::Literal("]".to_string()),
            Element::Literal("(".to_string()),
            Element::Class {
                class: CharClass::Any,
                min_len: 8,
                max_len: 24,
            },
            Element::Literal(")".to_string()),
            Element::Literal(";".to_string()),
        ],
        4,
    )
}

fn signature_set(count: usize) -> SignatureSet {
    let mut set = SignatureSet::new();
    for i in 0..count {
        set.add(format!("Family{}", i % 8), synthetic_signature(i));
    }
    set
}

fn bench_scan(c: &mut Criterion) {
    let set = signature_set(500);
    assert_eq!(set.len(), 500);

    // Non-matching corpus: realistic benign pages.
    let benign_streams: Vec<_> = (0..4u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i);
            let kind = BenignKind::ALL[i as usize % BenignKind::ALL.len()];
            kizzle_js::tokenize_document(&generate_benign(kind, &mut rng))
        })
        .collect();
    for stream in &benign_streams {
        assert!(
            set.scan_stream(stream).is_none(),
            "benign doc must not match"
        );
    }

    // A matching document, built from signature #250's shape.
    let hit_doc = r#"<script>var pre = 1; aB3xY = decoder_0250["k3x"]("payload#123"); var post = 2;</script>"#;
    let hit_stream = kizzle_js::tokenize_document(hit_doc);
    assert!(set.scan_stream(&hit_stream).is_some(), "hit doc must match");

    let mut group = c.benchmark_group("signature_scan");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    for (label, scan_anchored) in [("linear", false), ("anchored", true)] {
        group.bench_with_input(
            BenchmarkId::new("miss_500_sigs", label),
            &scan_anchored,
            |b, &anchored| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for stream in &benign_streams {
                        let hit = if anchored {
                            set.scan_stream(stream)
                        } else {
                            set.scan_stream_linear(stream)
                        };
                        hits += usize::from(hit.is_some());
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hit_500_sigs", label),
            &scan_anchored,
            |b, &anchored| {
                b.iter(|| {
                    let hit = if anchored {
                        set.scan_stream(&hit_stream)
                    } else {
                        set.scan_stream_linear(&hit_stream)
                    };
                    black_box(hit.is_some())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(signature_scan, bench_scan);
criterion_main!(signature_scan);
