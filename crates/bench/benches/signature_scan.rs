//! Staged vs. linear signature-set scanning, across signature scale.
//!
//! Acceptance bars: with 500 deployed signatures the staged scan must
//! beat the linear scan by ≥ 5× on non-matching documents (ISSUE 1), and
//! the per-document scan cost must stay nearly flat in the signature
//! count — the 50k-signature arms within 3× of the 500-signature arms
//! (ISSUE 6). The staged scan walks the document's tokens once through
//! the Aho–Corasick anchor automaton regardless of set size; the linear
//! scan slides every signature across every token offset (kept at 500 as
//! the oracle baseline, deliberately ungated).
//!
//! `seal_50k` tracks the pipeline build itself (automaton + prefilter
//! tables over 50k signatures) — paid once per publish, shipped in
//! snapshots, but worth gating so it never silently becomes minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_corpus::benign::{generate_benign, BenignKind};
use kizzle_signature::{
    CharClass, Element, LabeledSignature, ScanPipeline, Signature, SignatureSet,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

/// A realistic packer-shaped signature with a unique long literal anchor,
/// in the mold of the paper's Fig. 9.
fn synthetic_signature(i: usize) -> Signature {
    Signature::new(
        format!("SYN.sig{i}"),
        vec![
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 5,
                max_len: 8,
            },
            Element::Literal("=".to_string()),
            Element::Literal(format!("decoder_{i:04}")),
            Element::Literal("[".to_string()),
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 3,
                max_len: 6,
            },
            Element::Literal("]".to_string()),
            Element::Literal("(".to_string()),
            Element::Class {
                class: CharClass::Any,
                min_len: 8,
                max_len: 24,
            },
            Element::Literal(")".to_string()),
            Element::Literal(";".to_string()),
        ],
        4,
    )
}

fn signature_set(count: usize) -> SignatureSet {
    let mut set = SignatureSet::new();
    for i in 0..count {
        set.add(format!("Family{}", i % 8), synthetic_signature(i));
    }
    set
}

fn bench_scan(c: &mut Criterion) {
    let set = signature_set(500);
    assert_eq!(set.len(), 500);

    // Non-matching corpus: realistic benign pages.
    let benign_streams: Vec<_> = (0..4u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i);
            let kind = BenignKind::ALL[i as usize % BenignKind::ALL.len()];
            kizzle_js::tokenize_document(&generate_benign(kind, &mut rng))
        })
        .collect();
    for stream in &benign_streams {
        assert!(
            set.scan_stream(stream).is_none(),
            "benign doc must not match"
        );
    }

    // A matching document, built from signature #250's shape.
    let hit_doc = r#"<script>var pre = 1; aB3xY = decoder_0250["k3x"]("payload#123"); var post = 2;</script>"#;
    let hit_stream = kizzle_js::tokenize_document(hit_doc);
    assert!(set.scan_stream(&hit_stream).is_some(), "hit doc must match");

    let mut group = c.benchmark_group("signature_scan");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    for (label, scan_anchored) in [("linear", false), ("anchored", true)] {
        group.bench_with_input(
            BenchmarkId::new("miss_500_sigs", label),
            &scan_anchored,
            |b, &anchored| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for stream in &benign_streams {
                        let hit = if anchored {
                            set.scan_stream(stream)
                        } else {
                            set.scan_stream_linear(stream)
                        };
                        hits += usize::from(hit.is_some());
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hit_500_sigs", label),
            &scan_anchored,
            |b, &anchored| {
                b.iter(|| {
                    let hit = if anchored {
                        set.scan_stream(&hit_stream)
                    } else {
                        set.scan_stream_linear(&hit_stream)
                    };
                    black_box(hit.is_some())
                })
            },
        );
    }
    group.finish();
}

/// The scale arms (ISSUE 6): the same scan at 10× and 100× the signature
/// count. Every signature still has a unique anchor literal, which is the
/// production shape — daily compounding emits fresh `decoder_NNNN`-style
/// packer tokens far more often than it reuses one.
fn bench_scan_at_scale(c: &mut Criterion) {
    let benign_streams: Vec<_> = (0..4u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i);
            let kind = BenignKind::ALL[i as usize % BenignKind::ALL.len()];
            kizzle_js::tokenize_document(&generate_benign(kind, &mut rng))
        })
        .collect();

    let mut group = c.benchmark_group("signature_scan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for (label, count) in [("5k_sigs", 5_000usize), ("50k_sigs", 50_000)] {
        let set = signature_set(count);
        assert_eq!(set.len(), count);
        set.seal();
        for stream in &benign_streams {
            assert!(
                set.scan_stream(stream).is_none(),
                "benign doc must match nothing"
            );
        }
        // A matching document built from a mid-set signature's shape, so
        // the scan cannot win by matching early in insertion order.
        let mid = count / 2;
        let hit_doc = format!(
            r#"<script>var pre = 1; aB3xY = decoder_{mid:04}["k3x"]("payload#123"); var post = 2;</script>"#
        );
        let hit_stream = kizzle_js::tokenize_document(&hit_doc);
        assert_eq!(
            set.scan_stream(&hit_stream)
                .map(|s| s.signature.name.as_str()),
            Some(format!("SYN.sig{mid}").as_str()),
            "hit doc must match its signature"
        );

        group.bench_function(BenchmarkId::new(format!("miss_{label}"), "anchored"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for stream in &benign_streams {
                    hits += usize::from(set.scan_stream(stream).is_some());
                }
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::new(format!("hit_{label}"), "anchored"), |b| {
            b.iter(|| black_box(set.scan_stream(&hit_stream).is_some()))
        });
    }

    // The adversarial fan-out shape: many signatures behind ONE shared
    // anchor literal, differing only in class length ranges, plus a
    // document that fires that anchor on every other token. The automaton
    // finds one pattern; the batched prefilter has to reject the bucket.
    let mut shared = SignatureSet::new();
    for i in 0..100usize {
        shared.add(
            "Shared",
            Signature::new(
                format!("SHARED.sig{i}"),
                vec![
                    Element::Literal("sharedAnchor".to_string()),
                    Element::Literal("(".to_string()),
                    Element::Class {
                        class: CharClass::Digits,
                        min_len: i + 1,
                        max_len: i + 1,
                    },
                    Element::Literal(")".to_string()),
                ],
                4,
            ),
        );
    }
    shared.seal();
    let stress_doc = (0..200)
        .map(|i| format!("sharedAnchor [ x{i} ]"))
        .collect::<Vec<_>>()
        .join(" ");
    let stress_stream = kizzle_js::tokenize(&stress_doc);
    assert!(shared.scan_stream(&stress_stream).is_none());
    group.bench_function(BenchmarkId::new("shared_anchor_100", "anchored"), |b| {
        b.iter(|| black_box(shared.scan_stream(&stress_stream).is_none()))
    });
    group.finish();
}

/// Pipeline build (automaton + prefilter tables) at the 100× scale —
/// paid once per publish/save, not per scan.
fn bench_seal(c: &mut Criterion) {
    let members: Vec<LabeledSignature> = signature_set(50_000).iter().cloned().collect();
    let mut group = c.benchmark_group("signature_scan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("seal_50k", "build"), |b| {
        b.iter(|| black_box(ScanPipeline::build(&members)).literal_count())
    });
    group.finish();
}

criterion_group!(signature_scan, bench_scan, bench_scan_at_scale, bench_seal);
criterion_main!(signature_scan);
