//! Pipelined day ingest: sustained frontend throughput and two-day
//! overlap (PR 7).
//!
//! * `sustained_ingest/idle_64` — a 64-sample day submitted in
//!   mini-batches through the bounded-channel frontend with **no** seal
//!   in flight: the steady-state tokenize/dedup/store-insert cost off the
//!   producer's thread.
//! * `sustained_ingest/during_seal_64` — the same pipelined ingest while
//!   the *previous* day's `seal_background` runs (plus that seal's cost:
//!   the vendored harness times whole routines). The ingest-only
//!   seal-in-flight/idle throughput ratio is measured separately and
//!   printed to stderr for PERF.md.
//! * `two_day_overlap/serial` vs `two_day_overlap/pipelined` — two days
//!   sealed back to back: single-shot `process_day` twice, versus day A
//!   sealing in the background while day B ingests. On a multi-core box
//!   the pipelined arm's wall-clock drops below serial; on a single core
//!   the work serializes and the win is the hidden `begin_day(d+1)`
//!   latency instead (both numbers printed to stderr).
//!
//! Every routine reuses one date: re-opening the same day is the
//! documented crash-recovery path, and identical content dedups onto the
//! warm store, so state stays bounded across iterations.

use criterion::{criterion_group, criterion_main, Criterion};
use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, Sample, SimDate, StreamConfig};
use kizzle_js::TokenStream;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fresh_service() -> KizzleService {
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    KizzleService::new(config, reference).expect("fast config is valid")
}

fn day(seed: u64) -> Vec<Sample> {
    GraywareStream::new(StreamConfig {
        samples_per_day: 64,
        malicious_fraction: 0.5,
        seed,
        ..StreamConfig::default()
    })
    .generate_day(SimDate::new(2014, 8, 5))
}

fn tokenize(service: &KizzleService, samples: &[Sample]) -> Vec<TokenStream> {
    let compiler = service.compiler();
    samples
        .iter()
        .map(|s| compiler.tokenize_capped(&s.html))
        .collect()
}

/// Pipelined ingest of `chunks` into a session on `date`, abandoned after
/// the worker has applied everything (ingest cost without seal cost).
fn pipelined_ingest(service: &mut KizzleService, date: SimDate, chunks: &[Arc<[Sample]>]) {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut session = service.begin_day(date).expect("same-day reopen is allowed");
    let producer = session.pipeline(4);
    for chunk in chunks {
        assert!(producer.send_shared(Arc::clone(chunk)));
    }
    drop(producer);
    while session.ingested() < total {
        std::thread::yield_now();
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let date = SimDate::new(2014, 8, 5);
    let day_a = day(3);
    let day_b = day(4);

    // --- sustained_ingest -------------------------------------------------
    let mut group = c.benchmark_group("sustained_ingest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    {
        let mut service = fresh_service();
        let chunks: Vec<Arc<[Sample]>> = day_b.chunks(8).map(Arc::from).collect();
        group.bench_function("idle_64", |b| {
            b.iter(|| pipelined_ingest(&mut service, date, &chunks))
        });
    }

    {
        let mut service = fresh_service();
        let streams_a = tokenize(&service, &day_a);
        let chunks: Vec<Arc<[Sample]>> = day_b.chunks(8).map(Arc::from).collect();
        group.bench_function("during_seal_64", |b| {
            b.iter(|| {
                let mut a = service.begin_day(date).expect("day opens");
                a.ingest_tokenized(&day_a, &streams_a);
                let handle = a.seal_background();
                pipelined_ingest(&mut service, date, &chunks);
                black_box(handle.wait().clusters)
            })
        });
    }
    group.finish();

    // Ingest-only ratio for PERF.md: time the pipelined ingest window with
    // and without a seal in flight (the criterion arm above can't exclude
    // the seal's own cost from its routine).
    {
        let mut service = fresh_service();
        let streams_a = tokenize(&service, &day_a);
        let chunks: Vec<Arc<[Sample]>> = day_b.chunks(8).map(Arc::from).collect();
        let rounds = 40;
        // Warm the store so both measurements dedup onto live entries.
        pipelined_ingest(&mut service, date, &chunks);
        let t = Instant::now();
        for _ in 0..rounds {
            pipelined_ingest(&mut service, date, &chunks);
        }
        let idle = t.elapsed() / rounds;
        let mut with_seal = Duration::ZERO;
        for _ in 0..rounds {
            let mut a = service.begin_day(date).expect("day opens");
            a.ingest_tokenized(&day_a, &streams_a);
            let handle = a.seal_background();
            let t = Instant::now();
            pipelined_ingest(&mut service, date, &chunks);
            with_seal += t.elapsed();
            black_box(handle.wait());
        }
        let with_seal = with_seal / rounds;
        eprintln!(
            "sustained_ingest: idle {:?}/day, seal-in-flight {:?}/day — {:.0}% of idle throughput",
            idle,
            with_seal,
            idle.as_secs_f64() / with_seal.as_secs_f64() * 100.0
        );
    }

    // --- two_day_overlap --------------------------------------------------
    let mut group = c.benchmark_group("two_day_overlap");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    {
        let mut service = fresh_service();
        let streams_a = tokenize(&service, &day_a);
        let streams_b = tokenize(&service, &day_b);
        group.bench_function("serial", |b| {
            b.iter(|| {
                let r1 = service
                    .process_day_tokenized(date, &day_a, &streams_a)
                    .expect("day seals");
                let r2 = service
                    .process_day_tokenized(date, &day_b, &streams_b)
                    .expect("day seals");
                black_box(r1.clusters + r2.clusters)
            })
        });
    }

    {
        let mut service = fresh_service();
        let streams_a = tokenize(&service, &day_a);
        let streams_b = tokenize(&service, &day_b);
        group.bench_function("pipelined", |b| {
            b.iter(|| {
                let mut a = service.begin_day(date).expect("day opens");
                a.ingest_tokenized(&day_a, &streams_a);
                let handle = a.seal_background();
                // Day B ingests while day A clusters on the seal thread.
                let mut b_session = service.begin_day(date).expect("day opens");
                b_session.ingest_tokenized(&day_b, &streams_b);
                let r2 = b_session.seal();
                black_box(handle.wait().clusters + r2.clusters)
            })
        });
    }
    group.finish();

    // Headline wall-clock pair for PERF.md.
    {
        let mut serial_svc = fresh_service();
        let streams_a = tokenize(&serial_svc, &day_a);
        let streams_b = tokenize(&serial_svc, &day_b);
        let rounds = 10;
        let t = Instant::now();
        for _ in 0..rounds {
            black_box(
                serial_svc
                    .process_day_tokenized(date, &day_a, &streams_a)
                    .expect("day seals")
                    .clusters,
            );
            black_box(
                serial_svc
                    .process_day_tokenized(date, &day_b, &streams_b)
                    .expect("day seals")
                    .clusters,
            );
        }
        let serial = t.elapsed() / rounds;
        let mut piped_svc = fresh_service();
        let streams_a = tokenize(&piped_svc, &day_a);
        let streams_b = tokenize(&piped_svc, &day_b);
        let t = Instant::now();
        for _ in 0..rounds {
            let mut a = piped_svc.begin_day(date).expect("day opens");
            a.ingest_tokenized(&day_a, &streams_a);
            let handle = a.seal_background();
            let mut b = piped_svc.begin_day(date).expect("day opens");
            b.ingest_tokenized(&day_b, &streams_b);
            black_box(handle.wait().clusters + b.seal().clusters);
        }
        let piped = t.elapsed() / rounds;
        eprintln!(
            "two_day_overlap: serial {serial:?}, pipelined {piped:?} ({:+.0}% wall-clock)",
            (piped.as_secs_f64() / serial.as_secs_f64() - 1.0) * 100.0
        );
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
