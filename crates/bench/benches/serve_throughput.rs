//! Wire-protocol scan throughput through a live `kizzle-serve` daemon
//! (ISSUE 9).
//!
//! The daemon, its chain, and the clients all live in this process, but
//! every scan crosses a real loopback TCP socket through the real frame
//! codec — the measured cost is tokenize + scan + framing + syscalls.
//!
//! * `pipelined_scan_256` — one iteration pushes 256 documents through
//!   one connection with a 32-request pipeline window: the per-scan wire
//!   cost the protocol adds over the in-process matcher.
//!
//! After the gated arm, a 4-connection `kizzle-loadgen` run prints the
//! saturation scans/sec headline for PERF.md (compare it against the
//! `matcher_throughput` headline: the acceptance bar is 80%).

use criterion::{criterion_group, criterion_main, Criterion};
use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
use kizzle_serve::{loadgen, LoadgenConfig, ScanClient, ServeConfig, Server};
use std::hint::black_box;
use std::path::Path;
use std::time::Duration;

/// Same three-day compile as `matcher_throughput`, persisted as a chain
/// for the daemon to tail. Returns the service for the in-process
/// baseline comparison.
fn publish_chain(dir: &Path) -> KizzleService {
    let config = KizzleConfig::fast();
    let start = SimDate::new(2014, 8, 5);
    let reference = ReferenceCorpus::seeded_from_models(start, &config);
    let mut service = KizzleService::new(config, reference).expect("fast config is valid");
    let mut date = start;
    for seed in [3u64, 4, 5] {
        let day = GraywareStream::new(StreamConfig {
            samples_per_day: 64,
            malicious_fraction: 0.5,
            seed,
            ..StreamConfig::default()
        })
        .generate_day(date);
        let _ = service.process_day(date, &day).expect("day seals");
        date = date.next();
    }
    service.save(dir).expect("chain saved");
    assert!(
        !service.signatures().is_empty(),
        "bench needs a published set"
    );
    service
}

fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("kizzle-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = publish_chain(&dir);

    let mut serve_config = ServeConfig::new(&dir);
    serve_config.workers = 4;
    let server = Server::start(&serve_config).expect("server starts");
    let addr = server.addr().to_string();

    let documents = loadgen::document_mix(7);
    let probes: Vec<&str> = documents
        .iter()
        .map(String::as_str)
        .cycle()
        .take(256)
        .collect();
    let mut client = ScanClient::connect(&addr).expect("client connects");

    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    group.bench_function("pipelined_scan_256", |b| {
        b.iter(|| {
            let verdicts = client
                .scan_batch(probes.iter().copied(), 32)
                .expect("pipelined scans");
            assert_eq!(verdicts.len(), probes.len());
            black_box(verdicts.iter().filter(|v| v.index.is_some()).count())
        })
    });
    group.finish();
    // Free the worker this connection was pinned to before saturating.
    drop(client);

    // The honest baseline for the 80% acceptance bar: the in-process
    // matcher over the *same raw documents* (tokenize + scan, no wire).
    let matcher = service.matcher();
    let baseline_start = std::time::Instant::now();
    let mut baseline_scans = 0u64;
    while baseline_start.elapsed() < Duration::from_secs(2) {
        for probe in &probes {
            black_box(matcher.scan_verdict(probe));
        }
        baseline_scans += probes.len() as u64;
    }
    let baseline_rate = baseline_scans as f64 / baseline_start.elapsed().as_secs_f64();

    // Headline for PERF.md: a saturation run against the same daemon.
    let mut load = LoadgenConfig::new(&addr);
    load.connections = 4;
    load.requests = 0;
    load.duration = Some(Duration::from_secs(2));
    load.window = 32;
    let report = loadgen::run(&load).expect("load run");
    assert_eq!(report.errors, 0, "saturation run must not drop scans");
    eprintln!(
        "serve_throughput: {:.0} scans/sec over TCP across {} connections ({} scans in {:.2}s); \
         in-process document baseline {:.0} scans/sec — wire sustains {:.0}%",
        report.scans_per_sec(),
        load.connections,
        report.scans,
        report.elapsed.as_secs_f64(),
        baseline_rate,
        100.0 * report.scans_per_sec() / baseline_rate
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
