//! Snapshot round-trip cost (ISSUE 3, extended by ISSUE 4): how much does
//! durable warm-state persistence cost to write, how fast does it come
//! back, and how does a resumed day compare against the cold rebuild it
//! replaces?
//!
//! Measurements, recorded in `BENCH_clustering.json` and discussed in
//! PERF.md §PR 3 / §PR 4:
//!
//! * `save` — [`CorpusEngine::snapshot`]: encode store + index (with every
//!   memoized neighborhood, gap-encoded) and write it atomically (temp,
//!   fsync, rename).
//! * `load` — [`CorpusEngine::resume`]: read, checksum-verify and decode
//!   the same file back into a warm engine.
//! * `save_delta` / `load_chain` — the ISSUE 4 incremental path: a warm
//!   day-2 engine persists only its churned sections as a delta against
//!   the day-1 base ([`CorpusEngine::snapshot_delta`]), and
//!   [`CorpusEngine::resume_chain`] overlays base + delta back into the
//!   identical warm engine.
//! * `encode_sections` — the in-memory codec alone (no filesystem), the
//!   arm that scales with `KIZZLE_RAYON_THREADS`: section encoders run
//!   through the rayon pool, so this measures the parallel-codec win on
//!   multi-core machines (and the absence of a loss on one core).
//! * `resume_vs_cold` — the cron-restart comparison: time back to a fully
//!   warm engine (every sample indexed, every neighborhood memoized).
//!   `resume` loads the snapshot; `cold_rebuild` re-adds every raw
//!   class-string, paying one eps-ball query per sample. Everything after
//!   that point (the day's clustering) is identical for both, so the gap
//!   here is exactly what persistence saves a restarted process.
//!
//! Bytes-on-disk per corpus size is printed alongside the timings (it is a
//! property of the input, not a distribution worth sampling).
//!
//! Set `KIZZLE_BENCH_SAMPLES` to bench a single corpus size (CI smoke uses
//! a small one); the default sweep is 1,000 and 5,000 samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::distinct_day_class_strings;
use kizzle_cluster::{CorpusEngine, DbscanParams, DistributedConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn corpus_sizes() -> Vec<usize> {
    match std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![1000, 5000],
    }
}

fn engine_config() -> DistributedConfig {
    DistributedConfig::new(4, DbscanParams::new(0.10, 4), 42)
}

/// A fully warm engine over `n` synthetic samples: everything indexed and
/// every neighborhood memoized (`insert_batch` memoizes on insert), exactly
/// the state a long-lived day-N process carries.
fn warm_engine(n: usize) -> CorpusEngine {
    let strings = distinct_day_class_strings(n, 900);
    let mut engine = CorpusEngine::new(engine_config());
    engine.add_batch(1, &strings);
    assert_eq!(
        engine.index().cached_count(),
        n,
        "fixture must dedup nothing"
    );
    engine
}

fn snap_path(n: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kizzle-bench-snapshot-{}-{n}.snap",
        std::process::id()
    ))
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_roundtrip");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    let sizes = corpus_sizes();
    let base = sizes[0];
    for n in sizes {
        let engine = warm_engine(n);
        let path = snap_path(n);

        group.bench_with_input(BenchmarkId::new("save", n), &engine, |b, engine| {
            b.iter(|| engine.snapshot(black_box(&path)).expect("snapshot write"))
        });

        engine.snapshot(&path).expect("snapshot write");
        let bytes = std::fs::metadata(&path).expect("snapshot exists").len();
        eprintln!(
            "snapshot_roundtrip/bytes_on_disk/{n}: {bytes} bytes \
             ({:.1} per sample, {} cached neighborhoods)",
            bytes as f64 / n as f64,
            engine.index().cached_count()
        );

        group.bench_with_input(BenchmarkId::new("load", n), &path, |b, path| {
            b.iter(|| {
                let (engine, report) = CorpusEngine::resume(engine_config(), black_box(path));
                assert!(report.index_restored, "bench must load warm: {report:?}");
                black_box(engine.len())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("encode_sections", n),
            &engine,
            |b, engine| b.iter(|| black_box(engine.encode_sections().len())),
        );

        // The incremental chain: day 2 churns 10% of the corpus, then
        // persists only what changed against the day-1 base.
        let churn = (n / 10).max(1);
        let mut day2 = engine.clone();
        let strings = distinct_day_class_strings(n + churn, 900);
        for id in day2.store().live_ids().into_iter().take(churn) {
            day2.remove(id);
        }
        day2.add_batch(2, &strings[n..]);
        let chain_dir =
            std::env::temp_dir().join(format!("kizzle-bench-chain-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&chain_dir).ok();
        engine.snapshot_delta(&chain_dir, 8).expect("base written");
        let manifest_path = chain_dir.join("MANIFEST");
        let base_manifest = std::fs::read(&manifest_path).expect("manifest exists");

        group.bench_with_input(BenchmarkId::new("save_delta", n), &day2, |b, day2| {
            b.iter(|| {
                // Rewind the chain record to just-after-base so every
                // iteration writes the same delta-1.
                std::fs::write(&manifest_path, &base_manifest).expect("manifest reset");
                let save = day2
                    .snapshot_delta(black_box(&chain_dir), 8)
                    .expect("delta");
                assert!(!save.wrote_base, "delta expected: {save:?}");
                black_box(save.bytes)
            })
        });

        {
            std::fs::write(&manifest_path, &base_manifest).expect("manifest reset");
            let save = day2.snapshot_delta(&chain_dir, 8).expect("delta");
            eprintln!(
                "snapshot_roundtrip/delta_bytes_on_disk/{n}: {} bytes in {} changed section(s) \
                 (10% churn vs full base above)",
                save.bytes, save.sections_written
            );
        }

        group.bench_with_input(BenchmarkId::new("load_chain", n), &chain_dir, |b, dir| {
            b.iter(|| {
                let (engine, report) = CorpusEngine::resume_chain(engine_config(), black_box(dir));
                assert!(report.is_warm(), "chain must resume warm: {report:?}");
                black_box(engine.len())
            })
        });
        std::fs::remove_dir_all(&chain_dir).ok();

        // The cron-restart comparison at the base size only: the cold arm
        // pays one eps-ball query per sample (the cost this subsystem
        // exists to avoid) and is too slow to sample at 5k.
        if n == base {
            group.bench_with_input(BenchmarkId::new("resume_warm", n), &path, |b, path| {
                b.iter(|| {
                    let (engine, report) = CorpusEngine::resume(engine_config(), black_box(path));
                    assert!(report.index_restored, "must resume warm: {report:?}");
                    assert_eq!(engine.index().cached_count(), n);
                    black_box(engine.len())
                })
            });

            let strings = distinct_day_class_strings(n, 900);
            group.bench_with_input(
                BenchmarkId::new("cold_rebuild", n),
                &strings,
                |b, strings| {
                    b.iter(|| {
                        let mut engine = CorpusEngine::new(engine_config());
                        engine.add_batch(1, strings);
                        assert_eq!(engine.index().cached_count(), n);
                        black_box(engine.len())
                    })
                },
            );
        }

        std::fs::remove_file(&path).ok();
    }

    group.finish();
}

criterion_group!(snapshot_roundtrip, bench_snapshot_roundtrip);
criterion_main!(snapshot_roundtrip);
