//! Snapshot round-trip cost (ISSUE 3): how much does durable warm-state
//! persistence cost to write, how fast does it come back, and how does a
//! resumed day compare against the cold rebuild it replaces?
//!
//! Three measurements, recorded in `BENCH_clustering.json` and discussed
//! in PERF.md §PR 3:
//!
//! * `save` — [`CorpusEngine::snapshot`]: encode store + index (with every
//!   memoized neighborhood) and write it atomically (temp, fsync, rename).
//! * `load` — [`CorpusEngine::resume`]: read, checksum-verify and decode
//!   the same file back into a warm engine.
//! * `resume_vs_cold` — the cron-restart comparison: time back to a fully
//!   warm engine (every sample indexed, every neighborhood memoized).
//!   `resume` loads the snapshot; `cold_rebuild` re-adds every raw
//!   class-string, paying one eps-ball query per sample. Everything after
//!   that point (the day's clustering) is identical for both, so the gap
//!   here is exactly what persistence saves a restarted process.
//!
//! Bytes-on-disk per corpus size is printed alongside the timings (it is a
//! property of the input, not a distribution worth sampling).
//!
//! Set `KIZZLE_BENCH_SAMPLES` to bench a single corpus size (CI smoke uses
//! a small one); the default sweep is 1,000 and 5,000 samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::distinct_day_class_strings;
use kizzle_cluster::{CorpusEngine, DbscanParams, DistributedConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn corpus_sizes() -> Vec<usize> {
    match std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![1000, 5000],
    }
}

fn engine_config() -> DistributedConfig {
    DistributedConfig::new(4, DbscanParams::new(0.10, 4), 42)
}

/// A fully warm engine over `n` synthetic samples: everything indexed and
/// every neighborhood memoized (`insert_batch` memoizes on insert), exactly
/// the state a long-lived day-N process carries.
fn warm_engine(n: usize) -> CorpusEngine {
    let strings = distinct_day_class_strings(n, 900);
    let mut engine = CorpusEngine::new(engine_config());
    engine.add_batch(1, &strings);
    assert_eq!(engine.index().cached_count(), n, "fixture must dedup nothing");
    engine
}

fn snap_path(n: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kizzle-bench-snapshot-{}-{n}.snap",
        std::process::id()
    ))
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_roundtrip");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    let sizes = corpus_sizes();
    let base = sizes[0];
    for n in sizes {
        let engine = warm_engine(n);
        let path = snap_path(n);

        group.bench_with_input(BenchmarkId::new("save", n), &engine, |b, engine| {
            b.iter(|| engine.snapshot(black_box(&path)).expect("snapshot write"))
        });

        engine.snapshot(&path).expect("snapshot write");
        let bytes = std::fs::metadata(&path).expect("snapshot exists").len();
        eprintln!(
            "snapshot_roundtrip/bytes_on_disk/{n}: {bytes} bytes \
             ({:.1} per sample, {} cached neighborhoods)",
            bytes as f64 / n as f64,
            engine.index().cached_count()
        );

        group.bench_with_input(BenchmarkId::new("load", n), &path, |b, path| {
            b.iter(|| {
                let (engine, report) = CorpusEngine::resume(engine_config(), black_box(path));
                assert!(report.index_restored, "bench must load warm: {report:?}");
                black_box(engine.len())
            })
        });

        // The cron-restart comparison at the base size only: the cold arm
        // pays one eps-ball query per sample (the cost this subsystem
        // exists to avoid) and is too slow to sample at 5k.
        if n == base {
            group.bench_with_input(
                BenchmarkId::new("resume_warm", n),
                &path,
                |b, path| {
                    b.iter(|| {
                        let (engine, report) =
                            CorpusEngine::resume(engine_config(), black_box(path));
                        assert!(report.index_restored, "must resume warm: {report:?}");
                        assert_eq!(engine.index().cached_count(), n);
                        black_box(engine.len())
                    })
                },
            );

            let strings = distinct_day_class_strings(n, 900);
            group.bench_with_input(
                BenchmarkId::new("cold_rebuild", n),
                &strings,
                |b, strings| {
                    b.iter(|| {
                        let mut engine = CorpusEngine::new(engine_config());
                        engine.add_batch(1, strings);
                        assert_eq!(engine.index().cached_count(), n);
                        black_box(engine.len())
                    })
                },
            );
        }

        std::fs::remove_file(&path).ok();
    }

    group.finish();
}

criterion_group!(snapshot_roundtrip, bench_snapshot_roundtrip);
criterion_main!(snapshot_roundtrip);
