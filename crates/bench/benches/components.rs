//! Micro-benchmarks of the individual pipeline stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::{packed_samples, tokenized};
use kizzle_cluster::distance::{edit_distance, normalized_edit_distance_bounded};
use kizzle_corpus::KitFamily;
use kizzle_signature::{generate_signature, SignatureConfig};
use kizzle_winnow::{Fingerprint, WinnowConfig};
use std::hint::black_box;
use std::time::Duration;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    g
}

fn bench_edit_distance(c: &mut Criterion) {
    let mut g = group(c, "edit_distance");
    let docs = packed_samples(KitFamily::Rig, 10, 2);
    let streams = tokenized(&docs, 800);
    let a = streams[0].class_codes();
    let b_codes = streams[1].class_codes();
    g.bench_function("full", |bench| {
        bench.iter(|| black_box(edit_distance(&a, &b_codes)))
    });
    g.bench_function("bounded_at_paper_threshold", |bench| {
        bench.iter(|| black_box(normalized_edit_distance_bounded(&a, &b_codes, 0.10)))
    });
    g.finish();
}

fn bench_winnowing(c: &mut Criterion) {
    let mut g = group(c, "winnowing");
    let payload = kizzle_corpus::KitModel::new(KitFamily::Angler)
        .reference_payload(kizzle_corpus::SimDate::new(2014, 8, 15));
    let cfg = WinnowConfig::default();
    g.bench_function("fingerprint_unpacked_payload", |b| {
        b.iter(|| black_box(Fingerprint::of_text(&payload, &cfg)).len())
    });
    let fp_a = Fingerprint::of_text(&payload, &cfg);
    let other = kizzle_corpus::KitModel::new(KitFamily::Nuclear)
        .reference_payload(kizzle_corpus::SimDate::new(2014, 8, 15));
    let fp_b = Fingerprint::of_text(&other, &cfg);
    g.bench_function("overlap", |b| b.iter(|| black_box(fp_a.overlap(&fp_b))));
    g.finish();
}

fn bench_scanning(c: &mut Criterion) {
    let mut g = group(c, "scanning");
    let samples = tokenized(&packed_samples(KitFamily::Nuclear, 26, 6), 600);
    let signature =
        generate_signature("bench.sig", &samples, &SignatureConfig::default()).expect("signature");
    let benign_doc = {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        kizzle_corpus::benign::generate_benign(
            kizzle_corpus::benign::BenignKind::PluginDetect,
            &mut rng,
        )
    };
    let benign_stream = kizzle_js::tokenize_document(&benign_doc);
    g.bench_function("match_hit", |b| {
        b.iter(|| black_box(signature.matches_stream(&samples[0])))
    });
    g.bench_function("match_miss_benign", |b| {
        b.iter(|| black_box(signature.matches_stream(&benign_stream)))
    });
    g.finish();
}

fn bench_unpackers(c: &mut Criterion) {
    let mut g = group(c, "unpackers");
    for family in KitFamily::ALL {
        let doc = packed_samples(family, 20, 1).remove(0);
        g.bench_with_input(
            BenchmarkId::new("unpack", family.short_code()),
            &doc,
            |b, doc| b.iter(|| black_box(kizzle_unpack::unpack(family, doc)).map(|p| p.len())),
        );
    }
    g.finish();
}

criterion_group!(
    components,
    bench_edit_distance,
    bench_winnowing,
    bench_scanning,
    bench_unpackers
);
criterion_main!(components);
