//! One Criterion group per paper table/figure (DESIGN.md index E1–E12),
//! plus the ablations of DESIGN.md §5. Each bench regenerates the
//! experiment at a reduced scale so the whole harness finishes in minutes;
//! the `experiments` binary produces the full-scale numbers recorded in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle::{KizzleCompiler, KizzleConfig, ReferenceCorpus};
use kizzle_bench::{class_strings, packed_samples, tokenized};
use kizzle_cluster::distance::normalized_edit_distance;
use kizzle_cluster::{dbscan, DbscanParams, DistributedClusterer, DistributedConfig};
use kizzle_corpus::{GraywareStream, KitFamily, SimDate, StreamConfig};
use kizzle_eval::similarity::similarity_over_time;
use kizzle_signature::{generate_signature, SignatureConfig};
use kizzle_winnow::{Fingerprint, WinnowConfig};
use std::hint::black_box;
use std::time::Duration;

fn configured<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    group
}

/// E1 / Fig. 2 — CVE table rendering.
fn fig02_cve_table(c: &mut Criterion) {
    let mut group = configured(c, "fig02_cve_table");
    group.bench_function("render", |b| {
        b.iter(|| black_box(kizzle_corpus::family::cve_table()))
    });
    group.finish();
}

/// E2 / Fig. 5 — evolution timeline derivation.
fn fig05_evolution(c: &mut Criterion) {
    let mut group = configured(c, "fig05_evolution");
    group.bench_function("nuclear_timeline", |b| {
        b.iter(|| black_box(kizzle_corpus::evolution::timeline(KitFamily::Nuclear)))
    });
    group.bench_function("state_on_every_day", |b| {
        b.iter(|| {
            for date in SimDate::evolution_start().range_inclusive(SimDate::evaluation_end()) {
                black_box(kizzle_corpus::KitState::on_date(KitFamily::Nuclear, date));
            }
        })
    });
    group.finish();
}

/// E3+E7+E8+E9+E11 — one day of the monthly evaluation pipeline (the full
/// month is produced by the `experiments` binary).
fn fig06_12_13_14_monthly_day(c: &mut Criterion) {
    let mut group = configured(c, "fig06_12_13_14_monthly_day");
    let date = SimDate::new(2014, 8, 14);
    let stream = GraywareStream::new(StreamConfig {
        samples_per_day: 80,
        malicious_fraction: 0.3,
        ..StreamConfig::small(5)
    });
    let day = stream.generate_day(date);
    group.bench_function("process_and_scan_one_day", |b| {
        b.iter(|| {
            let config = KizzleConfig::fast();
            let reference = ReferenceCorpus::seeded_from_models(date, &config);
            let mut compiler = KizzleCompiler::new(config, reference);
            compiler.process_day(date, &day);
            let hits = day
                .iter()
                .filter(|s| compiler.scan(&s.html).is_some())
                .count();
            black_box(hits)
        })
    });
    group.finish();
}

/// E4 / Fig. 8 — tokenization of a full landing page.
fn fig08_tokenize(c: &mut Criterion) {
    let mut group = configured(c, "fig08_tokenize");
    for family in KitFamily::ALL {
        let doc = packed_samples(family, 15, 1).remove(0);
        group.bench_with_input(
            BenchmarkId::new("tokenize_document", family.short_code()),
            &doc,
            |b, doc| b.iter(|| black_box(kizzle_js::tokenize_document(doc)).len()),
        );
    }
    group.finish();
}

/// E5 / Figs. 9–10 — signature generation from a cluster.
fn fig09_siggen(c: &mut Criterion) {
    let mut group = configured(c, "fig09_siggen");
    for family in KitFamily::ALL {
        let samples = tokenized(&packed_samples(family, 26, 8), 600);
        group.bench_with_input(
            BenchmarkId::new("generate_signature", family.short_code()),
            &samples,
            |b, samples| {
                b.iter(|| {
                    black_box(generate_signature(
                        "bench.sig",
                        samples,
                        &SignatureConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// E6 / Fig. 11 — similarity over time (one week per family).
fn fig11_similarity(c: &mut Criterion) {
    let mut group = configured(c, "fig11_similarity");
    for family in KitFamily::ALL {
        group.bench_with_input(
            BenchmarkId::new("one_week", family.short_code()),
            &family,
            |b, family| {
                b.iter(|| {
                    black_box(similarity_over_time(
                        *family,
                        SimDate::new(2014, 8, 1),
                        SimDate::new(2014, 8, 7),
                        &WinnowConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// E10 / Fig. 15 — the PluginDetect false-positive overlap.
fn fig15_fp_case(c: &mut Criterion) {
    let mut group = configured(c, "fig15_fp_case");
    group.bench_function("plugindetect_vs_nuclear", |b| {
        b.iter(|| {
            black_box(kizzle_eval::similarity::plugindetect_overlap_with_nuclear(
                1,
                &WinnowConfig::default(),
            ))
        })
    });
    group.finish();
}

/// E11 / §IV — distributed clustering performance vs partition count.
fn perf_clustering(c: &mut Criterion) {
    let mut group = configured(c, "perf_clustering");
    let mut docs = Vec::new();
    for family in KitFamily::ALL {
        docs.extend(packed_samples(family, 10, 12));
    }
    let strings = class_strings(&docs, 600);
    for partitions in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("partitions", partitions),
            &partitions,
            |b, &partitions| {
                let clusterer = DistributedClusterer::new(DistributedConfig::new(
                    partitions,
                    DbscanParams::kizzle_default(),
                    7,
                ));
                b.iter(|| {
                    black_box(clusterer.cluster_token_strings(&strings))
                        .0
                        .cluster_count()
                })
            },
        );
    }
    group.finish();
}

/// E12 / Fig. 1 — one iteration of the adversarial cycle.
fn cycle_adversarial(c: &mut Criterion) {
    let mut group = configured(c, "cycle_adversarial");
    group.bench_function("nuclear_month_4_samples_per_day", |b| {
        b.iter(|| {
            black_box(kizzle_eval::adversarial::run_cycle(
                KitFamily::Nuclear,
                4,
                3,
            ))
            .mutations
        })
    });
    group.finish();
}

/// Ablation (DESIGN.md §5): DBSCAN epsilon.
fn ablation_epsilon(c: &mut Criterion) {
    let mut group = configured(c, "ablation_epsilon");
    let mut docs = Vec::new();
    for family in [KitFamily::Nuclear, KitFamily::Angler] {
        docs.extend(packed_samples(family, 10, 10));
    }
    let strings = class_strings(&docs, 500);
    for eps in [0.05f64, 0.10, 0.20] {
        group.bench_with_input(
            BenchmarkId::new("eps", format!("{eps:.2}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let result = dbscan(&strings, &DbscanParams::new(eps, 3), |a, b| {
                        normalized_edit_distance(a, b)
                    });
                    black_box(result.cluster_count())
                })
            },
        );
    }
    group.finish();
}

/// Ablation (DESIGN.md §5): winnowing parameters.
fn ablation_winnow(c: &mut Criterion) {
    let mut group = configured(c, "ablation_winnow");
    let payload = kizzle_corpus::KitModel::new(KitFamily::Nuclear)
        .reference_payload(SimDate::new(2014, 8, 15));
    for (k, w) in [(8usize, 4usize), (12, 8), (20, 16)] {
        group.bench_with_input(
            BenchmarkId::new("k_w", format!("{k}_{w}")),
            &(k, w),
            |b, &(k, w)| {
                let cfg = WinnowConfig::new(k, w);
                b.iter(|| black_box(Fingerprint::of_text(&payload, &cfg)).len())
            },
        );
    }
    group.finish();
}

/// Ablation (DESIGN.md §5): the 200-token signature cap.
fn ablation_sigcap(c: &mut Criterion) {
    let mut group = configured(c, "ablation_sigcap");
    let samples = tokenized(&packed_samples(KitFamily::SweetOrange, 20, 8), 700);
    for cap in [50usize, 200, 400] {
        group.bench_with_input(BenchmarkId::new("max_tokens", cap), &cap, |b, &cap| {
            let config = SignatureConfig {
                max_tokens: cap,
                ..SignatureConfig::default()
            };
            b.iter(|| black_box(generate_signature("bench.sig", &samples, &config)))
        });
    }
    group.finish();
}

criterion_group!(
    experiments,
    fig02_cve_table,
    fig05_evolution,
    fig06_12_13_14_monthly_day,
    fig08_tokenize,
    fig09_siggen,
    fig11_similarity,
    fig15_fp_case,
    perf_clustering,
    cycle_adversarial,
    ablation_epsilon,
    ablation_winnow,
    ablation_sigcap
);
criterion_main!(experiments);
