//! Serving-side scan throughput through [`Matcher`] handles (ISSUE 5).
//!
//! The matcher is the side of the façade that must keep up with live
//! traffic: handles are cloned one per worker, each scan is an atomic
//! epoch check plus an uncontended cache lock, and the signature set
//! behind the `Arc` is immutable. This bench measures:
//!
//! * `scan_miss` / `scan_hit` — single-handle latency on pre-tokenized
//!   benign and malicious streams (the anchored-scan fast paths).
//! * `scan_punct` — minified-style punctuation-heavy streams where almost
//!   every token is a one-byte operator: the automaton's first-byte
//!   skip-loop rejects these before the root goto-table probe (PR 7).
//! * `parallel_scan_<W>x<K>` — one iteration scans `W × K` streams
//!   through `W` independently cloned handles on the rayon pool: the
//!   multi-worker serving loop in miniature. Scans/sec is printed to
//!   stderr for PERF.md.
//!
//! `KIZZLE_BENCH_SAMPLES` scales the probe count (default 256).

use criterion::{criterion_group, criterion_main, Criterion};
use kizzle::prelude::*;
use kizzle_bench::packed_samples;
use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
use kizzle_js::TokenStream;
use rayon::prelude::*;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn probe_count() -> usize {
    std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A service with a realistic published set: three sealed days of the
/// default stream (cumulative signatures, same-day response included).
fn compiled_service() -> KizzleService {
    let config = KizzleConfig::fast();
    let start = SimDate::new(2014, 8, 5);
    let reference = ReferenceCorpus::seeded_from_models(start, &config);
    let mut service = KizzleService::new(config, reference).expect("fast config is valid");
    let mut date = start;
    for seed in [3u64, 4, 5] {
        let day = GraywareStream::new(StreamConfig {
            samples_per_day: 64,
            malicious_fraction: 0.5,
            seed,
            ..StreamConfig::default()
        })
        .generate_day(date);
        let _ = service.process_day(date, &day).expect("day seals");
        date = date.next();
    }
    assert!(
        !service.signatures().is_empty(),
        "bench needs a published set"
    );
    service
}

fn tokenize_capped(documents: &[String], cap: usize) -> Vec<TokenStream> {
    documents
        .iter()
        .map(|d| kizzle_js::tokenize_document_capped(d, cap))
        .collect()
}

fn bench_matcher(c: &mut Criterion) {
    let service = compiled_service();
    let matcher = service.matcher();
    let cap = service.config().token_cap;

    // Probes: benign pages (misses) and packed kit pages of a signed
    // family (hits), pre-tokenized so the bench isolates scan cost.
    let n = probe_count();
    let benign: Vec<String> = {
        use kizzle_corpus::benign::{generate_benign, BenignKind};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        (0..n)
            .map(|i| {
                let kind = match i % 3 {
                    0 => BenignKind::Analytics,
                    1 => BenignKind::LibraryBoilerplate,
                    _ => BenignKind::PluginDetect,
                };
                generate_benign(kind, &mut rng)
            })
            .collect()
    };
    let miss_streams = tokenize_capped(&benign, cap);
    let hit_streams = tokenize_capped(
        &packed_samples(kizzle_corpus::KitFamily::Nuclear, 5, n.min(64)),
        cap,
    );
    // Minified-style pages: long runs of one-byte identifiers and
    // operators, the worst case for a per-token automaton probe and the
    // best case for the first-byte skip-loop.
    let punct: Vec<String> = (0..n)
        .map(|i| {
            let mut page = String::from("<html><script>");
            for k in 0..400 {
                page.push_str(match (i + k) % 6 {
                    0 => "a=b;",
                    1 => "c=(d);",
                    2 => "e&&f;",
                    3 => "g[h]=i;",
                    4 => "j!=k;",
                    _ => "l+=m;",
                });
            }
            page.push_str("</script></html>");
            page
        })
        .collect();
    let punct_streams = tokenize_capped(&punct, cap);

    let mut group = c.benchmark_group("matcher_throughput");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));

    group.bench_function("scan_miss", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % miss_streams.len();
            black_box(matcher.scan_stream(&miss_streams[i]))
        })
    });

    group.bench_function("scan_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % hit_streams.len();
            black_box(matcher.scan_stream(&hit_streams[i]))
        })
    });

    group.bench_function("scan_punct", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % punct_streams.len();
            black_box(matcher.scan_stream(&punct_streams[i]))
        })
    });

    // The multi-worker serving loop: W handles (one clone each), W × K
    // streams per iteration through the rayon pool. A 50/50 hit/miss mix
    // keeps both scan paths in the measurement. W is pinned at 4 so the
    // benchmark *name* (and with it the thresholds.json key the CI gate
    // matches on) is machine-independent; the pool width underneath is
    // still whatever the machine has.
    let workers = 4usize;
    let per_worker = (n / workers).max(16);
    let workloads: Vec<(Matcher, Vec<TokenStream>)> = (0..workers)
        .map(|w| {
            let probes: Vec<TokenStream> = (0..per_worker)
                .map(|k| {
                    if (w + k) % 2 == 0 {
                        miss_streams[(w * per_worker + k) % miss_streams.len()].clone()
                    } else {
                        hit_streams[(w * per_worker + k) % hit_streams.len()].clone()
                    }
                })
                .collect();
            (matcher.clone(), probes)
        })
        .collect();
    let scans_per_iter = workers * per_worker;

    group.bench_function(format!("parallel_scan_{workers}x{per_worker}"), |b| {
        b.iter(|| {
            let per_worker_hits: Vec<usize> = workloads
                .par_iter()
                .map(|(handle, probes)| {
                    probes
                        .iter()
                        .filter(|s| handle.scan_stream(s).is_some())
                        .count()
                })
                .collect();
            black_box(per_worker_hits.iter().sum::<usize>())
        })
    });
    group.finish();

    // Headline number for PERF.md: sustained scans/sec across the pool.
    let t = Instant::now();
    let mut rounds = 0usize;
    while t.elapsed() < Duration::from_secs(2) {
        let per_worker_hits: Vec<usize> = workloads
            .par_iter()
            .map(|(handle, probes)| {
                probes
                    .iter()
                    .filter(|s| handle.scan_stream(s).is_some())
                    .count()
            })
            .collect();
        black_box(per_worker_hits.iter().sum::<usize>());
        rounds += 1;
    }
    let scans = rounds * scans_per_iter;
    eprintln!(
        "matcher_throughput: {:.0} scans/sec across {workers} workers ({scans} scans in {:.2}s)",
        scans as f64 / t.elapsed().as_secs_f64(),
        t.elapsed().as_secs_f64()
    );
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
