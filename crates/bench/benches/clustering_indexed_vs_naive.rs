//! Indexed vs. naive clustering on a synthetic day.
//!
//! The acceptance bar for the indexed engine (ISSUE 1): on a 1,000-sample
//! synthetic day at `eps = 0.10`, `dbscan_indexed` must beat the naive
//! all-pairs `dbscan` by ≥ 5× wall-clock. The measured numbers are
//! recorded in `BENCH_clustering.json` and discussed in `PERF.md`.
//!
//! Set `KIZZLE_BENCH_SAMPLES` to scale the day up or down (default 1000;
//! CI smoke uses a smaller day).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::synthetic_day_class_strings;
use kizzle_cluster::distance::normalized_edit_distance_bounded;
use kizzle_cluster::{dbscan, dbscan_indexed, DbscanParams, NeighborIndex};
use std::hint::black_box;
use std::time::Duration;

fn day_size() -> usize {
    std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn bench_clustering(c: &mut Criterion) {
    let n = day_size();
    let day = synthetic_day_class_strings(n, 900);
    let params = DbscanParams::new(0.10, 4);

    let mut group = c.benchmark_group("clustering");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));

    group.bench_with_input(BenchmarkId::new("naive", n), &day, |b, day| {
        b.iter(|| {
            let result = dbscan(day, &params, |a, b| {
                normalized_edit_distance_bounded(a, b, params.eps).unwrap_or(1.0)
            });
            black_box(result.cluster_count())
        })
    });

    group.bench_with_input(BenchmarkId::new("indexed", n), &day, |b, day| {
        b.iter(|| {
            let (result, _) = dbscan_indexed(day, &params);
            black_box(result.cluster_count())
        })
    });
    // (`NeighborIndex::build` now memoizes every neighborhood eagerly, so
    // a build-alone arm would just duplicate `indexed`; the structural
    // cost of warm state is measured by `index_churn/warm_clone`.)

    group.finish();
}

fn bench_neighbor_query(c: &mut Criterion) {
    let n = day_size();
    let day = synthetic_day_class_strings(n, 900);
    let eps = 0.10;
    let mut index = NeighborIndex::build(&day, eps);

    let mut group = c.benchmark_group("neighbor_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    // One representative query point (a kit member, index 0). The indexed
    // side runs an external (uncached) query so the filter chain is
    // measured, not the memoized read-back.
    group.bench_function("naive_single", |b| {
        b.iter(|| {
            let hits: usize = (1..day.len())
                .filter(|&j| {
                    normalized_edit_distance_bounded(&day[0], &day[j], eps).unwrap_or(1.0) <= eps
                })
                .count();
            black_box(hits)
        })
    });

    group.bench_function("indexed_single", |b| {
        b.iter(|| black_box(index.query(&day[0]).len()))
    });

    group.finish();
}

criterion_group!(
    clustering_indexed_vs_naive,
    bench_clustering,
    bench_neighbor_query
);
criterion_main!(clustering_indexed_vs_naive);
