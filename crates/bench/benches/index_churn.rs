//! Incremental index maintenance vs full rebuild under daily churn.
//!
//! The acceptance bar for the incremental engine (ISSUE 2): day-over-day
//! maintenance of a `NeighborIndex` — remove the churned fraction, insert
//! its replacement, and leave every neighborhood memoized — must beat
//! rebuilding the index and re-querying every neighborhood from scratch,
//! at ≥ 1,000 samples/day with ≤ 20% churn. The measured numbers are
//! recorded in `BENCH_clustering.json` and discussed in PERF.md.
//!
//! Set `KIZZLE_BENCH_SAMPLES` to scale the day up or down (default 1000;
//! CI smoke uses a smaller day). `KIZZLE_BENCH_CHURN` sets the churned
//! fraction (default 0.20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::synthetic_day_class_strings;
use kizzle_cluster::{NeighborIndex, SampleId};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const EPS: f64 = 0.10;

fn day_size() -> usize {
    std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn churn_fraction() -> f64 {
    std::env::var("KIZZLE_BENCH_CHURN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20)
}

fn bench_index_churn(c: &mut Criterion) {
    let n = day_size();
    let churn = ((n as f64) * churn_fraction()).round() as usize;
    // One deterministic pool: day 0 is the first n strings, the churned-in
    // replacements come from the tail (distinct generator seeds).
    let pool = synthetic_day_class_strings(n + churn, 900);
    let day0 = &pool[..n];
    // Day 1 = day 0 with exactly `churn` samples replaced, evenly spread
    // across the corpus so every family sees some churn (`r * n / churn`
    // is strictly increasing for churn <= n, so the positions are
    // distinct and the full configured fraction really churns).
    let mut day1: Vec<Vec<u8>> = day0.to_vec();
    let replaced: Vec<usize> = (0..churn).map(|r| r * n / churn.max(1)).collect();
    for (r, &pos) in replaced.iter().enumerate() {
        day1[pos] = pool[n + r].clone();
    }

    // Warm starting point shared by every incremental iteration: day 0
    // fully indexed and memoized.
    let mut warm = NeighborIndex::new(EPS);
    warm.insert_batch(
        day0.iter()
            .enumerate()
            .map(|(i, s)| (SampleId::new(i as u32), Arc::from(&s[..])))
            .collect(),
    );
    let _ = warm.take_stats();

    let mut group = c.benchmark_group("index_churn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));

    // Baseline: rebuild the whole index for day 1 and compute every
    // neighborhood (what the stateless pipeline did each day).
    group.bench_with_input(BenchmarkId::new("rebuild_full", n), &day1, |b, day1| {
        b.iter(|| {
            let mut index = NeighborIndex::new(EPS);
            index.insert_batch(
                day1.iter()
                    .enumerate()
                    .map(|(i, s)| (SampleId::new(i as u32), Arc::from(&s[..])))
                    .collect(),
            );
            black_box(index.len())
        })
    });

    // Incremental: start from day 0's warm index, remove the churned ids,
    // insert their replacements; every surviving neighborhood stays
    // memoized, only the churned fraction is queried. The clone of the
    // warm index is part of the measured cost (a rebuild needs no
    // starting state), and it still wins.
    group.bench_with_input(
        BenchmarkId::new(format!("incremental_{churn}churned"), n),
        &warm,
        |b, warm| {
            b.iter(|| {
                let mut index = warm.clone();
                for &pos in &replaced {
                    index.remove(SampleId::new(pos as u32));
                }
                index.insert_batch(
                    replaced
                        .iter()
                        .enumerate()
                        .map(|(r, &pos)| (SampleId::new(pos as u32), Arc::from(&pool[n + r][..])))
                        .collect(),
                );
                black_box(index.len())
            })
        },
    );

    // The clone alone, to show how little of the incremental time is
    // state duplication.
    group.bench_with_input(BenchmarkId::new("warm_clone", n), &warm, |b, warm| {
        b.iter(|| black_box(warm.clone().len()))
    });

    group.finish();
}

criterion_group!(index_churn, bench_index_churn);
criterion_main!(index_churn);
