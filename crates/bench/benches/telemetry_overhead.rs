//! Telemetry overhead gate (ISSUE 8): scanning with the `kizzle-telemetry`
//! gate **enabled** must cost at most a few percent over **disabled** —
//! the counters are plain locals committed through thread-local batched
//! fronts once per scan, so the hot loop's extra work is one relaxed load
//! and a handful of predicted branches.
//!
//! This is a hand-rolled harness rather than a Criterion group because
//! the gated quantity is a *ratio* of two measurements taken in the same
//! process: alternating rounds (to decorrelate frequency/thermal drift),
//! min-of-rounds per mode (the classic noise floor estimator), then one
//! synthetic `telemetry_overhead/enabled_over_disabled_pct` line appended
//! to `$KIZZLE_BENCH_OUT` in the same JSON shape the vendored Criterion
//! emits — `bench_check` gates it like any other arm, with the ceiling
//! expressed in percentage points instead of nanoseconds.

use kizzle_corpus::benign::{generate_benign, BenignKind};
use kizzle_signature::{CharClass, Element, Signature, SignatureSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

const SIGNATURES: usize = 5_000;
const ITERS_PER_ROUND: usize = 1_500;
const ROUNDS: usize = 12;

fn synthetic_signature(i: usize) -> Signature {
    Signature::new(
        format!("SYN.sig{i}"),
        vec![
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 5,
                max_len: 8,
            },
            Element::Literal("=".to_string()),
            Element::Literal(format!("decoder_{i:04}")),
            Element::Literal("[".to_string()),
            Element::Class {
                class: CharClass::AlphaNum,
                min_len: 3,
                max_len: 6,
            },
            Element::Literal("]".to_string()),
        ],
        2,
    )
}

/// One workload unit: scan four realistic benign pages (all misses) and
/// one matching document — the mix a deployed matcher sees.
fn workload(set: &SignatureSet, streams: &[kizzle_js::TokenStream]) -> usize {
    let mut hits = 0usize;
    for stream in streams {
        hits += usize::from(set.scan_stream(stream).is_some());
    }
    hits
}

/// Mean ns per workload over one round of iterations.
fn round_ns(set: &SignatureSet, streams: &[kizzle_js::TokenStream]) -> f64 {
    let start = Instant::now();
    for _ in 0..ITERS_PER_ROUND {
        black_box(workload(black_box(set), black_box(streams)));
    }
    start.elapsed().as_nanos() as f64 / ITERS_PER_ROUND as f64
}

fn main() {
    let mut set = SignatureSet::new();
    for i in 0..SIGNATURES {
        set.add(format!("Family{}", i % 8), synthetic_signature(i));
    }
    set.seal();

    let mut streams: Vec<_> = (0..4u64)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(i);
            let kind = BenignKind::ALL[i as usize % BenignKind::ALL.len()];
            kizzle_js::tokenize_document(&generate_benign(kind, &mut rng))
        })
        .collect();
    let mid = SIGNATURES / 2;
    let hit_doc = format!(
        r#"<script>var pre = 1; aB3xY = decoder_{mid:04}["k3x"] = 2; var post = 3;</script>"#
    );
    streams.push(kizzle_js::tokenize_document(&hit_doc));
    assert_eq!(workload(&set, &streams), 1, "exactly the hit doc matches");

    // Warm both modes (registry registration, TLS init, caches) before
    // any timed round.
    for enabled in [false, true, false, true] {
        kizzle_telemetry::set_enabled(enabled);
        black_box(workload(&set, &streams));
    }

    let mut best_disabled = f64::INFINITY;
    let mut best_enabled = f64::INFINITY;
    for _ in 0..ROUNDS {
        kizzle_telemetry::set_enabled(false);
        best_disabled = best_disabled.min(round_ns(&set, &streams));
        kizzle_telemetry::set_enabled(true);
        best_enabled = best_enabled.min(round_ns(&set, &streams));
    }
    kizzle_telemetry::set_enabled(false);
    kizzle_signature::flush_scan_counters();

    let pct = ((best_enabled - best_disabled) / best_disabled * 100.0).max(0.0);
    println!(
        "telemetry_overhead: disabled {best_disabled:.0}ns, enabled {best_enabled:.0}ns \
         per workload -> {pct:.2}% overhead (min of {ROUNDS} alternating rounds)"
    );

    if let Ok(path) = std::env::var("KIZZLE_BENCH_OUT") {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open KIZZLE_BENCH_OUT");
        // Informational arms (ungated) plus the gated ratio, in the same
        // line shape the vendored Criterion writes.
        for (name, value) in [
            ("telemetry_overhead/disabled", best_disabled),
            ("telemetry_overhead/enabled", best_enabled),
            ("telemetry_overhead/enabled_over_disabled_pct", pct),
        ] {
            writeln!(file, "{{\"name\":\"{name}\",\"mean_ns\":{value:.3}}}")
                .expect("write KIZZLE_BENCH_OUT");
        }
    }
}
