//! The reduce epilogue's final prototype pass, before/after ISSUE 5.
//!
//! PR 4 stamped `finish_reduce`'s `compute_prototypes` as
//! `prototype_time` and found it dominating large-cluster days: a serial
//! loop over clusters, each a capped all-pairs medoid scan. ISSUE 5
//! routes it through the rayon pool with early-abandoned partial sums —
//! answer-identical (asserted below), so the gain is pure.
//!
//! * `serial_allpairs` — the PR 4 behavior, kept as the ungated baseline.
//! * `parallel_early_abandon` — `Clustering::compute_prototypes` as
//!   shipped (gated in `thresholds.json`).
//!
//! `KIZZLE_BENCH_SAMPLES` scales the day (default 1000).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kizzle_bench::synthetic_day_class_strings;
use kizzle_cluster::distance::normalized_edit_distance_bounded;
use kizzle_cluster::{DbscanParams, DistributedClusterer, DistributedConfig};
use std::hint::black_box;
use std::time::Duration;

const EPS: f64 = 0.10;

fn day_size() -> usize {
    std::env::var("KIZZLE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// The pre-ISSUE-5 pass: serial over clusters, exhaustive capped all-pairs
/// medoid per cluster (no early abandon).
fn serial_allpairs(
    members_per_cluster: &[Vec<usize>],
    samples: &[Vec<u8>],
    distance: impl Fn(&Vec<u8>, &Vec<u8>) -> f64,
) -> Vec<Option<usize>> {
    members_per_cluster
        .iter()
        .map(|members| {
            if members.is_empty() {
                return None;
            }
            if members.len() == 1 {
                return Some(members[0]);
            }
            let cap = 64;
            let pool: Vec<usize> = if members.len() > cap {
                let step = members.len() / cap;
                members.iter().step_by(step.max(1)).copied().collect()
            } else {
                members.clone()
            };
            let mut best = pool[0];
            let mut best_sum = f64::INFINITY;
            for &cand in &pool {
                let sum: f64 = pool
                    .iter()
                    .filter(|&&other| other != cand)
                    .map(|&other| distance(&samples[cand], &samples[other]))
                    .sum();
                if sum < best_sum {
                    best_sum = sum;
                    best = cand;
                }
            }
            Some(best)
        })
        .collect()
}

fn bench_prototype_pass(c: &mut Criterion) {
    let n = day_size();
    let samples = synthetic_day_class_strings(n, 900);
    let distance =
        |a: &Vec<u8>, b: &Vec<u8>| normalized_edit_distance_bounded(a, b, EPS).unwrap_or(1.0);

    // One clustered day's member lists — the exact input finish_reduce
    // hands to the prototype pass.
    let cfg = DistributedConfig::new(4, DbscanParams::new(EPS, 4), 0);
    let (clustering, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
    assert!(clustering.cluster_count() > 0, "day must form clusters");
    let members: Vec<Vec<usize>> = clustering
        .clusters
        .iter()
        .map(|cl| cl.members.clone())
        .collect();

    // Answer-identity: the shipped pass picks the same medoids the
    // exhaustive serial scan does.
    let want = serial_allpairs(&members, &samples, distance);
    let mut check = kizzle_cluster::Clustering::from_members(
        members.clone(),
        clustering.noise.clone(),
        samples.len(),
    );
    check.compute_prototypes(&samples, distance);
    let got: Vec<Option<usize>> = check.clusters.iter().map(|cl| cl.prototype).collect();
    assert_eq!(want, got, "optimized pass changed a medoid");

    let mut group = c.benchmark_group("prototype");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));

    group.bench_with_input(
        BenchmarkId::new("serial_allpairs", n),
        &members,
        |b, members| {
            b.iter(|| black_box(serial_allpairs(members, &samples, distance)));
        },
    );

    group.bench_with_input(
        BenchmarkId::new("parallel_early_abandon", n),
        &members,
        |b, members| {
            b.iter(|| {
                let mut clustering = kizzle_cluster::Clustering::from_members(
                    members.clone(),
                    Vec::new(),
                    samples.len(),
                );
                clustering.compute_prototypes(&samples, distance);
                black_box(clustering.clusters.last().and_then(|cl| cl.prototype))
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_prototype_pass);
criterion_main!(benches);
