//! Property-based tests for edit distance and clustering invariants.

use kizzle_cluster::distance::{
    edit_distance, edit_distance_bounded, normalized_edit_distance,
    normalized_edit_distance_bounded,
};
use kizzle_cluster::{dbscan, Clustering, DbscanParams, DistributedClusterer, DistributedConfig};
use proptest::prelude::*;

fn token_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..80)
}

proptest! {
    /// Edit distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(a in token_string(), b in token_string(), c in token_string()) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }

    /// Edit distance is bounded by the longer length and at least the length
    /// difference.
    #[test]
    fn edit_distance_bounds(a in token_string(), b in token_string()) {
        let d = edit_distance(&a, &b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    /// The bounded variant agrees with the exact distance whenever it
    /// returns a value, and only returns None when the distance exceeds the
    /// bound.
    #[test]
    fn bounded_edit_distance_correct(a in token_string(), b in token_string(), max in 0usize..40) {
        let exact = edit_distance(&a, &b);
        match edit_distance_bounded(&a, &b, max) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= max);
            }
            None => prop_assert!(exact > max),
        }
    }

    /// Normalized distance is within [0,1] and its bounded variant agrees.
    #[test]
    fn normalized_distance_consistent(a in token_string(), b in token_string()) {
        let d = normalized_edit_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        match normalized_edit_distance_bounded(&a, &b, 0.25) {
            Some(bd) => prop_assert!((bd - d).abs() < 1e-12),
            None => prop_assert!(d > 0.25 - 1e-12),
        }
    }

    /// DBSCAN assigns every sample exactly one label and the derived
    /// Clustering is a partition of the input.
    #[test]
    fn dbscan_produces_a_partition(samples in prop::collection::vec(token_string(), 0..25)) {
        let params = DbscanParams::new(0.10, 2);
        let result = dbscan(&samples, &params, |a, b| normalized_edit_distance(a, b));
        prop_assert_eq!(result.labels().len(), samples.len());
        let clustering = Clustering::from_dbscan(&result);
        prop_assert!(clustering.is_partition());
    }

    /// Distributed clustering always yields a partition of the input and is
    /// deterministic for a fixed seed, regardless of partition count.
    #[test]
    fn distributed_clustering_partition_and_deterministic(
        samples in prop::collection::vec(token_string(), 0..20),
        partitions in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = DistributedConfig::new(partitions, DbscanParams::new(0.10, 2), seed);
        let clusterer = DistributedClusterer::new(cfg);
        let (a, _) = clusterer.cluster_token_strings(&samples);
        prop_assert!(a.is_partition());
        let (b, _) = clusterer.cluster_token_strings(&samples);
        prop_assert_eq!(a, b);
    }
}
