//! Property-based equivalence tests for the incremental corpus engine.
//!
//! Two contracts keep the warm multi-day path honest:
//!
//! 1. An incrementally maintained [`NeighborIndex`] — any random
//!    interleaving of inserts and removes — answers every neighborhood
//!    query identically to an index built fresh from the surviving
//!    samples (and to brute force over the accept predicate).
//! 2. A [`CorpusEngine`] threading warm state across simulated days
//!    (carry-over + churn + retirement) clusters each day byte-identically
//!    to a cold one-shot [`DistributedClusterer`] run over that day's
//!    samples.

use kizzle_cluster::distance::normalized_edit_distance_bounded;
use kizzle_cluster::{
    CorpusEngine, DbscanParams, DistributedClusterer, DistributedConfig, NeighborIndex, SampleId,
};
use proptest::prelude::*;
use std::sync::Arc;

const EPS: f64 = 0.10;

fn token_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..80)
}

/// Brute-force eps-ball over a live set of `(raw_id, bytes)` pairs.
fn brute_ball(live: &[(u32, Vec<u8>)], raw: u32) -> Vec<u32> {
    let query = &live.iter().find(|(r, _)| *r == raw).expect("live id").1;
    let mut out: Vec<u32> = live
        .iter()
        .filter(|(r, s)| {
            *r != raw && normalized_edit_distance_bounded(query, s, EPS).unwrap_or(1.0) <= EPS
        })
        .map(|(r, _)| *r)
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    /// Random interleavings of insert/remove leave the maintained index
    /// answering exactly like a freshly built one.
    #[test]
    fn interleaved_insert_remove_matches_fresh_build(
        samples in prop::collection::vec(token_string(), 1..24),
        ops in prop::collection::vec(any::<u16>(), 1..48),
    ) {
        let mut index = NeighborIndex::new(EPS);
        let mut live: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut next_sample = 0usize;
        let mut next_id = 0u32;
        for &op in &ops {
            // Even ops insert (while samples remain), odd ops remove (while
            // anything is live); fall through to the other op otherwise.
            let insert = (op % 2 == 0 && next_sample < samples.len()) || live.is_empty();
            if insert {
                if next_sample >= samples.len() {
                    continue;
                }
                let sample = samples[next_sample].clone();
                next_sample += 1;
                index.insert(SampleId::new(next_id), Arc::from(&sample[..]));
                live.push((next_id, sample));
                next_id += 1;
            } else {
                let victim = (op as usize / 2) % live.len();
                let (raw, _) = live.swap_remove(victim);
                prop_assert!(index.remove(SampleId::new(raw)));
            }
        }
        prop_assert_eq!(index.len(), live.len());

        // A fresh index over the survivors, under the same ids.
        let mut fresh = NeighborIndex::new(EPS);
        fresh.insert_batch(
            live.iter()
                .map(|(raw, s)| (SampleId::new(*raw), Arc::from(&s[..])))
                .collect(),
        );
        for &(raw, _) in &live {
            let maintained = index.neighbors(SampleId::new(raw));
            let rebuilt = fresh.neighbors(SampleId::new(raw));
            prop_assert_eq!(&maintained, &rebuilt, "id {}", raw);
            let brute = brute_ball(&live, raw);
            let maintained_raw: Vec<u32> = maintained.into_iter().map(SampleId::raw).collect();
            prop_assert_eq!(maintained_raw, brute, "id {} vs brute force", raw);
        }
    }

    /// A warm engine run over days with carry-over, churn, and retirement
    /// produces day clusterings identical to cold one-shot runs.
    #[test]
    fn warm_multi_day_matches_cold_batches(
        pool in prop::collection::vec(token_string(), 4..28),
        partitions in 1usize..4,
        seed in any::<u64>(),
        min_points in 1usize..4,
    ) {
        let cfg = DistributedConfig::new(
            partitions,
            DbscanParams::new(EPS, min_points),
            seed,
        );
        let mut engine = CorpusEngine::new(cfg);
        let clusterer = DistributedClusterer::new(cfg);

        // Sliding window over the pool: consecutive days overlap heavily,
        // like the paper's grayware corpora.
        let day_len = (pool.len() / 2).max(2);
        let days = 3usize;
        for day in 0..days {
            let start = (day * day_len) / 3;
            let end = (start + day_len).min(pool.len());
            let day_samples: Vec<Vec<u8>> = pool[start..end].to_vec();
            let stamp = day as u64 + 1;
            // Retention window of 2 days.
            engine.retire_older_than(stamp.saturating_sub(1));
            let ids = engine.add_batch(stamp, &day_samples);
            let (warm, warm_stats) = engine.cluster_day(&ids);
            let (cold, _) = clusterer.cluster_token_strings(&day_samples);
            prop_assert_eq!(&warm, &cold, "day {}", day);
            prop_assert!(warm.is_partition());
            prop_assert!(
                warm_stats.index.queries + warm_stats.index.cache_hits > 0
                    || day_samples.is_empty()
            );
        }
    }
}
