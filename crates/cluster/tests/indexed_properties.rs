//! Property-based equivalence tests for the indexed clustering engine.
//!
//! The whole point of the `NeighborIndex` + `dbscan_indexed` stack is that
//! it is *only* faster: for any corpus it must reproduce the naive
//! engine's answers exactly. These properties pin that down at every
//! layer — distance kernel, neighbor queries, single-machine DBSCAN, and
//! the distributed driver.

use kizzle_cluster::distance::{
    edit_distance, edit_distance_bitparallel_bounded, edit_distance_bounded,
    normalized_edit_distance_bounded, BitParallelPattern,
};
use kizzle_cluster::{
    dbscan, dbscan_indexed, DbscanParams, DistributedClusterer, DistributedConfig, Label,
    NeighborIndex, SampleId,
};
use proptest::prelude::*;

fn token_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..80)
}

/// Longer strings than `token_string`, crossing the 64-symbol block
/// boundary of the bit-parallel kernel.
fn long_token_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..200)
}

/// A corpus with deliberate near-duplicate structure, so clusters actually
/// form instead of everything being noise.
fn clustered_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(token_string(), 0..24)
}

/// The partition of `0..n` induced by DBSCAN labels: for every pair of
/// samples, whether they share a cluster. Comparing partitions (rather
/// than raw labels) is what "equivalent up to cluster-id renaming" means.
fn co_membership(labels: &[Label]) -> Vec<Vec<bool>> {
    let n = labels.len();
    let mut same = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            same[i][j] = match (labels[i], labels[j]) {
                (Label::Cluster(a), Label::Cluster(b)) => a == b,
                _ => false,
            };
        }
    }
    same
}

proptest! {
    /// The bit-parallel bounded distance agrees with the exact distance
    /// everywhere within the bound and only reports None beyond it —
    /// the same contract `edit_distance_bounded` has.
    #[test]
    fn bitparallel_distance_correct(
        a in long_token_string(),
        b in long_token_string(),
        max in 0usize..60,
    ) {
        let exact = edit_distance(&a, &b);
        match edit_distance_bitparallel_bounded(&a, &b, max) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= max);
            }
            None => prop_assert!(exact > max),
        }
        // And it agrees with the banded reference implementation verdict.
        prop_assert_eq!(
            edit_distance_bitparallel_bounded(&a, &b, max),
            edit_distance_bounded(&a, &b, max)
        );
    }

    /// A reused pattern answers like the one-off helper.
    #[test]
    fn pattern_reuse_is_sound(
        query in long_token_string(),
        texts in prop::collection::vec(long_token_string(), 0..8),
        max in 0usize..40,
    ) {
        let pattern = BitParallelPattern::new(&query);
        for text in &texts {
            let expected = if query.len() < text.len() {
                edit_distance_bitparallel_bounded(&query, text, max)
            } else {
                // The helper puts the shorter string as the pattern; the
                // distance is symmetric so both must agree regardless.
                edit_distance_bitparallel_bounded(text, &query, max)
            };
            prop_assert_eq!(pattern.distance_bounded(text, max), expected);
        }
    }

    /// Index-driven neighbor queries return exactly the brute-force
    /// eps-neighborhood, for the paper's eps and a coarser one.
    #[test]
    fn index_neighbors_match_brute_force(samples in clustered_corpus()) {
        for eps in [0.10f64, 0.25] {
            let mut index = NeighborIndex::build(&samples, eps);
            for i in 0..samples.len() {
                let brute: Vec<usize> = (0..samples.len())
                    .filter(|&j| {
                        j != i
                            && normalized_edit_distance_bounded(&samples[i], &samples[j], eps)
                                .unwrap_or(1.0)
                                <= eps
                    })
                    .collect();
                let got: Vec<usize> = index
                    .neighbors(SampleId::new(i as u32))
                    .into_iter()
                    .map(|id| id.raw() as usize)
                    .collect();
                prop_assert_eq!(got, brute, "eps={} i={}", eps, i);
            }
        }
    }

    /// `dbscan_indexed` is label-identical to the naive `dbscan` with the
    /// bounded distance — not just equivalent up to renaming.
    #[test]
    fn indexed_dbscan_identical_to_naive(
        samples in clustered_corpus(),
        min_points in 1usize..5,
    ) {
        let params = DbscanParams::new(0.10, min_points);
        let naive = dbscan(&samples, &params, |a, b| {
            normalized_edit_distance_bounded(a, b, params.eps).unwrap_or(1.0)
        });
        let (indexed, stats) = dbscan_indexed(&samples, &params);
        prop_assert_eq!(&indexed, &naive);
        prop_assert_eq!(stats.queries, samples.len());

        // Belt and braces: the induced partitions agree too (this is the
        // "up to cluster-id renaming" formulation, which identical labels
        // imply).
        prop_assert_eq!(
            co_membership(indexed.labels()),
            co_membership(naive.labels())
        );
    }

    /// The distributed token-string driver (indexed per-partition engine)
    /// produces the same clustering as the generic callback driver the
    /// seed used, for any partition count and seed, given the same
    /// content-keyed partition assignment.
    #[test]
    fn distributed_indexed_matches_generic(
        samples in prop::collection::vec(token_string(), 0..20),
        partitions in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = DistributedConfig::new(partitions, DbscanParams::new(0.10, 2), seed);
        let clusterer = DistributedClusterer::new(cfg);
        let (indexed, _) = clusterer.cluster_token_strings(&samples);
        let keys: Vec<u64> = samples.iter().map(|s| kizzle_cluster::partition_key(s)).collect();
        let (generic, _) = clusterer.cluster_with_keys(&samples, &keys, |a: &Vec<u8>, b: &Vec<u8>| {
            normalized_edit_distance_bounded(a, b, 0.10).unwrap_or(1.0)
        });
        prop_assert_eq!(&indexed, &generic);
        prop_assert!(indexed.is_partition());
    }
}
