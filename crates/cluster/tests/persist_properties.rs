//! Property-based round-trip and corruption tests for warm-state
//! persistence (ISSUE 3).
//!
//! Contracts:
//!
//! 1. **Round trip is identity.** A [`CorpusStore`] or [`NeighborIndex`]
//!    (including its memoized neighborhoods) written through the snapshot
//!    codec and read back behaves exactly like the original: same live
//!    ids, same data and stamps, same future id allocation, same cached
//!    answers with zero recomputed queries.
//! 2. **A resumed engine clusters identically.** Snapshot → resume →
//!    `cluster_day` equals the original engine's answer on the same view.
//! 3. **Corruption degrades, never panics.** Any single flipped byte or
//!    truncation of an engine snapshot yields a usable engine — warm,
//!    rebuilt-from-store, or cold — and never a wrong clustering: whatever
//!    survives still matches a cold run over the same samples.

use kizzle_cluster::{
    CorpusEngine, CorpusStore, DbscanParams, DistributedClusterer, DistributedConfig,
    NeighborIndex, SampleId,
};
use kizzle_snapshot::{Decoder, Encoder, Snapshot, SnapshotBuilder};
use proptest::prelude::*;
use std::sync::Arc;

const EPS: f64 = 0.10;

fn token_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 0..80)
}

proptest! {
    /// Store round trip: live state, dedup behavior and slot-reuse order
    /// all survive.
    #[test]
    fn store_roundtrips_after_random_churn(
        samples in prop::collection::vec(token_string(), 1..20),
        ops in prop::collection::vec(any::<u16>(), 1..40),
    ) {
        let mut store = CorpusStore::new();
        let mut next = 0usize;
        let mut stamp = 0u64;
        for &op in &ops {
            stamp += 1;
            if op % 3 != 0 || store.is_empty() {
                store.add(stamp, &samples[next % samples.len()]);
                next += 1;
            } else {
                let live = store.live_ids();
                let victim = live[(op as usize / 3) % live.len()];
                store.remove(victim);
            }
        }

        let mut enc = Encoder::new();
        store.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut restored = CorpusStore::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();

        prop_assert_eq!(restored.len(), store.len());
        prop_assert_eq!(restored.live_ids(), store.live_ids());
        for id in store.live_ids() {
            prop_assert_eq!(restored.get(id), store.get(id));
            prop_assert_eq!(restored.stamp(id), store.stamp(id));
        }
        // Future behavior matches too: the same novel adds allocate the
        // same ids (free-list order), and dedup still touches.
        for (i, probe) in [&b"probe-a"[..], &b"probe-b"[..], &b"probe-a"[..]]
            .iter()
            .enumerate()
        {
            let (id_orig, reused_orig) = store.add(100 + i as u64, probe);
            let (id_back, reused_back) = restored.add(100 + i as u64, probe);
            prop_assert_eq!(id_orig, id_back);
            prop_assert_eq!(reused_orig, reused_back);
        }
    }

    /// Index round trip: every memoized neighborhood comes back verbatim
    /// and answers without recomputation; unmemoized entries still answer
    /// exactly.
    #[test]
    fn index_roundtrips_including_cached_neighborhoods(
        samples in prop::collection::vec(token_string(), 1..20),
        cache_mask in any::<u32>(),
    ) {
        let mut index = NeighborIndex::new(EPS);
        let live: Vec<(u32, Vec<u8>)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.clone()))
            .collect();
        index.insert_batch(
            live.iter()
                .map(|(raw, s)| (SampleId::new(*raw), Arc::from(&s[..])))
                .collect(),
        );
        let _ = index.take_stats();
        // Churn a masked subset (remove + reinsert) so the surviving
        // caches have been maintained — spliced and pruned — rather than
        // freshly built, which is the state a warm engine actually saves.
        let uncached: Vec<u32> = live
            .iter()
            .map(|(raw, _)| *raw)
            .filter(|raw| cache_mask & (1 << (raw % 32)) == 0)
            .collect();
        for &raw in &uncached {
            index.remove(SampleId::new(raw));
        }
        for &raw in &uncached {
            let data = &live.iter().find(|(r, _)| *r == raw).unwrap().1;
            index.insert(SampleId::new(raw), Arc::from(&data[..]));
        }
        let _ = index.take_stats();

        let mut enc = Encoder::new();
        index.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut restored = NeighborIndex::decode_from(&mut dec, |id| {
            live.iter()
                .find(|(raw, _)| *raw == id.raw())
                .map(|(_, s)| Arc::from(&s[..]))
        })
        .unwrap();
        dec.finish().unwrap();

        prop_assert_eq!(restored.len(), index.len());
        prop_assert_eq!(restored.cached_count(), index.cached_count());
        // Cached entries answer from cache on both sides…
        for (raw, _) in &live {
            let a = index.neighbors(SampleId::new(*raw));
            let b = restored.neighbors(SampleId::new(*raw));
            prop_assert_eq!(a, b, "id {}", raw);
        }
        // …and the restored side paid queries only for what the original
        // would also have to compute.
        let stats_orig = index.take_stats();
        let stats_back = restored.take_stats();
        prop_assert_eq!(stats_back.queries, stats_orig.queries);
        prop_assert_eq!(stats_back.cache_hits, stats_orig.cache_hits);
    }

    /// Engine snapshot → resume → cluster equals the original engine (and
    /// therefore the cold run) on the same day view.
    #[test]
    fn resumed_engine_clusters_like_the_original(
        pool in prop::collection::vec(token_string(), 4..24),
        partitions in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = DistributedConfig::new(partitions, DbscanParams::new(EPS, 2), seed);
        let day_len = (pool.len() / 2).max(2);
        let day1: Vec<Vec<u8>> = pool[..day_len].to_vec();
        let day2: Vec<Vec<u8>> = pool[pool.len() - day_len..].to_vec();

        let mut engine = CorpusEngine::new(cfg);
        let ids1 = engine.add_batch(1, &day1);
        let (_, _) = engine.cluster_day(&ids1);

        let mut builder = SnapshotBuilder::new();
        engine.write_sections(&mut builder);
        let snapshot = Snapshot::from_bytes(&builder.to_bytes()).unwrap();
        let (mut resumed, report) = CorpusEngine::resume_from_sections(cfg, &snapshot);
        prop_assert!(report.is_warm(), "report: {:?}", report);

        let ids2 = engine.add_batch(2, &day2);
        let ids2_resumed = resumed.add_batch(2, &day2);
        prop_assert_eq!(&ids2, &ids2_resumed);
        let (want, _) = engine.cluster_day(&ids2);
        let (got, _) = resumed.cluster_day(&ids2_resumed);
        prop_assert_eq!(want, got);
    }

    /// Any single byte flip (or truncation) of an engine snapshot resumes
    /// without panicking, and whatever state survives still clusters a
    /// fresh day exactly like a cold run.
    #[test]
    fn corrupted_engine_snapshots_degrade_gracefully(
        pool in prop::collection::vec(token_string(), 4..16),
        damage_at in any::<u32>(),
        flip in any::<u8>(),
        truncate in any::<bool>(),
    ) {
        let cfg = DistributedConfig::new(2, DbscanParams::new(EPS, 2), 7);
        let mut engine = CorpusEngine::new(cfg);
        let ids = engine.add_batch(1, &pool);
        let (_, _) = engine.cluster_day(&ids);

        let mut builder = SnapshotBuilder::new();
        engine.write_sections(&mut builder);
        let mut bytes = builder.to_bytes();
        let at = (damage_at as usize) % bytes.len();
        if truncate {
            bytes.truncate(at);
        } else {
            bytes[at] ^= flip | 1; // always a real change
        }

        let (mut resumed, report) = match Snapshot::from_bytes(&bytes) {
            Ok(snapshot) => CorpusEngine::resume_from_sections(cfg, &snapshot),
            Err(_) => (CorpusEngine::new(cfg), Default::default()),
        };
        let _ = report;
        // The resumed engine is usable regardless of what was lost: a
        // fresh day through it clusters exactly like a cold run.
        let day: Vec<Vec<u8>> = pool.iter().rev().cloned().collect();
        let stamp = 2u64;
        resumed.retire_older_than(stamp); // clear whatever survived
        let day_ids = resumed.add_batch(stamp, &day);
        let (got, _) = resumed.cluster_day(&day_ids);
        let (want, _) = DistributedClusterer::new(cfg).cluster_token_strings(&day);
        prop_assert_eq!(got, want);
    }

    /// ISSUE 4 acceptance: resuming a base→delta chain is byte-identical
    /// to resuming one full snapshot of the same (churned) engine — same
    /// ids, same cached answers with zero recomputed queries, same
    /// clustering on a fresh day.
    #[test]
    fn chain_resume_equals_full_snapshot_resume(
        pool in prop::collection::vec(token_string(), 6..24),
        churn_mask in any::<u32>(),
        days in 1usize..4,
    ) {
        let cfg = DistributedConfig::new(2, DbscanParams::new(EPS, 2), 11);
        let dir = std::env::temp_dir().join(format!(
            "kizzle-persist-chain-{}-{churn_mask}-{days}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let mut engine = CorpusEngine::new(cfg);
        let ids = engine.add_batch(0, &pool);
        let (_, _) = engine.cluster_day(&ids);
        engine.snapshot_delta(&dir, 8).unwrap(); // base

        // `days` rounds of churn, one delta per round.
        for day in 1..=days as u64 {
            for (i, id) in engine.store().live_ids().into_iter().enumerate() {
                if churn_mask & (1 << ((i as u64 + day) % 32)) == 0 {
                    engine.remove(id);
                }
            }
            let refill: Vec<Vec<u8>> = pool
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut tagged = s.clone();
                    tagged.push((day % 6) as u8);
                    tagged.push((i % 6) as u8);
                    tagged
                })
                .collect();
            let day_ids = engine.add_batch(day, &refill);
            let (_, _) = engine.cluster_day(&day_ids);
            engine.snapshot_delta(&dir, 8).unwrap();
        }

        // Full snapshot of the same final engine, resumed the PR 3 way.
        let full_path = dir.join("full.snap");
        engine.snapshot(&full_path).unwrap();
        let (mut via_full, full_report) = CorpusEngine::resume(cfg, &full_path);
        prop_assert!(full_report.is_warm(), "full: {:?}", full_report);

        let (mut via_chain, chain_report) = CorpusEngine::resume_chain(cfg, &dir);
        prop_assert!(chain_report.is_warm(), "chain: {:?}", chain_report);
        prop_assert!(chain_report.notes.is_empty(), "notes: {:?}", chain_report.notes);

        prop_assert_eq!(via_chain.len(), via_full.len());
        prop_assert_eq!(via_chain.store().live_ids(), via_full.store().live_ids());
        prop_assert_eq!(
            via_chain.index().cached_count(),
            via_full.index().cached_count()
        );
        let fresh: Vec<Vec<u8>> = pool.iter().rev().cloned().collect();
        let ids_full = via_full.add_batch(99, &fresh);
        let ids_chain = via_chain.add_batch(99, &fresh);
        prop_assert_eq!(&ids_full, &ids_chain);
        let (want, full_stats) = via_full.cluster_day(&ids_full);
        let (got, chain_stats) = via_chain.cluster_day(&ids_chain);
        prop_assert_eq!(want, got);
        // Both arms answer the carried-over fraction from restored caches
        // with identical work: the chain lost nothing the full file kept.
        prop_assert_eq!(chain_stats.index.queries, full_stats.index.queries);
        prop_assert_eq!(chain_stats.index.cache_hits, full_stats.index.cache_hits);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A damaged delta truncates the chain to its intact prefix: the
    /// resumed engine equals a resume of that prefix, never panics, and
    /// still clusters a fresh day exactly like a cold run.
    #[test]
    fn broken_chain_resumes_the_intact_prefix(
        pool in prop::collection::vec(token_string(), 4..16),
        damage_at in any::<u32>(),
        flip in any::<u8>(),
    ) {
        let cfg = DistributedConfig::new(2, DbscanParams::new(EPS, 2), 13);
        let dir = std::env::temp_dir().join(format!(
            "kizzle-persist-broken-{}-{damage_at}-{flip}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let mut engine = CorpusEngine::new(cfg);
        let ids = engine.add_batch(0, &pool);
        let (_, _) = engine.cluster_day(&ids);
        engine.snapshot_delta(&dir, 8).unwrap(); // base
        // One churned day → one delta.
        let extra: Vec<Vec<u8>> = pool.iter().map(|s| {
            let mut t = s.clone();
            t.push(5);
            t
        }).collect();
        let day_ids = engine.add_batch(1, &extra);
        let (_, _) = engine.cluster_day(&day_ids);
        let save = engine.snapshot_delta(&dir, 8).unwrap();

        if let Some(delta_file) = save.file {
            let path = dir.join(delta_file);
            let mut bytes = std::fs::read(&path).unwrap();
            let at = (damage_at as usize) % bytes.len();
            bytes[at] ^= flip | 1;
            std::fs::write(&path, &bytes).unwrap();
        }

        let (mut resumed, report) = CorpusEngine::resume_chain(cfg, &dir);
        // Damage anywhere in the delta is caught by the whole-file CRC:
        // the chain truncates to the base (day-0 state) and the report
        // says so. (A flip that leaves the delta readable-but-rejected or
        // hits only its trailer is equally fine — what matters is no
        // panic and a usable engine.)
        let _ = &report;
        let fresh: Vec<Vec<u8>> = pool.iter().rev().cloned().collect();
        resumed.retire_older_than(99);
        let fresh_ids = resumed.add_batch(99, &fresh);
        let (got, _) = resumed.cluster_day(&fresh_ids);
        let (want, _) = DistributedClusterer::new(cfg).cluster_token_strings(&fresh);
        prop_assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }
}
