//! Edit distance between abstract token strings.
//!
//! Kizzle measures the distance between two samples as the edit distance of
//! their token-class strings, normalized by the longer length, and clusters
//! with a threshold of 0.10 (paper §III-A). Computing millions of pairwise
//! distances dominates the pipeline, so in addition to the plain
//! Levenshtein distance this module provides a banded variant that gives up
//! early once the distance provably exceeds a bound — with a 10% threshold
//! the band is narrow and the common case is fast.

/// Plain Levenshtein edit distance (insertions, deletions, substitutions all
/// cost 1) between two byte strings.
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::edit_distance;
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(edit_distance(b"", b"abc"), 3);
/// ```
#[must_use]
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    // Keep the shorter string as the row to minimize memory.
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=a.len()).collect();
    let mut curr: Vec<usize> = vec![0; a.len() + 1];
    for (j, &bc) in b.iter().enumerate() {
        curr[0] = j + 1;
        for (i, &ac) in a.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[i + 1] = (prev[i] + cost).min(prev[i + 1] + 1).min(curr[i] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[a.len()]
}

/// Edit distance with an upper bound: returns `None` as soon as the distance
/// is guaranteed to exceed `max`, otherwise the exact distance.
///
/// Uses Ukkonen's band: only diagonals within `max` of the main diagonal are
/// explored, so the cost is `O(max * min(|a|, |b|))`.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::edit_distance_bounded;
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 2), None);
/// ```
#[must_use]
pub fn edit_distance_bounded(a: &[u8], b: &[u8], max: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let (n, m) = (a.len(), b.len());
    if m - n > max {
        return None;
    }
    if n == 0 {
        return Some(m);
    }

    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; n + 1];
    let mut curr = vec![INF; n + 1];
    for (i, slot) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *slot = i;
    }

    for j in 1..=m {
        // Band limits for row index i (1-based over `a`).
        let lo = j.saturating_sub(max).max(1);
        let hi = (j + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo - 1] = if lo == 1 { j } else { INF };
        let mut row_min = curr[lo - 1];
        let bc = b[j - 1];
        for i in lo..=hi {
            let cost = usize::from(a[i - 1] != bc);
            let diag = prev[i - 1].saturating_add(cost);
            let up = prev[i].saturating_add(1);
            let left = curr[i - 1].saturating_add(1);
            let v = diag.min(up).min(left);
            curr[i] = v;
            row_min = row_min.min(v);
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        // No need to clear `curr` (the old `prev`): the next iteration
        // overwrites every cell it will read. The band only moves by one
        // position per row, `curr[lo - 1]` and `curr[hi + 1]` are set
        // explicitly, and cells outside `[lo - 1, hi + 1]` are never read.
        // Clearing the whole row here would silently turn the O(max · n)
        // band back into O(n · m).
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

/// A token string preprocessed for Myers' bit-parallel edit distance.
///
/// Myers' algorithm (J. ACM 1999, multi-word extension per Hyyrö 2003)
/// represents one column of the dynamic-programming matrix as vertical
/// delta bit vectors and advances a whole 64-row block per instruction, so
/// computing the distance against a text of length `n` costs
/// `O(⌈m / 64⌉ · n)` — for the ≤ 900-token strings Kizzle clusters, about
/// an order of magnitude fewer operations than the banded DP.
///
/// Building the pattern costs `O(m + alphabet)`; amortize it by reusing one
/// `BitParallelPattern` across many comparisons (the neighbor index
/// compares each query against every surviving candidate).
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::BitParallelPattern;
/// let pattern = BitParallelPattern::new(b"kitten");
/// assert_eq!(pattern.distance_bounded(b"sitting", 3), Some(3));
/// assert_eq!(pattern.distance_bounded(b"sitting", 2), None);
/// ```
#[derive(Debug, Clone)]
pub struct BitParallelPattern {
    /// Pattern length in symbols.
    len: usize,
    /// Number of 64-bit blocks covering the pattern.
    blocks: usize,
    /// Per-symbol match masks: `peq[sym * blocks + w]` has bit `i` set when
    /// `pattern[w * 64 + i] == sym`.
    peq: Vec<u64>,
}

impl BitParallelPattern {
    /// Preprocess `pattern` into per-symbol match masks.
    #[must_use]
    pub fn new(pattern: &[u8]) -> Self {
        let blocks = pattern.len().div_ceil(64).max(1);
        let mut peq = vec![0u64; 256 * blocks];
        for (i, &sym) in pattern.iter().enumerate() {
            peq[sym as usize * blocks + i / 64] |= 1u64 << (i % 64);
        }
        BitParallelPattern {
            len: pattern.len(),
            blocks,
            peq,
        }
    }

    /// Pattern length in symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pattern is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Edit distance to `text` with an upper bound, like
    /// [`edit_distance_bounded`] but bit-parallel: `None` as soon as the
    /// distance provably exceeds `max`, otherwise the exact distance.
    ///
    /// Only the 64-row blocks covering the Ukkonen band (`|i − j| ≤ max`)
    /// are advanced per column (Hyyrö's banded block algorithm, as in
    /// edlib): a path achieving distance ≤ `max` never leaves the band, so
    /// cells outside it may be overestimated freely — untouched blocks keep
    /// their initial all-`+1` column state, and the boundary horizontal
    /// delta entering the lowest processed block is taken as `+1` (both are
    /// exact or overestimates, and the DP is monotone in its inputs). At
    /// the 900-token cap with `eps = 0.10` this touches ~3 of 15 blocks
    /// per column instead of all of them.
    #[must_use]
    pub fn distance_bounded(&self, text: &[u8], max: usize) -> Option<usize> {
        let (m, n) = (self.len, text.len());
        if m.abs_diff(n) > max {
            return None;
        }
        if m == 0 || n == 0 {
            // Distance is the other length; the length filter above already
            // established it is within the bound.
            return Some(m.max(n));
        }

        let blocks = self.blocks;
        let last_block = blocks - 1;
        // Bit of row `m` (the score row) within the last block.
        let score_bit = 1u64 << ((m - 1) % 64);
        let mut pv = vec![u64::MAX; blocks];
        let mut mv = vec![0u64; blocks];
        // Lowest block the band has reached so far. `score` tracks the
        // computed D[r][j] at the band anchor row r = min(m, 64·(band + 1)),
        // advanced via the horizontal delta leaving that block.
        let mut band = ((max + 1).min(m) - 1) / 64;
        let mut score = (64 * (band + 1)).min(m);

        for (j, &sym) in text.iter().enumerate() {
            let col = j + 1;
            // Row band for this column: lo..=hi (1-based over the pattern).
            let lo = col.saturating_sub(max).max(1);
            let hi = col.saturating_add(max).min(m);
            let first = (lo - 1) / 64;
            let new_band = (hi - 1) / 64;
            if new_band > band {
                // Blocks entering at the bottom were never touched: their
                // state is still the initial all-+1 column, so re-anchoring
                // the score costs one per assumed row.
                score += (64 * (new_band + 1)).min(m) - (64 * (band + 1)).min(m);
                band = new_band;
            }
            let peq_row = &self.peq[sym as usize * blocks..(sym as usize + 1) * blocks];
            // Horizontal delta entering the bottom of the processed window:
            // row 0 of the DP matrix increases by one per text symbol, and
            // for a window starting above row 0 the true delta is ≤ +1.
            let mut hin: i32 = 1;
            for w in first..=band {
                let eq0 = peq_row[w];
                let (pvw, mvw) = (pv[w], mv[w]);
                let xv = eq0 | mvw;
                // A negative carry-in acts like a match in the lowest row.
                let eq = eq0 | u64::from(hin < 0);
                let xh = (((eq & pvw).wrapping_add(pvw)) ^ pvw) | eq;
                let mut ph = mvw | !(xh | pvw);
                let mut mh = pvw & xh;
                // Horizontal delta leaving the top of this block: read at
                // the last *used* pattern row, not bit 63, for the final
                // block — rows past `m` are fictional.
                let out_bit = if w == last_block {
                    score_bit
                } else {
                    1u64 << 63
                };
                let hout: i32 = if ph & out_bit != 0 {
                    1
                } else {
                    -i32::from(mh & out_bit != 0)
                };
                ph <<= 1;
                mh <<= 1;
                if hin < 0 {
                    mh |= 1;
                } else if hin > 0 {
                    ph |= 1;
                }
                pv[w] = mh | !(xv | ph);
                mv[w] = ph & xv;
                hin = hout;
            }
            score = score.wrapping_add_signed(hin as isize);
            // Early exit, only once the band anchor is the true score row
            // (the conservative form at an interior anchor could misfire on
            // overestimated below-band cells): score == D[m][col], and each
            // remaining text symbol can lower the final distance by at most
            // one.
            if band == last_block {
                let remaining = n - col;
                if score > max + remaining {
                    return None;
                }
            }
        }
        (score <= max).then_some(score)
    }
}

/// Bit-parallel bounded edit distance for a one-off pair; see
/// [`BitParallelPattern`] for the amortized form.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::edit_distance_bitparallel_bounded;
/// assert_eq!(edit_distance_bitparallel_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(edit_distance_bitparallel_bounded(b"kitten", b"sitting", 2), None);
/// ```
#[must_use]
pub fn edit_distance_bitparallel_bounded(a: &[u8], b: &[u8], max: usize) -> Option<usize> {
    // Preprocess the shorter side: fewer blocks, longer inner loop.
    let (pattern, text) = if a.len() < b.len() { (a, b) } else { (b, a) };
    BitParallelPattern::new(pattern).distance_bounded(text, max)
}

/// Normalized edit distance: edit distance divided by the length of the
/// longer string, yielding a value in `[0, 1]`. Two empty strings are at
/// distance 0.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::normalized_edit_distance;
/// assert_eq!(normalized_edit_distance(b"aaaa", b"aaaa"), 0.0);
/// assert_eq!(normalized_edit_distance(b"aaaa", b"bbbb"), 1.0);
/// ```
#[must_use]
pub fn normalized_edit_distance(a: &[u8], b: &[u8]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 0.0;
    }
    edit_distance(a, b) as f64 / max_len as f64
}

/// Normalized edit distance with an early exit: returns `None` when the
/// normalized distance is guaranteed to exceed `threshold`.
///
/// This is the workhorse of DBSCAN neighborhood queries: with the paper's
/// `threshold = 0.10`, the underlying band is only 10% of the longer length.
#[must_use]
pub fn normalized_edit_distance_bounded(a: &[u8], b: &[u8], threshold: f64) -> Option<f64> {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return Some(0.0);
    }
    // Length difference alone is a lower bound on the edit distance.
    let len_diff = a.len().abs_diff(b.len());
    if len_diff as f64 / max_len as f64 > threshold {
        return None;
    }
    let max_edits = (threshold * max_len as f64).floor() as usize;
    edit_distance_bounded(a, b, max_edits).map(|d| d as f64 / max_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            edit_distance(b"abcdef", b"azced"),
            edit_distance(b"azced", b"abcdef")
        );
    }

    #[test]
    fn bounded_matches_exact_when_within_bound() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"exploit", b"exploits"),
            (b"aaaaaaaaaa", b"aaaaabaaaa"),
            (b"", b"xyz"),
            (b"same", b"same"),
        ];
        for (a, b) in pairs {
            let exact = edit_distance(a, b);
            assert_eq!(edit_distance_bounded(a, b, exact), Some(exact));
            assert_eq!(edit_distance_bounded(a, b, exact + 5), Some(exact));
            if exact > 0 {
                assert_eq!(edit_distance_bounded(a, b, exact - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_big_length_difference_immediately() {
        let a = vec![1u8; 10];
        let b = vec![1u8; 100];
        assert_eq!(edit_distance_bounded(&a, &b, 5), None);
    }

    #[test]
    fn normalized_range_and_identity() {
        assert_eq!(normalized_edit_distance(b"", b""), 0.0);
        assert_eq!(normalized_edit_distance(b"abcd", b"abcd"), 0.0);
        assert_eq!(normalized_edit_distance(b"abcd", b"wxyz"), 1.0);
        let d = normalized_edit_distance(b"abcdefghij", b"abcdefghiX");
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalized_bounded_agrees_with_unbounded() {
        let a = b"abcdefghijklmnopqrst";
        let b = b"abcdefghijklmnopqrsX";
        let exact = normalized_edit_distance(a, b);
        let bounded = normalized_edit_distance_bounded(a, b, 0.10).unwrap();
        assert!((exact - bounded).abs() < 1e-12);
        assert_eq!(normalized_edit_distance_bounded(a, b, 0.01), None);
    }

    #[test]
    fn normalized_bounded_empty_strings() {
        assert_eq!(normalized_edit_distance_bounded(b"", b"", 0.1), Some(0.0));
        assert_eq!(
            normalized_edit_distance_bounded(b"", b"abcdefghij", 0.1),
            None
        );
    }

    #[test]
    fn bounded_zero_max_only_for_equal() {
        assert_eq!(edit_distance_bounded(b"same", b"same", 0), Some(0));
        assert_eq!(edit_distance_bounded(b"same", b"sane", 0), None);
    }

    #[test]
    fn bitparallel_agrees_with_banded_on_classics() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"exploit", b"exploits"),
            (b"aaaaaaaaaa", b"aaaaabaaaa"),
            (b"", b"xyz"),
            (b"same", b"same"),
            (b"flaw", b"lawn"),
        ];
        for (a, b) in pairs {
            let exact = edit_distance(a, b);
            for max in 0..exact + 3 {
                assert_eq!(
                    edit_distance_bitparallel_bounded(a, b, max),
                    edit_distance_bounded(a, b, max),
                    "a={a:?} b={b:?} max={max}"
                );
            }
        }
    }

    #[test]
    fn bitparallel_crosses_block_boundaries() {
        // Lengths straddling 64 and 128 exercise the multi-block carry path.
        for len in [63, 64, 65, 127, 128, 129, 200] {
            let a: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect();
            let mut b = a.clone();
            for slot in b.iter_mut().step_by(13) {
                *slot = 9;
            }
            b.truncate(len - len / 50);
            let exact = edit_distance(&a, &b);
            assert_eq!(
                edit_distance_bitparallel_bounded(&a, &b, exact),
                Some(exact),
                "len={len}"
            );
            if exact > 0 {
                assert_eq!(edit_distance_bitparallel_bounded(&a, &b, exact - 1), None);
            }
        }
    }

    #[test]
    fn bitparallel_pattern_is_reusable() {
        let query: Vec<u8> = (0..150).map(|i| (i % 5) as u8).collect();
        let pattern = BitParallelPattern::new(&query);
        assert_eq!(pattern.len(), 150);
        assert!(!pattern.is_empty());
        for variation in 0..10 {
            let mut other = query.clone();
            for slot in other.iter_mut().take(variation * 3) {
                *slot = 8;
            }
            let exact = edit_distance(&query, &other);
            assert_eq!(pattern.distance_bounded(&other, 160), Some(exact));
        }
    }

    #[test]
    fn bitparallel_empty_pattern() {
        let pattern = BitParallelPattern::new(b"");
        assert!(pattern.is_empty());
        assert_eq!(pattern.distance_bounded(b"", 0), Some(0));
        assert_eq!(pattern.distance_bounded(b"abc", 3), Some(3));
        assert_eq!(pattern.distance_bounded(b"abc", 2), None);
    }

    #[test]
    fn long_similar_token_strings_are_close() {
        // Two 500-token strings differing in 20 positions: distance 0.04.
        let a: Vec<u8> = (0..500).map(|i| (i % 6) as u8).collect();
        let mut b = a.clone();
        for i in 0..20 {
            b[i * 25] = 5 - b[i * 25];
        }
        let d = normalized_edit_distance(&a, &b);
        assert!((d - 0.04).abs() < 1e-9);
        assert!(normalized_edit_distance_bounded(&a, &b, 0.10).is_some());
    }
}
