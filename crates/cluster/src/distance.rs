//! Edit distance between abstract token strings.
//!
//! Kizzle measures the distance between two samples as the edit distance of
//! their token-class strings, normalized by the longer length, and clusters
//! with a threshold of 0.10 (paper §III-A). Computing millions of pairwise
//! distances dominates the pipeline, so in addition to the plain
//! Levenshtein distance this module provides a banded variant that gives up
//! early once the distance provably exceeds a bound — with a 10% threshold
//! the band is narrow and the common case is fast.

/// Plain Levenshtein edit distance (insertions, deletions, substitutions all
/// cost 1) between two byte strings.
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::edit_distance;
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(edit_distance(b"", b"abc"), 3);
/// ```
#[must_use]
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    // Keep the shorter string as the row to minimize memory.
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=a.len()).collect();
    let mut curr: Vec<usize> = vec![0; a.len() + 1];
    for (j, &bc) in b.iter().enumerate() {
        curr[0] = j + 1;
        for (i, &ac) in a.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[i + 1] = (prev[i] + cost).min(prev[i + 1] + 1).min(curr[i] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[a.len()]
}

/// Edit distance with an upper bound: returns `None` as soon as the distance
/// is guaranteed to exceed `max`, otherwise the exact distance.
///
/// Uses Ukkonen's band: only diagonals within `max` of the main diagonal are
/// explored, so the cost is `O(max * min(|a|, |b|))`.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::edit_distance_bounded;
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 2), None);
/// ```
#[must_use]
pub fn edit_distance_bounded(a: &[u8], b: &[u8], max: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    let (n, m) = (a.len(), b.len());
    if m - n > max {
        return None;
    }
    if n == 0 {
        return Some(m);
    }

    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; n + 1];
    let mut curr = vec![INF; n + 1];
    for (i, slot) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *slot = i;
    }

    for j in 1..=m {
        // Band limits for row index i (1-based over `a`).
        let lo = j.saturating_sub(max).max(1);
        let hi = (j + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo - 1] = if lo == 1 { j } else { INF };
        let mut row_min = curr[lo - 1];
        let bc = b[j - 1];
        for i in lo..=hi {
            let cost = usize::from(a[i - 1] != bc);
            let diag = prev[i - 1].saturating_add(cost);
            let up = prev[i].saturating_add(1);
            let left = curr[i - 1].saturating_add(1);
            let v = diag.min(up).min(left);
            curr[i] = v;
            row_min = row_min.min(v);
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
        for slot in curr.iter_mut() {
            *slot = INF;
        }
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

/// Normalized edit distance: edit distance divided by the length of the
/// longer string, yielding a value in `[0, 1]`. Two empty strings are at
/// distance 0.
///
/// # Examples
///
/// ```
/// use kizzle_cluster::distance::normalized_edit_distance;
/// assert_eq!(normalized_edit_distance(b"aaaa", b"aaaa"), 0.0);
/// assert_eq!(normalized_edit_distance(b"aaaa", b"bbbb"), 1.0);
/// ```
#[must_use]
pub fn normalized_edit_distance(a: &[u8], b: &[u8]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 0.0;
    }
    edit_distance(a, b) as f64 / max_len as f64
}

/// Normalized edit distance with an early exit: returns `None` when the
/// normalized distance is guaranteed to exceed `threshold`.
///
/// This is the workhorse of DBSCAN neighborhood queries: with the paper's
/// `threshold = 0.10`, the underlying band is only 10% of the longer length.
#[must_use]
pub fn normalized_edit_distance_bounded(a: &[u8], b: &[u8], threshold: f64) -> Option<f64> {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return Some(0.0);
    }
    // Length difference alone is a lower bound on the edit distance.
    let len_diff = a.len().abs_diff(b.len());
    if len_diff as f64 / max_len as f64 > threshold {
        return None;
    }
    let max_edits = (threshold * max_len as f64).floor() as usize;
    edit_distance_bounded(a, b, max_edits).map(|d| d as f64 / max_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
    }

    #[test]
    fn symmetric() {
        assert_eq!(edit_distance(b"abcdef", b"azced"), edit_distance(b"azced", b"abcdef"));
    }

    #[test]
    fn bounded_matches_exact_when_within_bound() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"exploit", b"exploits"),
            (b"aaaaaaaaaa", b"aaaaabaaaa"),
            (b"", b"xyz"),
            (b"same", b"same"),
        ];
        for (a, b) in pairs {
            let exact = edit_distance(a, b);
            assert_eq!(edit_distance_bounded(a, b, exact), Some(exact));
            assert_eq!(edit_distance_bounded(a, b, exact + 5), Some(exact));
            if exact > 0 {
                assert_eq!(edit_distance_bounded(a, b, exact - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_big_length_difference_immediately() {
        let a = vec![1u8; 10];
        let b = vec![1u8; 100];
        assert_eq!(edit_distance_bounded(&a, &b, 5), None);
    }

    #[test]
    fn normalized_range_and_identity() {
        assert_eq!(normalized_edit_distance(b"", b""), 0.0);
        assert_eq!(normalized_edit_distance(b"abcd", b"abcd"), 0.0);
        assert_eq!(normalized_edit_distance(b"abcd", b"wxyz"), 1.0);
        let d = normalized_edit_distance(b"abcdefghij", b"abcdefghiX");
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalized_bounded_agrees_with_unbounded() {
        let a = b"abcdefghijklmnopqrst";
        let b = b"abcdefghijklmnopqrsX";
        let exact = normalized_edit_distance(a, b);
        let bounded = normalized_edit_distance_bounded(a, b, 0.10).unwrap();
        assert!((exact - bounded).abs() < 1e-12);
        assert_eq!(normalized_edit_distance_bounded(a, b, 0.01), None);
    }

    #[test]
    fn normalized_bounded_empty_strings() {
        assert_eq!(normalized_edit_distance_bounded(b"", b"", 0.1), Some(0.0));
        assert_eq!(normalized_edit_distance_bounded(b"", b"abcdefghij", 0.1), None);
    }

    #[test]
    fn bounded_zero_max_only_for_equal() {
        assert_eq!(edit_distance_bounded(b"same", b"same", 0), Some(0));
        assert_eq!(edit_distance_bounded(b"same", b"sane", 0), None);
    }

    #[test]
    fn long_similar_token_strings_are_close() {
        // Two 500-token strings differing in 20 positions: distance 0.04.
        let a: Vec<u8> = (0..500).map(|i| (i % 6) as u8).collect();
        let mut b = a.clone();
        for i in 0..20 {
            b[i * 25] = 5 - b[i * 25];
        }
        let d = normalized_edit_distance(&a, &b);
        assert!((d - 0.04).abs() < 1e-9);
        assert!(normalized_edit_distance_bounded(&a, &b, 0.10).is_some());
    }
}
