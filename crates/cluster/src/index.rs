//! Incremental candidate-pruning neighbor index for token-string DBSCAN.
//!
//! The naive neighborhood query compares a sample against all `n − 1`
//! others with the banded edit distance. At the paper's `eps = 0.10` almost
//! all of those comparisons are wasted: two strings can only be within
//! normalized distance 0.10 when their lengths differ by ≤ 10%, and even
//! inside that window most pairs differ in far more than 10% of their token
//! multiset. This index exploits both facts with a chain of ever-more
//! expensive filters:
//!
//! 1. **Length window** — entries live in a length-ordered set; a query
//!    only walks the contiguous range whose lengths satisfy the normalized
//!    length-difference bound. `O(log n)` to locate, nothing at all spent
//!    on samples outside the window.
//! 2. **Token-class histogram L1 bound** — per entry the index stores a
//!    compact histogram over the observed token alphabet. Each unit edit
//!    changes the histogram L1 distance by at most 2, so
//!    `⌈L1 / 2⌉ > max_edits` rejects a pair in `O(alphabet)` (the token
//!    alphabet has ~a dozen classes) instead of `O(len²)`.
//! 3. **Bit-parallel bounded edit distance** — survivors meet Myers'
//!    algorithm ([`BitParallelPattern`]), with the pattern preprocessing
//!    amortized across the whole candidate range of one query.
//!
//! Unlike the original batch-only index, this one is **incremental**:
//! [`NeighborIndex::insert`] and [`NeighborIndex::remove`] update the
//! length-ordered set and histogram table in place, and the memoized
//! neighborhoods are *maintained* rather than recomputed — inserting a
//! sample computes its own eps-ball once and splices the new id into its
//! neighbors' cached lists (the eps relation is symmetric), removing a
//! sample prunes it from exactly those lists. Day *N+1* of a heavily
//! overlapping corpus therefore pays query cost only for the churned
//! fraction; everything else is a cache hit.
//!
//! The accept decision reproduces
//! [`normalized_edit_distance_bounded`](crate::distance::normalized_edit_distance_bounded)
//! `≤ eps` bit-for-bit (same `max_edits` floor, same final normalized
//! comparison), so [`dbscan_indexed`](crate::dbscan::dbscan_indexed) is
//! label-identical to the naive [`dbscan`](crate::dbscan::dbscan) — the
//! property tests in `tests/indexed_properties.rs` and
//! `tests/incremental_properties.rs` hold it to that.

use crate::distance::BitParallelPattern;
use crate::store::SampleId;
use kizzle_snapshot::{Decoder, Encoder, SnapshotError};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Work counters from index operations, for observability and the PERF.md
/// pruning-efficiency numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of eps-ball computations performed (cache misses and
    /// external [`NeighborIndex::query`] calls).
    pub queries: usize,
    /// Neighborhood reads served from the memoized cache.
    pub cache_hits: usize,
    /// Ordered candidate pairs that survived the length window.
    pub window_candidates: usize,
    /// Pairs rejected by the histogram L1 lower bound.
    pub pruned_by_histogram: usize,
    /// Pairs that reached the bit-parallel edit distance.
    pub distance_calls: usize,
    /// Pairs accepted as neighbors.
    pub neighbors_found: usize,
}

impl IndexStats {
    /// Accumulate another operation's counters.
    pub fn merge(&mut self, other: &IndexStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.window_candidates += other.window_candidates;
        self.pruned_by_histogram += other.pruned_by_histogram;
        self.distance_calls += other.distance_calls;
        self.neighbors_found += other.neighbors_found;
    }
}

/// Histogram slot meaning "symbol not yet observed".
const UNASSIGNED: u16 = u16::MAX;

#[derive(Debug, Clone)]
struct IndexEntry {
    data: Arc<[u8]>,
    /// Compact histogram over the alphabet observed *when this entry was
    /// inserted*; slots added later are implicitly zero.
    hist: Vec<u32>,
    /// Memoized eps-ball (ascending slot numbers), exact w.r.t. the current
    /// live set whenever present — insert/remove maintain it in place.
    cache: Option<Vec<u32>>,
}

/// An incremental neighbor index over token strings at a fixed `eps`.
///
/// Entries are keyed by caller-supplied [`SampleId`]s (from a
/// [`CorpusStore`](crate::store::CorpusStore) or minted directly); the
/// index owns a cheap [`Arc`] handle to each sample's bytes.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    eps: f64,
    /// Slot `i` backs `SampleId(i)`.
    entries: Vec<Option<IndexEntry>>,
    /// Live `(length, slot)` pairs, the length-window structure. Updated in
    /// place by insert/remove.
    by_len: BTreeSet<(usize, u32)>,
    /// Observed alphabet → histogram slot; grows monotonically.
    slot_of: [u16; 256],
    /// Number of assigned histogram slots.
    width: usize,
    live: usize,
    /// Counters accumulated across operations, drained by
    /// [`NeighborIndex::take_stats`].
    session: IndexStats,
}

/// `max_edits` for a pair whose longer string has `max_len` tokens —
/// exactly the floor used by `normalized_edit_distance_bounded`.
fn max_edits(eps: f64, max_len: usize) -> usize {
    (eps * max_len as f64).floor() as usize
}

/// The naive accept predicate on lengths alone: normalized length
/// difference within `eps`.
fn length_compatible(eps: f64, a: usize, b: usize) -> bool {
    let max_len = a.max(b);
    if max_len == 0 {
        return true;
    }
    a.abs_diff(b) as f64 / max_len as f64 <= eps
}

/// Histogram L1 distance with implicit zero-extension (entries inserted at
/// different alphabet widths have different histogram lengths).
fn histogram_l1(a: &[u32], b: &[u32]) -> u64 {
    let common = a.len().min(b.len());
    let mut sum: u64 = 0;
    for i in 0..common {
        sum += u64::from(a[i].abs_diff(b[i]));
    }
    for &x in &a[common..] {
        sum += u64::from(x);
    }
    for &x in &b[common..] {
        sum += u64::from(x);
    }
    sum
}

impl NeighborIndex {
    /// Create an empty index for the given `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or NaN.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "eps must be a non-negative number"
        );
        NeighborIndex {
            eps,
            entries: Vec::new(),
            by_len: BTreeSet::new(),
            slot_of: [UNASSIGNED; 256],
            width: 0,
            live: 0,
            session: IndexStats::default(),
        }
    }

    /// Build an index over a sample slice, assigning `SampleId(i)` to
    /// `samples[i]` and computing every neighborhood up front (in
    /// parallel). The one-shot batch entry point.
    #[must_use]
    pub fn build<S: AsRef<[u8]> + Sync>(samples: &[S], eps: f64) -> Self {
        let mut index = NeighborIndex::new(eps);
        let items: Vec<(SampleId, Arc<[u8]>)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    SampleId::new(u32::try_from(i).expect("more than u32::MAX samples")),
                    Arc::from(s.as_ref()),
                )
            })
            .collect();
        index.insert_batch(items);
        index
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the index holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The `eps` the index was built for.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// True if `id` is indexed.
    #[must_use]
    pub fn contains(&self, id: SampleId) -> bool {
        self.entries
            .get(id.raw() as usize)
            .is_some_and(Option::is_some)
    }

    /// Drain the counters accumulated since the last call.
    pub fn take_stats(&mut self) -> IndexStats {
        std::mem::take(&mut self.session)
    }

    fn entry(&self, slot: u32) -> &IndexEntry {
        self.entries[slot as usize]
            .as_ref()
            .expect("slot refers to a live entry")
    }

    /// Register `data`'s symbols in the alphabet and return its histogram.
    fn make_histogram(&mut self, data: &[u8]) -> Vec<u32> {
        for &sym in data {
            if self.slot_of[sym as usize] == UNASSIGNED {
                self.slot_of[sym as usize] =
                    u16::try_from(self.width).expect("alphabet exceeds u16 slots");
                self.width += 1;
            }
        }
        let mut hist = vec![0u32; self.width];
        for &sym in data {
            hist[self.slot_of[sym as usize] as usize] += 1;
        }
        hist
    }

    /// Histogram of an external (non-indexed) query string, plus the total
    /// count of its symbols outside the observed alphabet (each contributes
    /// its full count to every L1 distance).
    fn external_histogram(&self, data: &[u8]) -> (Vec<u32>, u64) {
        let mut hist = vec![0u32; self.width];
        let mut unknown: u64 = 0;
        for &sym in data {
            let slot = self.slot_of[sym as usize];
            if slot == UNASSIGNED {
                unknown += 1;
            } else {
                hist[slot as usize] += 1;
            }
        }
        (hist, unknown)
    }

    /// The eps-ball of `query` over the live entries: every slot whose
    /// sample is within normalized edit distance `eps`, ascending.
    /// `exclude` removes the query's own slot; `unknown` is the L1
    /// contribution of query symbols outside the observed alphabet.
    fn eps_ball(
        &self,
        query: &[u8],
        query_hist: &[u32],
        unknown: u64,
        exclude: Option<u32>,
    ) -> (Vec<u32>, IndexStats) {
        let mut stats = IndexStats {
            queries: 1,
            ..IndexStats::default()
        };
        let query_len = query.len();
        // Built lazily: queries whose whole length window is pruned (most
        // benign one-offs) never pay the O(256·blocks) pattern setup.
        let mut pattern: Option<BitParallelPattern> = None;
        let mut neighbors = Vec::new();

        // Conservative start of the length window (one short of the integer
        // bound; the exact float predicate re-checks each candidate).
        let window_min = query_len.saturating_sub(max_edits(self.eps, query_len) + 1);
        for &(cand_len, slot) in self.by_len.range((window_min, 0u32)..) {
            if !length_compatible(self.eps, query_len, cand_len) {
                if cand_len > query_len {
                    // (M − L) / M grows with M: every longer candidate
                    // fails too.
                    break;
                }
                // Below the exact bound but inside the conservative slack.
                continue;
            }
            if exclude == Some(slot) {
                continue;
            }
            stats.window_candidates += 1;

            let max_len = query_len.max(cand_len);
            if max_len == 0 {
                // Two empty strings: distance 0.
                neighbors.push(slot);
                stats.neighbors_found += 1;
                continue;
            }
            let budget = max_edits(self.eps, max_len);
            let cand = self.entry(slot);
            // Each edit moves the histogram L1 by at most 2.
            let l1 = histogram_l1(query_hist, &cand.hist) + unknown;
            let l1_lower = usize::try_from(l1.div_ceil(2)).unwrap_or(usize::MAX);
            if l1_lower > budget {
                stats.pruned_by_histogram += 1;
                continue;
            }
            stats.distance_calls += 1;
            let pattern = pattern.get_or_insert_with(|| BitParallelPattern::new(query));
            if let Some(d) = pattern.distance_bounded(&cand.data, budget) {
                // Final normalized comparison, identical to the naive path.
                if d as f64 / max_len as f64 <= self.eps {
                    neighbors.push(slot);
                    stats.neighbors_found += 1;
                }
            }
        }
        neighbors.sort_unstable();
        (neighbors, stats)
    }

    /// Compute the eps-ball of live slot `slot` (no cache involvement).
    fn eps_ball_of_slot(&self, slot: u32) -> (Vec<u32>, IndexStats) {
        let entry = self.entry(slot);
        // The Arc keeps `data` alive independently of the entry table, so
        // the borrow checker lets us pass it back into `self`.
        let data = Arc::clone(&entry.data);
        let hist = entry.hist.clone();
        self.eps_ball(&data, &hist, 0, Some(slot))
    }

    /// The eps-ball of an external sample over the indexed entries,
    /// ascending. Used by the reduce step to route merged-prototype and
    /// noise-adoption lookups through the filter chain instead of scanning
    /// prototypes all-pairs.
    #[must_use]
    pub fn query(&mut self, sample: &[u8]) -> Vec<SampleId> {
        let (hist, unknown) = self.external_histogram(sample);
        let (slots, stats) = self.eps_ball(sample, &hist, unknown, None);
        self.session.merge(&stats);
        slots.into_iter().map(SampleId::new).collect()
    }

    /// Insert one sample under `id`.
    ///
    /// Computes the new entry's eps-ball once and splices `id` into its
    /// neighbors' memoized lists, so every existing cache stays exact.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already indexed.
    pub fn insert(&mut self, id: SampleId, data: Arc<[u8]>) {
        self.insert_batch(vec![(id, data)]);
    }

    /// Insert a batch of samples, computing the new entries' neighborhoods
    /// in parallel and splicing them into the surviving caches.
    ///
    /// # Panics
    ///
    /// Panics if any id is already indexed or appears twice in the batch.
    pub fn insert_batch(&mut self, items: Vec<(SampleId, Arc<[u8]>)>) {
        if items.is_empty() {
            return;
        }
        // Phase 1: structural inserts (length set, histograms, slots).
        let new_slots = self.insert_structural(items);

        // Phase 2: the new entries' eps-balls, in parallel over the full
        // (old + new) live set.
        let shared: &NeighborIndex = self;
        let computed: Vec<(Vec<u32>, IndexStats)> = new_slots
            .par_iter()
            .map(|&slot| shared.eps_ball_of_slot(slot))
            .collect();

        // Phase 3: memoize the new eps-balls and splice each new slot into
        // its *pre-existing* neighbors' caches (new–new pairs are already
        // covered by the parallel computation; the eps relation is
        // symmetric).
        let new_set: BTreeSet<u32> = new_slots.iter().copied().collect();
        for (&slot, (neighbors, stats)) in new_slots.iter().zip(computed) {
            self.session.merge(&stats);
            for &other in &neighbors {
                if new_set.contains(&other) {
                    continue;
                }
                if let Some(cache) = &mut self.entries[other as usize]
                    .as_mut()
                    .expect("neighbor is live")
                    .cache
                {
                    if let Err(pos) = cache.binary_search(&slot) {
                        cache.insert(pos, slot);
                    }
                }
            }
            self.entries[slot as usize]
                .as_mut()
                .expect("just inserted")
                .cache = Some(neighbors);
        }
    }

    /// Structural inserts only: length set, histograms, slots. Returns the
    /// inserted slots; caches are untouched.
    fn insert_structural(&mut self, items: Vec<(SampleId, Arc<[u8]>)>) -> Vec<u32> {
        let mut new_slots = Vec::with_capacity(items.len());
        for (id, data) in items {
            let slot = id.raw();
            if self.entries.len() <= slot as usize {
                self.entries.resize(slot as usize + 1, None);
            }
            assert!(
                self.entries[slot as usize].is_none(),
                "SampleId {slot} is already indexed"
            );
            let hist = self.make_histogram(&data);
            self.by_len.insert((data.len(), slot));
            self.entries[slot as usize] = Some(IndexEntry {
                data,
                hist,
                cache: None,
            });
            self.live += 1;
            new_slots.push(slot);
        }
        new_slots
    }

    /// Insert a batch *without* computing neighborhoods — for throwaway
    /// indexes that are only queried externally ([`NeighborIndex::query`]),
    /// like the reduce step's noise-adoption index, where eager eps-balls
    /// would be computed and thrown away. Only sound while no neighborhood
    /// is memoized (maintained caches would silently go stale), which is
    /// asserted.
    pub(crate) fn insert_batch_unmemoized(&mut self, items: Vec<(SampleId, Arc<[u8]>)>) {
        assert!(
            self.entries.iter().flatten().all(|e| e.cache.is_none()),
            "unmemoized insert into an index with memoized neighborhoods"
        );
        self.insert_structural(items);
    }

    /// Remove `id` from the index, pruning it from its neighbors' memoized
    /// lists. Returns false if `id` was not indexed.
    pub fn remove(&mut self, id: SampleId) -> bool {
        let slot = id.raw();
        if !self.contains(id) {
            return false;
        }
        // The eps relation is symmetric: the caches that mention `slot` are
        // exactly the caches of its own eps-ball.
        let neighbors = match self.entries[slot as usize]
            .as_mut()
            .expect("checked live")
            .cache
            .take()
        {
            Some(cached) => cached,
            None => {
                let (computed, stats) = self.eps_ball_of_slot(slot);
                self.session.merge(&stats);
                computed
            }
        };
        for other in neighbors {
            if let Some(cache) = &mut self.entries[other as usize]
                .as_mut()
                .expect("neighbor is live")
                .cache
            {
                if let Ok(pos) = cache.binary_search(&slot) {
                    cache.remove(pos);
                }
            }
        }
        let len = self.entry(slot).data.len();
        self.by_len.remove(&(len, slot));
        self.entries[slot as usize] = None;
        self.live -= 1;
        true
    }

    /// The memoized eps-ball of `id`, computing and caching it on a miss.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not indexed.
    #[must_use]
    pub fn neighbors(&mut self, id: SampleId) -> Vec<SampleId> {
        self.ensure_cached(&[id]);
        self.cached_slots(id.raw())
            .iter()
            .map(|&slot| SampleId::new(slot))
            .collect()
    }

    /// Make sure every listed id has a memoized neighborhood, computing the
    /// missing ones in parallel. Cache hits and misses are tallied in the
    /// session counters.
    ///
    /// # Panics
    ///
    /// Panics if any id is not indexed.
    pub fn ensure_cached(&mut self, ids: &[SampleId]) {
        let mut missing: Vec<u32> = Vec::new();
        for &id in ids {
            assert!(self.contains(id), "SampleId {} is not indexed", id.raw());
            if self.entry(id.raw()).cache.is_some() {
                self.session.cache_hits += 1;
            } else {
                missing.push(id.raw());
            }
        }
        if missing.is_empty() {
            return;
        }
        missing.sort_unstable();
        missing.dedup();
        let shared: &NeighborIndex = self;
        let computed: Vec<(Vec<u32>, IndexStats)> = missing
            .par_iter()
            .map(|&slot| shared.eps_ball_of_slot(slot))
            .collect();
        for (&slot, (neighbors, stats)) in missing.iter().zip(computed) {
            self.session.merge(&stats);
            self.entries[slot as usize]
                .as_mut()
                .expect("checked live")
                .cache = Some(neighbors);
        }
    }

    /// Read-only view of a memoized neighborhood (must exist).
    pub(crate) fn cached_slots(&self, slot: u32) -> &[u32] {
        self.entry(slot)
            .cache
            .as_deref()
            .expect("neighborhood was ensured")
    }

    /// Number of entries whose neighborhood is currently memoized.
    #[must_use]
    pub fn cached_count(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.cache.is_some())
            .count()
    }

    /// Serialize the index state *except sample bytes*: `eps`, the
    /// alphabet-slot assignment, and per live entry its slot and memoized
    /// neighborhood (when present). Sample bytes are owned by the
    /// [`CorpusStore`](crate::store::CorpusStore) snapshot section and are
    /// re-linked at decode time, so an engine snapshot stores each sample
    /// once.
    ///
    /// Live slots are emitted ascending as varint gaps, and each memoized
    /// neighborhood — a strictly ascending, mostly dense id list — as a
    /// varint gap list ([`Encoder::gap_list`]): ~1 byte per neighbor
    /// instead of 4, which is what caps the snapshot's superlinear growth
    /// (the eps-balls grow with the corpus; their encoding no longer
    /// does, per id).
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.f64(self.eps);
        enc.varint_usize(self.width);
        for slot in self.slot_of {
            enc.u16(slot);
        }
        enc.varint_usize(self.live);
        let mut prev_slot: Option<u32> = None;
        for (slot, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let slot = u32::try_from(slot).expect("slots fit u32");
            match prev_slot {
                None => enc.varint(u64::from(slot)),
                Some(p) => enc.varint(u64::from(slot - p) - 1),
            }
            prev_slot = Some(slot);
            match &entry.cache {
                None => enc.bool(false),
                Some(cache) => {
                    enc.bool(true);
                    enc.gap_list(cache);
                }
            }
        }
    }

    /// The version-1 encoding: live slots and memoized neighborhoods as
    /// plain absolute varint id runs instead of gap lists (the pre-chain
    /// format this build still reads). Test-only writer for the v1→v2
    /// upgrade regression; production saves always gap-encode.
    #[doc(hidden)]
    pub fn encode_into_v1(&self, enc: &mut Encoder) {
        enc.f64(self.eps);
        enc.varint_usize(self.width);
        for slot in self.slot_of {
            enc.u16(slot);
        }
        enc.varint_usize(self.live);
        for (slot, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            enc.varint(slot as u64);
            match &entry.cache {
                None => enc.bool(false),
                Some(cache) => {
                    enc.bool(true);
                    enc.varint_usize(cache.len());
                    for &id in cache {
                        enc.varint(u64::from(id));
                    }
                }
            }
        }
    }

    /// Rebuild an index from [`NeighborIndex::encode_into`] output,
    /// fetching each entry's bytes through `lookup` (the corpus store).
    /// Histograms and the length window are recomputed under the restored
    /// alphabet assignment; memoized neighborhoods are restored verbatim,
    /// so a resumed index answers exactly like the one that was saved —
    /// zero recomputed queries.
    ///
    /// Structural impossibilities (unknown slots, symbols outside the
    /// restored alphabet, caches naming dead entries) are rejected as
    /// [`SnapshotError::Corrupt`]; the caller falls back to rebuilding
    /// from the store.
    pub fn decode_from<F>(dec: &mut Decoder<'_>, lookup: F) -> Result<Self, SnapshotError>
    where
        F: Fn(SampleId) -> Option<Arc<[u8]>>,
    {
        Self::decode_from_versioned(dec, kizzle_snapshot::FORMAT_VERSION, lookup)
    }

    /// Like [`NeighborIndex::decode_from`], but decoding the slot run and
    /// cache lists under an explicit container format version: version 1
    /// carries both as plain absolute varint ids, version 2 as gap lists.
    pub fn decode_from_versioned<F>(
        dec: &mut Decoder<'_>,
        version: u32,
        lookup: F,
    ) -> Result<Self, SnapshotError>
    where
        F: Fn(SampleId) -> Option<Arc<[u8]>>,
    {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("neighbor index: {what}"));
        let eps = dec.f64()?;
        if !(eps >= 0.0 && eps.is_finite()) {
            return Err(corrupt("eps out of range"));
        }
        let width = dec.varint_usize()?;
        if width > 256 {
            return Err(corrupt("alphabet width exceeds 256"));
        }
        let mut slot_of = [UNASSIGNED; 256];
        let mut seen_hist_slot = vec![false; width];
        for assigned in &mut slot_of {
            let value = dec.u16()?;
            if value != UNASSIGNED {
                let idx = value as usize;
                if idx >= width || seen_hist_slot[idx] {
                    return Err(corrupt("alphabet slot out of range or duplicated"));
                }
                seen_hist_slot[idx] = true;
            }
            *assigned = value;
        }
        if !seen_hist_slot.iter().all(|&s| s) {
            return Err(corrupt("alphabet slot unassigned below width"));
        }

        let mut index = NeighborIndex::new(eps);
        index.slot_of = slot_of;
        index.width = width;

        // Pass 1 — structural decode: in v2, slots come as ascending
        // varint gaps (duplicates are unrepresentable) and caches as gap
        // lists (strict ascension is structural there too); in v1 both are
        // plain absolute id runs, so ascension is *validated* instead.
        let gap_encoded = version >= 2;
        type DecodedEntry = (u32, Arc<[u8]>, Option<Vec<u32>>);
        let live_count = dec.varint_usize()?;
        let mut decoded: Vec<DecodedEntry> = Vec::with_capacity(live_count.min(1 << 20));
        let mut prev_slot: Option<u32> = None;
        for _ in 0..live_count {
            let raw = dec.varint()?;
            let slot = match prev_slot {
                None => Some(raw),
                Some(_) if !gap_encoded => Some(raw),
                Some(p) => raw.checked_add(1).and_then(|g| u64::from(p).checked_add(g)),
            }
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| corrupt("slot exceeds u32"))?;
            if !gap_encoded && prev_slot.is_some_and(|p| slot <= p) {
                return Err(corrupt("v1 slots not strictly ascending"));
            }
            prev_slot = Some(slot);
            let data =
                lookup(SampleId::new(slot)).ok_or_else(|| corrupt("entry without sample bytes"))?;
            let cache = if dec.bool()? {
                if gap_encoded {
                    Some(dec.gap_list()?)
                } else {
                    let count = dec.varint_usize()?;
                    let mut ids = Vec::with_capacity(count.min(1 << 20));
                    for _ in 0..count {
                        let id = u32::try_from(dec.varint()?)
                            .map_err(|_| corrupt("v1 cache id exceeds u32"))?;
                        if ids.last().is_some_and(|&p| id <= p) {
                            return Err(corrupt("v1 cache ids not strictly ascending"));
                        }
                        ids.push(id);
                    }
                    Some(ids)
                }
            } else {
                None
            };
            decoded.push((slot, data, cache));
        }

        // Pass 2 — recompute every histogram under the *restored* alphabet
        // assignment, in parallel (the per-entry scans are independent and
        // dominate decode at large corpora). A symbol outside the restored
        // alphabet means the sections do not belong together.
        let slot_table = index.slot_of;
        let hists: Vec<Option<Vec<u32>>> = decoded
            .par_iter()
            .map(|(_, data, _)| {
                let mut hist = vec![0u32; width];
                for &sym in data.iter() {
                    let hist_slot = slot_table[sym as usize];
                    if hist_slot == UNASSIGNED {
                        return None;
                    }
                    hist[hist_slot as usize] += 1;
                }
                Some(hist)
            })
            .collect();

        // Pass 3 — assemble live entries, then attach caches (they may
        // reference entries decoded later, so validation runs once every
        // entry exists).
        for ((slot, data, _), hist) in decoded.iter().zip(hists) {
            let hist = hist.ok_or_else(|| corrupt("sample symbol outside restored alphabet"))?;
            let slot = *slot as usize;
            if index.entries.len() <= slot {
                index.entries.resize(slot + 1, None);
            }
            index.by_len.insert((data.len(), slot as u32));
            index.entries[slot] = Some(IndexEntry {
                data: Arc::clone(data),
                hist,
                cache: None,
            });
            index.live += 1;
        }
        // Caches may only name live entries, never the entry itself —
        // anything else would poison DBSCAN.
        for (slot, _, cache) in decoded {
            let Some(cache) = cache else { continue };
            if cache
                .iter()
                .any(|&n| n == slot || index.entries.get(n as usize).is_none_or(|e| e.is_none()))
            {
                return Err(corrupt("cached neighborhood names a dead entry"));
            }
            index.entries[slot as usize]
                .as_mut()
                .expect("inserted above")
                .cache = Some(cache);
        }
        Ok(index)
    }

    /// Every entry's neighborhood for a freshly [`build`](Self::build)-style
    /// index over `n` dense slots, as `usize` lists for the DBSCAN driver.
    /// `result[i]` is ascending and excludes `i`.
    ///
    /// # Panics
    ///
    /// Panics if slots `0..n` are not all live.
    #[must_use]
    pub fn dense_neighborhoods(&mut self, n: usize) -> Vec<Vec<usize>> {
        let ids: Vec<SampleId> = (0..n)
            .map(|i| SampleId::new(u32::try_from(i).expect("dense slot fits u32")))
            .collect();
        self.ensure_cached(&ids);
        ids.iter()
            .map(|id| {
                self.cached_slots(id.raw())
                    .iter()
                    .map(|&slot| slot as usize)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::normalized_edit_distance_bounded;

    fn ball(index: &mut NeighborIndex, i: u32) -> Vec<usize> {
        index
            .neighbors(SampleId::new(i))
            .into_iter()
            .map(|id| id.raw() as usize)
            .collect()
    }

    fn brute_force_neighbors(samples: &[Vec<u8>], eps: f64, i: usize) -> Vec<usize> {
        (0..samples.len())
            .filter(|&j| {
                j != i
                    && normalized_edit_distance_bounded(&samples[i], &samples[j], eps)
                        .unwrap_or(1.0)
                        <= eps
            })
            .collect()
    }

    fn family_corpus() -> Vec<Vec<u8>> {
        let mut samples: Vec<Vec<u8>> = Vec::new();
        let bases: Vec<Vec<u8>> = vec![
            (0..120).map(|i| (i % 5) as u8).collect(),
            (0..150).map(|i| ((i * 3) % 6) as u8).collect(),
            (0..40).map(|i| ((i * 7 + 1) % 4) as u8).collect(),
        ];
        for base in &bases {
            for v in 0..6usize {
                let mut s = base.clone();
                for k in 0..(s.len() / 40) {
                    let pos = (v * 13 + k * 17) % s.len();
                    s[pos] = (s[pos] + 1) % 6;
                }
                s.truncate(s.len() - v % 3);
                samples.push(s);
            }
        }
        samples.push(Vec::new());
        samples.push(Vec::new());
        samples.push(vec![9; 300]);
        samples
    }

    #[test]
    fn matches_brute_force_on_family_corpus() {
        let samples = family_corpus();
        let mut index = NeighborIndex::build(&samples, 0.10);
        for i in 0..samples.len() {
            assert_eq!(
                ball(&mut index, i as u32),
                brute_force_neighbors(&samples, 0.10, i),
                "query {i}"
            );
        }
    }

    #[test]
    fn build_memoizes_every_neighborhood() {
        let samples = family_corpus();
        let mut index = NeighborIndex::build(&samples, 0.10);
        let stats = index.take_stats();
        assert_eq!(stats.queries, samples.len());
        assert_eq!(stats.cache_hits, 0);
        // Reads after the build are pure cache hits.
        let _ = ball(&mut index, 0);
        let stats = index.take_stats();
        assert_eq!(stats.queries, 0);
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let samples = family_corpus();
        let mut incremental = NeighborIndex::new(0.10);
        for (i, s) in samples.iter().enumerate() {
            incremental.insert(SampleId::new(i as u32), Arc::from(&s[..]));
        }
        let mut batch = NeighborIndex::build(&samples, 0.10);
        for i in 0..samples.len() {
            assert_eq!(
                ball(&mut incremental, i as u32),
                ball(&mut batch, i as u32),
                "query {i}"
            );
        }
    }

    #[test]
    fn remove_prunes_neighbor_caches() {
        let samples = family_corpus();
        let mut index = NeighborIndex::build(&samples, 0.10);
        // Remove the first family member; everyone else's neighborhoods
        // must match a brute force over the surviving corpus.
        assert!(index.remove(SampleId::new(0)));
        assert!(!index.contains(SampleId::new(0)));
        assert!(!index.remove(SampleId::new(0)));
        let survivors: Vec<Vec<u8>> = samples[1..].to_vec();
        for i in 1..samples.len() {
            let expected: Vec<usize> = brute_force_neighbors(&survivors, 0.10, i - 1)
                .into_iter()
                .map(|j| j + 1)
                .collect();
            assert_eq!(ball(&mut index, i as u32), expected, "query {i}");
        }
    }

    #[test]
    fn reinsertion_into_freed_slot_works() {
        let samples = family_corpus();
        let mut index = NeighborIndex::build(&samples, 0.10);
        index.remove(SampleId::new(2));
        index.insert(SampleId::new(2), Arc::from(&samples[2][..]));
        for i in 0..samples.len() {
            assert_eq!(
                ball(&mut index, i as u32),
                brute_force_neighbors(&samples, 0.10, i),
                "query {i}"
            );
        }
    }

    #[test]
    fn external_query_matches_member_neighborhoods() {
        let samples = family_corpus();
        let mut index = NeighborIndex::build(&samples, 0.10);
        // Querying with a member's own bytes returns its neighborhood plus
        // itself (no exclusion for external queries).
        let hits: Vec<usize> = index
            .query(&samples[0])
            .into_iter()
            .map(|id| id.raw() as usize)
            .collect();
        let mut expected = brute_force_neighbors(&samples, 0.10, 0);
        expected.push(0);
        expected.sort_unstable();
        assert_eq!(hits, expected);
        // A query with symbols outside the observed alphabet still answers
        // exactly (the unknown counts feed the L1 lower bound).
        let alien = vec![200u8; 120];
        let hits = index.query(&alien);
        let expected: Vec<usize> = (0..samples.len())
            .filter(|&j| {
                normalized_edit_distance_bounded(&alien, &samples[j], 0.10).unwrap_or(1.0) <= 0.10
            })
            .collect();
        assert_eq!(
            hits.into_iter()
                .map(|id| id.raw() as usize)
                .collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn pruning_actually_rejects_pairs() {
        let samples = family_corpus();
        let n = samples.len();
        let mut index = NeighborIndex::build(&samples, 0.10);
        let stats = index.take_stats();
        let all_ordered_pairs = n * (n - 1);
        assert!(
            stats.window_candidates < all_ordered_pairs,
            "length window pruned nothing: {stats:?}"
        );
        assert!(
            stats.distance_calls <= stats.window_candidates,
            "stats inconsistent: {stats:?}"
        );
    }

    #[test]
    fn empty_inputs() {
        let samples: Vec<Vec<u8>> = Vec::new();
        let mut index = NeighborIndex::build(&samples, 0.10);
        assert!(index.is_empty());
        assert!(index.dense_neighborhoods(0).is_empty());
        assert_eq!(index.take_stats(), IndexStats::default());
    }

    #[test]
    fn empty_strings_are_mutual_neighbors() {
        let samples: Vec<Vec<u8>> = vec![Vec::new(), Vec::new(), vec![1, 2, 3]];
        let mut index = NeighborIndex::build(&samples, 0.10);
        assert_eq!(ball(&mut index, 0), vec![1]);
        assert_eq!(ball(&mut index, 1), vec![0]);
        assert!(ball(&mut index, 2).is_empty());
    }

    #[test]
    fn eps_one_accepts_everything() {
        let samples: Vec<Vec<u8>> = vec![vec![1], vec![2, 2, 2], vec![3; 10]];
        let mut index = NeighborIndex::build(&samples, 1.0);
        for i in 0..samples.len() {
            assert_eq!(
                ball(&mut index, i as u32),
                brute_force_neighbors(&samples, 1.0, i),
                "query {i}"
            );
        }
    }
}
