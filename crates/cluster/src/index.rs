//! Candidate-pruning neighbor index for token-string DBSCAN.
//!
//! The naive neighborhood query compares a sample against all `n − 1`
//! others with the banded edit distance. At the paper's `eps = 0.10` almost
//! all of those comparisons are wasted: two strings can only be within
//! normalized distance 0.10 when their lengths differ by ≤ 10%, and even
//! inside that window most pairs differ in far more than 10% of their token
//! multiset. This index exploits both facts with a chain of ever-more
//! expensive filters:
//!
//! 1. **Length window** — samples are sorted by length once; a query only
//!    scans the contiguous slice whose lengths satisfy the normalized
//!    length-difference bound. `O(log n)` to locate, nothing at all spent
//!    on samples outside the window.
//! 2. **Token-class histogram L1 bound** — per sample the index stores a
//!    compact histogram over the observed token alphabet. Each unit edit
//!    changes the histogram L1 distance by at most 2, so
//!    `⌈L1 / 2⌉ > max_edits` rejects a pair in `O(alphabet)` (the token
//!    alphabet has ~a dozen classes) instead of `O(len²)`.
//! 3. **Bit-parallel bounded edit distance** — survivors meet Myers'
//!    algorithm ([`BitParallelPattern`]), with the pattern preprocessing
//!    amortized across the whole candidate slice of one query.
//!
//! The accept decision reproduces
//! [`normalized_edit_distance_bounded`](crate::distance::normalized_edit_distance_bounded)
//! `≤ eps` bit-for-bit (same `max_edits` floor, same final normalized
//! comparison), so [`dbscan_indexed`](crate::dbscan::dbscan_indexed) is
//! label-identical to the naive [`dbscan`](crate::dbscan::dbscan) — a
//! property test in `tests/indexed_properties.rs` holds it to that.

use crate::distance::BitParallelPattern;
use rayon::prelude::*;

/// Work counters from index queries, for observability and the PERF.md
/// pruning-efficiency numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of neighborhood queries served.
    pub queries: usize,
    /// Ordered candidate pairs that survived the length window.
    pub window_candidates: usize,
    /// Pairs rejected by the histogram L1 lower bound.
    pub pruned_by_histogram: usize,
    /// Pairs that reached the bit-parallel edit distance.
    pub distance_calls: usize,
    /// Pairs accepted as neighbors.
    pub neighbors_found: usize,
}

impl IndexStats {
    /// Accumulate another query's counters.
    pub fn merge(&mut self, other: &IndexStats) {
        self.queries += other.queries;
        self.window_candidates += other.window_candidates;
        self.pruned_by_histogram += other.pruned_by_histogram;
        self.distance_calls += other.distance_calls;
        self.neighbors_found += other.neighbors_found;
    }
}

/// A neighbor index over a fixed set of token strings at a fixed `eps`.
#[derive(Debug, Clone)]
pub struct NeighborIndex<'a, S> {
    samples: &'a [S],
    eps: f64,
    /// Sample indices sorted by `(length, index)`.
    by_len: Vec<usize>,
    /// Lengths parallel to `by_len` (dense, cache-friendly scan).
    lens: Vec<usize>,
    /// Rank of each sample in `by_len` (inverse permutation).
    rank: Vec<usize>,
    /// Compact histogram per sample over the observed alphabet,
    /// concatenated: sample `i` owns `histograms[i * width..(i+1) * width]`.
    histograms: Vec<u32>,
    /// Histogram width: number of distinct symbols observed in the corpus.
    width: usize,
}

/// `max_edits` for a pair whose longer string has `max_len` tokens —
/// exactly the floor used by `normalized_edit_distance_bounded`.
fn max_edits(eps: f64, max_len: usize) -> usize {
    (eps * max_len as f64).floor() as usize
}

/// The naive accept predicate on lengths alone: normalized length
/// difference within `eps`.
fn length_compatible(eps: f64, a: usize, b: usize) -> bool {
    let max_len = a.max(b);
    if max_len == 0 {
        return true;
    }
    a.abs_diff(b) as f64 / max_len as f64 <= eps
}

impl<'a, S: AsRef<[u8]> + Sync> NeighborIndex<'a, S> {
    /// Build the index: sort by length and precompute histograms.
    ///
    /// Costs `O(n log n + total_tokens)`; the index borrows `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or NaN.
    #[must_use]
    pub fn build(samples: &'a [S], eps: f64) -> Self {
        assert!(eps >= 0.0 && eps.is_finite(), "eps must be a non-negative number");
        let n = samples.len();
        let mut by_len: Vec<usize> = (0..n).collect();
        by_len.sort_unstable_by_key(|&i| (samples[i].as_ref().len(), i));
        let lens: Vec<usize> = by_len.iter().map(|&i| samples[i].as_ref().len()).collect();
        let mut rank = vec![0usize; n];
        for (pos, &i) in by_len.iter().enumerate() {
            rank[i] = pos;
        }

        // Observed alphabet → compact histogram slots.
        let mut slot_of = [usize::MAX; 256];
        let mut width = 0usize;
        for sample in samples {
            for &sym in sample.as_ref() {
                if slot_of[sym as usize] == usize::MAX {
                    slot_of[sym as usize] = width;
                    width += 1;
                }
            }
        }
        let mut histograms = vec![0u32; n * width];
        for (i, sample) in samples.iter().enumerate() {
            let hist = &mut histograms[i * width..(i + 1) * width];
            for &sym in sample.as_ref() {
                hist[slot_of[sym as usize]] += 1;
            }
        }

        NeighborIndex {
            samples,
            eps,
            by_len,
            lens,
            rank,
            histograms,
            width,
        }
    }

    /// Number of indexed samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the index holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `eps` the index was built for.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Histogram L1 distance between samples `i` and `j`, in `O(width)`.
    fn histogram_l1(&self, i: usize, j: usize) -> u32 {
        let a = &self.histograms[i * self.width..(i + 1) * self.width];
        let b = &self.histograms[j * self.width..(j + 1) * self.width];
        a.iter().zip(b).map(|(x, y)| x.abs_diff(*y)).sum()
    }

    /// All samples within normalized edit distance `eps` of sample `i`
    /// (excluding `i` itself), ascending, plus the query's work counters.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn neighbors_with_stats(&self, i: usize) -> (Vec<usize>, IndexStats) {
        let mut stats = IndexStats {
            queries: 1,
            ..IndexStats::default()
        };
        let query = self.samples[i].as_ref();
        let query_len = query.len();
        // Built lazily: queries whose whole length window is pruned (most
        // benign one-offs) never pay the O(256·blocks) pattern setup.
        let mut pattern: Option<BitParallelPattern> = None;
        let mut neighbors = Vec::new();

        // Conservative start of the length window (one short of the integer
        // bound; the exact float predicate re-checks each candidate).
        let window_min = query_len.saturating_sub(max_edits(self.eps, query_len) + 1);
        let start = self.lens.partition_point(|&len| len < window_min);
        for pos in start..self.lens.len() {
            let cand_len = self.lens[pos];
            if !length_compatible(self.eps, query_len, cand_len) {
                if cand_len > query_len {
                    // (M − L) / M grows with M: every longer candidate
                    // fails too.
                    break;
                }
                // Below the exact bound but inside the conservative slack.
                continue;
            }
            let j = self.by_len[pos];
            if j == i {
                continue;
            }
            stats.window_candidates += 1;

            let max_len = query_len.max(cand_len);
            if max_len == 0 {
                // Two empty strings: distance 0.
                neighbors.push(j);
                stats.neighbors_found += 1;
                continue;
            }
            let budget = max_edits(self.eps, max_len);
            // Each edit moves the histogram L1 by at most 2.
            let l1_lower = (self.histogram_l1(i, j) as usize).div_ceil(2);
            if l1_lower > budget {
                stats.pruned_by_histogram += 1;
                continue;
            }
            stats.distance_calls += 1;
            let pattern = pattern.get_or_insert_with(|| BitParallelPattern::new(query));
            if let Some(d) = pattern.distance_bounded(self.samples[j].as_ref(), budget) {
                // Final normalized comparison, identical to the naive path.
                if d as f64 / max_len as f64 <= self.eps {
                    neighbors.push(j);
                    stats.neighbors_found += 1;
                }
            }
        }
        neighbors.sort_unstable();
        (neighbors, stats)
    }

    /// All samples within `eps` of sample `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        self.neighbors_with_stats(i).0
    }

    /// Every sample's neighborhood, computed in parallel (rayon) and
    /// returned with the aggregated work counters. `result[i]` is ascending
    /// and excludes `i`.
    #[must_use]
    pub fn neighborhoods(&self) -> (Vec<Vec<usize>>, IndexStats) {
        let per_query: Vec<(Vec<usize>, IndexStats)> = self
            .samples
            .par_iter()
            .enumerate()
            .map(|(i, _)| self.neighbors_with_stats(i))
            .collect();
        let mut stats = IndexStats::default();
        let mut neighborhoods = Vec::with_capacity(per_query.len());
        for (neighbors, query_stats) in per_query {
            stats.merge(&query_stats);
            neighborhoods.push(neighbors);
        }
        (neighborhoods, stats)
    }

    /// Rank of sample `i` in the length-sorted order (exposed for tests and
    /// diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn length_rank(&self, i: usize) -> usize {
        self.rank[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::normalized_edit_distance_bounded;

    fn brute_force_neighbors(samples: &[Vec<u8>], eps: f64, i: usize) -> Vec<usize> {
        (0..samples.len())
            .filter(|&j| {
                j != i
                    && normalized_edit_distance_bounded(&samples[i], &samples[j], eps)
                        .unwrap_or(1.0)
                        <= eps
            })
            .collect()
    }

    fn family_corpus() -> Vec<Vec<u8>> {
        let mut samples: Vec<Vec<u8>> = Vec::new();
        let bases: Vec<Vec<u8>> = vec![
            (0..120).map(|i| (i % 5) as u8).collect(),
            (0..150).map(|i| ((i * 3) % 6) as u8).collect(),
            (0..40).map(|i| ((i * 7 + 1) % 4) as u8).collect(),
        ];
        for base in &bases {
            for v in 0..6usize {
                let mut s = base.clone();
                for k in 0..(s.len() / 40) {
                    let pos = (v * 13 + k * 17) % s.len();
                    s[pos] = (s[pos] + 1) % 6;
                }
                s.truncate(s.len() - v % 3);
                samples.push(s);
            }
        }
        samples.push(Vec::new());
        samples.push(Vec::new());
        samples.push(vec![9; 300]);
        samples
    }

    #[test]
    fn matches_brute_force_on_family_corpus() {
        let samples = family_corpus();
        let index = NeighborIndex::build(&samples, 0.10);
        for i in 0..samples.len() {
            assert_eq!(
                index.neighbors(i),
                brute_force_neighbors(&samples, 0.10, i),
                "query {i}"
            );
        }
    }

    #[test]
    fn parallel_neighborhoods_agree_with_serial() {
        let samples = family_corpus();
        let index = NeighborIndex::build(&samples, 0.10);
        let (neighborhoods, stats) = index.neighborhoods();
        assert_eq!(neighborhoods.len(), samples.len());
        assert_eq!(stats.queries, samples.len());
        for (i, neighbors) in neighborhoods.iter().enumerate() {
            assert_eq!(*neighbors, index.neighbors(i), "query {i}");
        }
    }

    #[test]
    fn pruning_actually_rejects_pairs() {
        let samples = family_corpus();
        let n = samples.len();
        let index = NeighborIndex::build(&samples, 0.10);
        let (_, stats) = index.neighborhoods();
        let all_ordered_pairs = n * (n - 1);
        assert!(
            stats.window_candidates < all_ordered_pairs,
            "length window pruned nothing: {stats:?}"
        );
        assert!(
            stats.distance_calls <= stats.window_candidates,
            "stats inconsistent: {stats:?}"
        );
    }

    #[test]
    fn empty_inputs() {
        let samples: Vec<Vec<u8>> = Vec::new();
        let index = NeighborIndex::build(&samples, 0.10);
        assert!(index.is_empty());
        let (neighborhoods, stats) = index.neighborhoods();
        assert!(neighborhoods.is_empty());
        assert_eq!(stats, IndexStats::default());
    }

    #[test]
    fn empty_strings_are_mutual_neighbors() {
        let samples: Vec<Vec<u8>> = vec![Vec::new(), Vec::new(), vec![1, 2, 3]];
        let index = NeighborIndex::build(&samples, 0.10);
        assert_eq!(index.neighbors(0), vec![1]);
        assert_eq!(index.neighbors(1), vec![0]);
        assert!(index.neighbors(2).is_empty());
    }

    #[test]
    fn eps_one_accepts_everything() {
        let samples: Vec<Vec<u8>> = vec![vec![1], vec![2, 2, 2], vec![3; 10]];
        let index = NeighborIndex::build(&samples, 1.0);
        for i in 0..samples.len() {
            assert_eq!(
                index.neighbors(i),
                brute_force_neighbors(&samples, 1.0, i),
                "query {i}"
            );
        }
    }

    #[test]
    fn length_rank_is_the_sorted_position() {
        let samples: Vec<Vec<u8>> = vec![vec![0; 10], vec![0; 2], vec![0; 5]];
        let index = NeighborIndex::build(&samples, 0.10);
        assert_eq!(index.length_rank(1), 0);
        assert_eq!(index.length_rank(2), 1);
        assert_eq!(index.length_rank(0), 2);
    }
}
