//! # kizzle-cluster — sample clustering for the Kizzle pipeline
//!
//! Kizzle clusters incoming grayware samples on their *abstract token
//! strings* (paper §III-A): it partitions the daily batch across machines,
//! runs **DBSCAN** (Ester et al., KDD'96) inside each partition using the
//! **normalized edit distance** between token strings (threshold 0.10), and
//! then reconciles the per-partition clusters in a reduce step.
//!
//! This crate provides each of those pieces:
//!
//! * [`distance`] — Levenshtein edit distance: a banded early-exit
//!   variant, a Myers-style bit-parallel bounded kernel
//!   ([`BitParallelPattern`]), and the normalized form used by the paper.
//! * [`index`] — the incremental [`NeighborIndex`]: length-window +
//!   histogram-lower-bound candidate pruning with parallel neighborhood
//!   queries, in-place insert/remove, and maintained (not recomputed)
//!   memoized neighborhoods — the engine behind [`dbscan_indexed`].
//! * [`store`] — the [`CorpusStore`]: token class-strings under stable
//!   [`SampleId`]s with content dedup and stamp-based retirement.
//! * [`engine`] — the [`CorpusEngine`]: store + index threaded through
//!   consecutive days, clustering any day view byte-identically to a cold
//!   one-shot run while only the churned fraction pays query cost.
//! * [`dbscan`](mod@dbscan) — a generic DBSCAN over any distance function, plus the
//!   indexed variant that is label-identical and vastly faster on token
//!   strings.
//! * [`clustering`] — cluster bookkeeping: members, medoid prototypes,
//!   summary statistics.
//! * [`distributed`] — the partition → cluster → reduce dataflow, run on
//!   a rayon-parallel map to stand in for the paper's 50-machine
//!   deployment, with reduce-side reconciliation routed through a
//!   [`NeighborIndex`] instead of all-pairs prototype scans.
//!
//! ## Example
//!
//! ```
//! use kizzle_cluster::{dbscan::DbscanParams, distance::normalized_edit_distance, dbscan::dbscan};
//!
//! // Three near-identical token strings and one outlier.
//! let samples: Vec<Vec<u8>> = vec![
//!     vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
//!     vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 11],
//!     vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
//!     vec![9, 9, 9, 9, 1, 1, 1, 1, 2, 2],
//! ];
//! let params = DbscanParams::new(0.10, 2);
//! let result = dbscan(&samples, &params, |a, b| normalized_edit_distance(a, b));
//! assert_eq!(result.cluster_count(), 1);
//! assert!(result.is_noise(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod dbscan;
pub mod distance;
pub mod distributed;
pub mod engine;
pub mod index;
pub mod store;

pub use clustering::{Cluster, Clustering};
pub use dbscan::{
    dbscan, dbscan_indexed, dbscan_with_neighborhoods, DbscanParams, DbscanResult, Label,
};
pub use distance::{
    edit_distance, edit_distance_bitparallel_bounded, edit_distance_bounded,
    normalized_edit_distance, BitParallelPattern,
};
pub use distributed::{partition_key, DistributedClusterer, DistributedConfig, DistributedStats};
pub use engine::{
    CorpusEngine, PreparedDay, ResumeReport, ENGINE_CHAIN_PREFIX, INDEX_SECTION, STORE_SECTION,
};
pub use index::{IndexStats, NeighborIndex};
pub use store::{CorpusStore, SampleId};
