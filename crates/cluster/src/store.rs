//! Persistent corpus store: token class-strings under stable sample ids.
//!
//! The daily Kizzle deployment sees heavily overlapping corpora — most of a
//! day's grayware was already crawled the day before. A stateless pipeline
//! re-tokenizes and re-indexes those samples from scratch every day; the
//! [`CorpusStore`] is the layer that makes the warm path possible. It owns
//! each sample's token class-string behind a cheap-to-share [`Arc`], hands
//! out a stable [`SampleId`] for it, and deduplicates by content: re-adding
//! yesterday's bytes *touches* the existing entry (refreshing its stamp)
//! instead of allocating a new one, which is what lets the
//! [`NeighborIndex`](crate::index::NeighborIndex) keep its memoized
//! neighborhoods for the unchanged fraction of the corpus.
//!
//! Entries carry a caller-defined monotone `stamp` (the pipeline uses the
//! absolute day number); [`CorpusStore::older_than`] drives the retirement
//! of samples that have aged out of the retention window.

use kizzle_snapshot::{Decoder, Encoder, SnapshotError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

/// Stable handle to one stored sample.
///
/// Ids are allocated by [`CorpusStore::add`] and stay valid until the entry
/// is removed; a removed id's slot may later be reused for a new sample.
/// When driving a [`NeighborIndex`](crate::index::NeighborIndex) without a
/// store (tests, benches, the reduce step's throwaway prototype indexes),
/// ids can be minted directly with [`SampleId::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleId(u32);

impl SampleId {
    /// Make an id from a raw slot number (caller-managed id space).
    #[must_use]
    pub fn new(raw: u32) -> Self {
        SampleId(raw)
    }

    /// The raw slot number.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone)]
struct StoreEntry {
    data: Arc<[u8]>,
    stamp: u64,
    hash: u64,
    /// Content-stable partition key ([`crate::partition_key`]), computed
    /// once here — content is immutable per id, so the daily partitioning
    /// pass looks keys up instead of re-hashing every live sample.
    key: u64,
}

/// Owns token class-strings under stable [`SampleId`]s, with content
/// deduplication and stamp-based retirement.
#[derive(Debug, Clone, Default)]
pub struct CorpusStore {
    /// Slot `i` backs `SampleId(i)`.
    slots: Vec<Option<StoreEntry>>,
    /// Slots freed by removal, reused before the vector grows.
    free: Vec<u32>,
    /// Content hash → slots holding data with that hash (collisions are
    /// resolved by comparing bytes).
    by_hash: HashMap<u64, Vec<u32>>,
    live: usize,
}

fn content_hash(data: &[u8]) -> u64 {
    let mut hasher = DefaultHasher::new();
    hasher.write(data);
    hasher.finish()
}

impl CorpusStore {
    /// Create an empty store.
    #[must_use]
    pub fn new() -> Self {
        CorpusStore::default()
    }

    /// Number of live samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if `id` refers to a live sample.
    #[must_use]
    pub fn contains(&self, id: SampleId) -> bool {
        self.slots
            .get(id.raw() as usize)
            .is_some_and(Option::is_some)
    }

    /// The class-string behind `id`, if live.
    #[must_use]
    pub fn get(&self, id: SampleId) -> Option<&[u8]> {
        self.slots
            .get(id.raw() as usize)?
            .as_ref()
            .map(|e| &*e.data)
    }

    /// Shared handle to the class-string behind `id`, if live.
    #[must_use]
    pub fn data(&self, id: SampleId) -> Option<Arc<[u8]>> {
        self.slots
            .get(id.raw() as usize)?
            .as_ref()
            .map(|e| Arc::clone(&e.data))
    }

    /// The stamp last recorded for `id`, if live.
    #[must_use]
    pub fn stamp(&self, id: SampleId) -> Option<u64> {
        self.slots.get(id.raw() as usize)?.as_ref().map(|e| e.stamp)
    }

    /// The content-stable partition key of `id`, if live — computed once
    /// at insert ([`crate::partition_key`] over the sample bytes).
    #[must_use]
    pub fn partition_key(&self, id: SampleId) -> Option<u64> {
        self.slots.get(id.raw() as usize)?.as_ref().map(|e| e.key)
    }

    /// Partition keys and shared data handles for a dense day view, in
    /// view order — one locked pass for the seal's capture phase instead
    /// of two per-id lookup loops. The returned Arcs pin the day's bytes
    /// independently of the store, so a prepared day survives retirement.
    ///
    /// # Panics
    ///
    /// Panics if any id is not live.
    #[must_use]
    pub fn day_view(&self, ids: &[SampleId]) -> (Vec<u64>, Vec<Arc<[u8]>>) {
        let mut keys = Vec::with_capacity(ids.len());
        let mut data = Vec::with_capacity(ids.len());
        for &id in ids {
            let entry = self
                .slots
                .get(id.raw() as usize)
                .and_then(Option::as_ref)
                .expect("day id is live");
            keys.push(entry.key);
            data.push(Arc::clone(&entry.data));
        }
        (keys, data)
    }

    /// Add a sample, deduplicating by content.
    ///
    /// If a live entry already holds identical bytes, its stamp is raised to
    /// `stamp` (never lowered) and `(existing_id, true)` is returned — the
    /// caller must *not* re-index it. Otherwise a fresh entry is created and
    /// `(new_id, false)` comes back.
    pub fn add(&mut self, stamp: u64, data: &[u8]) -> (SampleId, bool) {
        let hash = content_hash(data);
        if let Some(slots) = self.by_hash.get(&hash) {
            for &slot in slots {
                let entry = self.slots[slot as usize]
                    .as_mut()
                    .expect("by_hash only lists live slots");
                if *entry.data == *data {
                    entry.stamp = entry.stamp.max(stamp);
                    return (SampleId(slot), true);
                }
            }
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("store exceeds u32 slots");
                self.slots.push(None);
                slot
            }
        };
        self.slots[slot as usize] = Some(StoreEntry {
            data: Arc::from(data),
            stamp,
            hash,
            key: crate::partition_key(data),
        });
        self.by_hash.entry(hash).or_default().push(slot);
        self.live += 1;
        (SampleId(slot), false)
    }

    /// Remove a sample, returning its data if it was live.
    pub fn remove(&mut self, id: SampleId) -> Option<Arc<[u8]>> {
        let entry = self.slots.get_mut(id.raw() as usize)?.take()?;
        if let Some(slots) = self.by_hash.get_mut(&entry.hash) {
            slots.retain(|&s| s != id.raw());
            if slots.is_empty() {
                self.by_hash.remove(&entry.hash);
            }
        }
        self.free.push(id.raw());
        self.live -= 1;
        Some(entry.data)
    }

    /// Ids of live samples whose stamp is strictly below `cutoff`,
    /// ascending. The retirement sweep of the incremental engine.
    #[must_use]
    pub fn older_than(&self, cutoff: u64) -> Vec<SampleId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| {
                entry
                    .as_ref()
                    .filter(|e| e.stamp < cutoff)
                    .map(|_| SampleId(slot as u32))
            })
            .collect()
    }

    /// Ids of all live samples, ascending.
    #[must_use]
    pub fn live_ids(&self) -> Vec<SampleId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| entry.as_ref().map(|_| SampleId(slot as u32)))
            .collect()
    }

    /// Serialize the complete store state: every live entry (slot, stamp,
    /// bytes, in ascending slot order) and the free list **in its exact
    /// order** — slot reuse pops from the end, so preserving the order is
    /// what makes a resumed store allocate the same ids a long-lived one
    /// would.
    ///
    /// The ascending live-slot run travels as varint gaps and stamps as
    /// varints (day numbers are small); the free list keeps its order, so
    /// its slots are plain varints, not gaps.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.varint_usize(self.live);
        let mut prev_slot: Option<u32> = None;
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(e) = entry {
                let slot = u32::try_from(slot).expect("slots fit u32");
                match prev_slot {
                    None => enc.varint(u64::from(slot)),
                    Some(p) => enc.varint(u64::from(slot - p) - 1),
                }
                prev_slot = Some(slot);
                enc.varint(e.stamp);
                enc.bytes(&e.data);
            }
        }
        enc.varint_usize(self.free.len());
        for &slot in &self.free {
            enc.varint(u64::from(slot));
        }
    }

    /// The version-1 live-slot encoding: ascending slots written as plain
    /// absolute varints instead of gaps (the pre-chain format this build
    /// still reads). Exists so the v1→v2 upgrade path stays
    /// regression-testable against byte-faithful legacy snapshots;
    /// production saves always gap-encode.
    #[doc(hidden)]
    pub fn encode_into_v1(&self, enc: &mut Encoder) {
        enc.varint_usize(self.live);
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(e) = entry {
                enc.varint(slot as u64);
                enc.varint(e.stamp);
                enc.bytes(&e.data);
            }
        }
        enc.varint_usize(self.free.len());
        for &slot in &self.free {
            enc.varint(u64::from(slot));
        }
    }

    /// Rebuild a store from [`CorpusStore::encode_into`] output. The
    /// content-hash table is derived from the data; structural
    /// inconsistencies (overlapping live/free slots, out-of-range slots,
    /// duplicated content) are rejected as [`SnapshotError::Corrupt`].
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        Self::decode_from_versioned(dec, kizzle_snapshot::FORMAT_VERSION)
    }

    /// Like [`CorpusStore::decode_from`], but decoding the live-slot run
    /// under an explicit container format version: version 1 carries
    /// ascending slots as plain absolute varints, version 2 as gaps.
    /// Loaders get the version from
    /// [`SectionSource::section_version`](kizzle_snapshot::SectionSource::section_version).
    pub fn decode_from_versioned(
        dec: &mut Decoder<'_>,
        version: u32,
    ) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("corpus store: {what}"));
        let gap_encoded = version >= 2;
        let live_count = dec.varint_usize()?;
        let mut live_entries: Vec<(u32, u64, Vec<u8>)> =
            Vec::with_capacity(live_count.min(1 << 20));
        let mut prev_slot: Option<u32> = None;
        for _ in 0..live_count {
            let raw = dec.varint()?;
            let slot = match prev_slot {
                None => Some(raw),
                Some(_) if !gap_encoded => Some(raw),
                Some(p) => raw.checked_add(1).and_then(|g| u64::from(p).checked_add(g)),
            }
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| corrupt("live slot exceeds u32"))?;
            if !gap_encoded && prev_slot.is_some_and(|p| slot <= p) {
                // v1 wrote absolute ids ascending; anything else is not a
                // v1 store section.
                return Err(corrupt("v1 live slots not strictly ascending"));
            }
            prev_slot = Some(slot);
            let stamp = dec.varint()?;
            let data = dec.bytes()?.to_vec();
            live_entries.push((slot, stamp, data));
        }
        let free_count = dec.varint_usize()?;
        let mut free = Vec::with_capacity(free_count.min(1 << 20));
        for _ in 0..free_count {
            let slot =
                u32::try_from(dec.varint()?).map_err(|_| corrupt("free slot exceeds u32"))?;
            free.push(slot);
        }

        // Invariant of the live store: every allocated slot is either live
        // or on the free list, so the slot table length is exactly the sum.
        let slot_count = live_entries.len() + free.len();
        if u32::try_from(slot_count).is_err() {
            return Err(corrupt("slot table exceeds u32"));
        }
        let mut slots: Vec<Option<StoreEntry>> = vec![None; slot_count];
        let mut store = CorpusStore::default();
        let mut claimed = vec![false; slot_count];
        for (slot, stamp, data) in live_entries {
            let idx = slot as usize;
            if idx >= slot_count || claimed[idx] {
                return Err(corrupt("live slot out of range or duplicated"));
            }
            claimed[idx] = true;
            let hash = content_hash(&data);
            let bucket = store.by_hash.entry(hash).or_default();
            if bucket
                .iter()
                .any(|&s| slots[s as usize].as_ref().is_some_and(|e| *e.data == *data))
            {
                // Dedup guarantees live content is unique; a duplicate means
                // the payload was not written by this encoder.
                return Err(corrupt("duplicate live content"));
            }
            bucket.push(slot);
            slots[idx] = Some(StoreEntry {
                data: Arc::from(&data[..]),
                stamp,
                hash,
                key: crate::partition_key(&data),
            });
        }
        for &slot in &free {
            let idx = slot as usize;
            if idx >= slot_count || claimed[idx] {
                return Err(corrupt("free slot out of range or duplicated"));
            }
            claimed[idx] = true;
        }
        store.live = slots.iter().flatten().count();
        store.slots = slots;
        store.free = free;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_remove_roundtrip() {
        let mut store = CorpusStore::new();
        let (a, reused) = store.add(1, b"abc");
        assert!(!reused);
        assert_eq!(store.get(a), Some(&b"abc"[..]));
        assert_eq!(store.stamp(a), Some(1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove(a).as_deref(), Some(&b"abc"[..]));
        assert!(store.is_empty());
        assert_eq!(store.get(a), None);
        assert_eq!(store.remove(a), None);
    }

    #[test]
    fn identical_content_is_deduplicated_and_touched() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"abc");
        let (b, reused) = store.add(5, b"abc");
        assert_eq!(a, b);
        assert!(reused);
        assert_eq!(store.len(), 1);
        // The stamp was refreshed, never lowered.
        assert_eq!(store.stamp(a), Some(5));
        let (_, reused) = store.add(2, b"abc");
        assert!(reused);
        assert_eq!(store.stamp(a), Some(5));
    }

    #[test]
    fn distinct_content_gets_distinct_ids() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"abc");
        let (b, reused) = store.add(1, b"abd");
        assert!(!reused);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"one");
        store.remove(a);
        let (b, reused) = store.add(2, b"two");
        assert!(!reused);
        assert_eq!(a.raw(), b.raw());
        assert_eq!(store.get(b), Some(&b"two"[..]));
        // The recycled slot must no longer answer for the old content.
        let (c, reused) = store.add(3, b"one");
        assert!(!reused);
        assert_ne!(b, c);
    }

    #[test]
    fn older_than_selects_by_stamp() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"one");
        let (b, _) = store.add(2, b"two");
        let (c, _) = store.add(3, b"three");
        assert_eq!(store.older_than(1), vec![]);
        assert_eq!(store.older_than(3), vec![a, b]);
        assert_eq!(store.live_ids(), vec![a, b, c]);
        // A touch rescues an entry from retirement.
        store.add(9, b"one");
        assert_eq!(store.older_than(3), vec![b]);
    }

    #[test]
    fn snapshot_roundtrip_preserves_ids_stamps_and_free_order() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"one");
        let (_b, _) = store.add(2, b"two");
        let (c, _) = store.add(3, b"three");
        let (d, _) = store.add(4, b"four");
        store.remove(a);
        store.remove(c);

        let mut enc = Encoder::new();
        store.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut restored = CorpusStore::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(restored.len(), store.len());
        assert_eq!(restored.live_ids(), store.live_ids());
        assert_eq!(restored.get(d), Some(&b"four"[..]));
        assert_eq!(restored.stamp(d), Some(4));
        // Slot reuse order survives: the original pops c's slot first, then
        // a's — the restored store must allocate identically.
        let (e1, _) = store.add(5, b"five");
        let (e2, _) = restored.add(5, b"five");
        assert_eq!(e1, e2);
        let (f1, _) = store.add(6, b"six");
        let (f2, _) = restored.add(6, b"six");
        assert_eq!(f1, f2);
        // Dedup still recognizes restored content.
        let (g, reused) = restored.add(9, b"two");
        assert!(reused);
        assert_eq!(restored.stamp(g), Some(9));
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"abc");
        store.add(2, b"def");
        store.remove(a);
        let mut enc = Encoder::new();
        store.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        // Truncation surfaces as an error, not a panic.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            if let Ok(restored) = CorpusStore::decode_from(&mut dec) {
                // A prefix that happens to decode must still be
                // structurally sound (finish() would catch slack).
                assert!(restored.len() <= store.len());
            }
        }
    }

    #[test]
    fn empty_sample_is_storable() {
        let mut store = CorpusStore::new();
        let (a, _) = store.add(1, b"");
        let (b, reused) = store.add(2, b"");
        assert_eq!(a, b);
        assert!(reused);
        assert_eq!(store.get(a), Some(&b""[..]));
    }
}
