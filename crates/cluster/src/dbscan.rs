//! DBSCAN density clustering over an arbitrary distance function.
//!
//! Kizzle deliberately uses an off-the-shelf clustering strategy — DBSCAN —
//! so that the end-to-end system can be "built and supported by security
//! engineers and not machine learning experts" (paper §I-A). DBSCAN needs no
//! pre-declared cluster count, tolerates noise (most grayware clusters are
//! benign one-offs), and only requires a pairwise distance, which for Kizzle
//! is the normalized edit distance over token strings.

use crate::index::{IndexStats, NeighborIndex};

/// Cluster assignment of a single sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not yet processed (never returned from [`dbscan`]).
    Unvisited,
    /// Density noise: not reachable from any core point.
    Noise,
    /// Member of the cluster with the given id (0-based, dense).
    Cluster(usize),
}

/// Parameters of the DBSCAN run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius. For Kizzle this is the normalized edit-distance
    /// threshold, 0.10 in the paper.
    pub eps: f64,
    /// Minimum number of samples (including the point itself) for a point to
    /// be a core point.
    pub min_points: usize,
}

impl DbscanParams {
    /// Create DBSCAN parameters.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or NaN, or `min_points` is zero.
    #[must_use]
    pub fn new(eps: f64, min_points: usize) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "eps must be a non-negative number"
        );
        assert!(min_points >= 1, "min_points must be at least 1");
        DbscanParams { eps, min_points }
    }

    /// The paper's operating point: `eps = 0.10`, and a cluster needs at
    /// least 4 samples before Kizzle will consider it (few variants => no
    /// signature yet, which is the false-negative mechanism the paper
    /// describes for Angler on August 13).
    #[must_use]
    pub fn kizzle_default() -> Self {
        DbscanParams::new(0.10, 4)
    }
}

impl Default for DbscanParams {
    fn default() -> Self {
        DbscanParams::kizzle_default()
    }
}

/// The result of a DBSCAN run: one [`Label`] per input sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbscanResult {
    labels: Vec<Label>,
    cluster_count: usize,
}

impl DbscanResult {
    /// Per-sample labels, parallel to the input slice.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of clusters discovered.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Whether sample `i` was classified as noise.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_noise(&self, i: usize) -> bool {
        self.labels[i] == Label::Noise
    }

    /// Indices of the members of cluster `id`.
    #[must_use]
    pub fn members(&self, id: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (*l == Label::Cluster(id)).then_some(i))
            .collect()
    }

    /// Number of noise samples.
    #[must_use]
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Label::Noise).count()
    }
}

/// Run DBSCAN over `samples` with the given `distance` function.
///
/// `distance` must be symmetric and return values comparable against
/// `params.eps`; it may be arbitrarily expensive — it is called at most once
/// per ordered pair per neighborhood query.
///
/// The implementation is the textbook `O(n^2)`-distance-call algorithm with
/// an explicit expansion queue; Kizzle keeps `n` manageable by partitioning
/// the day's samples across machines first (see
/// [`crate::distributed`]).
pub fn dbscan<T, D>(samples: &[T], params: &DbscanParams, distance: D) -> DbscanResult
where
    D: Fn(&T, &T) -> f64,
{
    let n = samples.len();
    let mut labels = vec![Label::Unvisited; n];
    let mut cluster_count = 0usize;

    let neighbors_of = |idx: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| j != idx && distance(&samples[idx], &samples[j]) <= params.eps)
            .collect()
    };

    for start in 0..n {
        if labels[start] != Label::Unvisited {
            continue;
        }
        let neighbors = neighbors_of(start);
        // +1: the point itself counts toward density.
        if neighbors.len() + 1 < params.min_points {
            labels[start] = Label::Noise;
            continue;
        }
        let cluster_id = cluster_count;
        cluster_count += 1;
        labels[start] = Label::Cluster(cluster_id);

        let mut queue: std::collections::VecDeque<usize> = neighbors.into();
        while let Some(p) = queue.pop_front() {
            match labels[p] {
                Label::Cluster(_) => continue,
                Label::Noise => {
                    // Border point: reachable from a core point, adopt it.
                    labels[p] = Label::Cluster(cluster_id);
                    continue;
                }
                Label::Unvisited => {
                    labels[p] = Label::Cluster(cluster_id);
                    let p_neighbors = neighbors_of(p);
                    if p_neighbors.len() + 1 >= params.min_points {
                        for q in p_neighbors {
                            if labels[q] == Label::Unvisited || labels[q] == Label::Noise {
                                queue.push_back(q);
                            }
                        }
                    }
                }
            }
        }
    }

    debug_assert!(labels.iter().all(|l| *l != Label::Unvisited));
    DbscanResult {
        labels,
        cluster_count,
    }
}

/// Run DBSCAN over precomputed neighborhoods.
///
/// `neighborhoods[i]` must list the eps-neighbors of sample `i` (excluding
/// `i` itself) in ascending order; symmetry is the caller's responsibility
/// (an eps-ball query is symmetric by construction). The control flow is
/// identical to [`dbscan`], so for the same neighborhood relation the
/// labels come out identical — this is what makes the indexed engine a
/// drop-in replacement.
#[must_use]
pub fn dbscan_with_neighborhoods(
    neighborhoods: &[Vec<usize>],
    params: &DbscanParams,
) -> DbscanResult {
    let n = neighborhoods.len();
    let mut labels = vec![Label::Unvisited; n];
    let mut cluster_count = 0usize;

    for start in 0..n {
        if labels[start] != Label::Unvisited {
            continue;
        }
        let neighbors = &neighborhoods[start];
        if neighbors.len() + 1 < params.min_points {
            labels[start] = Label::Noise;
            continue;
        }
        let cluster_id = cluster_count;
        cluster_count += 1;
        labels[start] = Label::Cluster(cluster_id);

        let mut queue: std::collections::VecDeque<usize> = neighbors.iter().copied().collect();
        while let Some(p) = queue.pop_front() {
            match labels[p] {
                Label::Cluster(_) => continue,
                Label::Noise => {
                    labels[p] = Label::Cluster(cluster_id);
                    continue;
                }
                Label::Unvisited => {
                    labels[p] = Label::Cluster(cluster_id);
                    let p_neighbors = &neighborhoods[p];
                    if p_neighbors.len() + 1 >= params.min_points {
                        for &q in p_neighbors {
                            if labels[q] == Label::Unvisited || labels[q] == Label::Noise {
                                queue.push_back(q);
                            }
                        }
                    }
                }
            }
        }
    }

    debug_assert!(labels.iter().all(|l| *l != Label::Unvisited));
    DbscanResult {
        labels,
        cluster_count,
    }
}

/// Indexed DBSCAN over token strings: build a [`NeighborIndex`], answer
/// every neighborhood query in parallel through the
/// length-window → histogram → bit-parallel-distance filter chain, then
/// run the standard label assignment.
///
/// Produces labels identical to
/// `dbscan(samples, params, |a, b| normalized_edit_distance_bounded(a, b,
/// params.eps).unwrap_or(1.0))` — the equivalence property test holds it
/// to that — while doing orders of magnitude less distance work.
///
/// Also returns the index work counters for observability.
#[must_use]
pub fn dbscan_indexed<S: AsRef<[u8]> + Sync>(
    samples: &[S],
    params: &DbscanParams,
) -> (DbscanResult, IndexStats) {
    let mut index = NeighborIndex::build(samples, params.eps);
    let neighborhoods = index.dense_neighborhoods(samples.len());
    let stats = index.take_stats();
    (dbscan_with_neighborhoods(&neighborhoods, params), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::normalized_edit_distance;

    fn abs_dist(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn empty_input() {
        let result = dbscan(&[] as &[f64], &DbscanParams::new(1.0, 2), abs_dist);
        assert_eq!(result.cluster_count(), 0);
        assert!(result.labels().is_empty());
    }

    #[test]
    fn single_point_is_noise_unless_min_points_one() {
        let pts = [1.0f64];
        let r = dbscan(&pts, &DbscanParams::new(1.0, 2), abs_dist);
        assert!(r.is_noise(0));
        let r = dbscan(&pts, &DbscanParams::new(1.0, 1), abs_dist);
        assert_eq!(r.cluster_count(), 1);
    }

    #[test]
    fn two_well_separated_groups() {
        let pts = [0.0f64, 0.1, 0.2, 10.0, 10.1, 10.2, 55.0];
        let r = dbscan(&pts, &DbscanParams::new(0.5, 2), abs_dist);
        assert_eq!(r.cluster_count(), 2);
        assert!(r.is_noise(6));
        let c0 = r.labels()[0];
        assert_eq!(r.labels()[1], c0);
        assert_eq!(r.labels()[2], c0);
        let c1 = r.labels()[3];
        assert_ne!(c0, c1);
        assert_eq!(r.labels()[4], c1);
    }

    #[test]
    fn chain_of_points_forms_one_cluster() {
        // Density-reachability: consecutive points are within eps, the
        // endpoints are not, but they still end up in the same cluster.
        let pts: Vec<f64> = (0..20).map(|i| f64::from(i) * 0.4).collect();
        let r = dbscan(&pts, &DbscanParams::new(0.5, 2), abs_dist);
        assert_eq!(r.cluster_count(), 1);
        assert_eq!(r.noise_count(), 0);
    }

    #[test]
    fn border_point_is_adopted_not_noise() {
        // min_points = 3. The point at 1.0 has only one neighbor (0.5) so it
        // is not core, but it is within eps of the core point 0.5, so it
        // becomes a border member of the cluster.
        let pts = [0.0f64, 0.25, 0.5, 1.0];
        let r = dbscan(&pts, &DbscanParams::new(0.5, 3), abs_dist);
        assert_eq!(r.cluster_count(), 1);
        assert_eq!(r.noise_count(), 0);
        assert_eq!(r.members(0).len(), 4);
    }

    #[test]
    fn min_points_counts_the_point_itself() {
        // Two points within eps of each other: with min_points = 2 each has
        // 1 neighbor + itself = 2, so they form a cluster.
        let pts = [0.0f64, 0.1];
        let r = dbscan(&pts, &DbscanParams::new(0.5, 2), abs_dist);
        assert_eq!(r.cluster_count(), 1);
    }

    #[test]
    fn members_and_noise_count_are_consistent() {
        let pts = [0.0f64, 0.1, 0.2, 5.0, 9.0, 9.05, 9.1];
        let r = dbscan(&pts, &DbscanParams::new(0.3, 3), abs_dist);
        let member_total: usize = (0..r.cluster_count()).map(|c| r.members(c).len()).sum();
        assert_eq!(member_total + r.noise_count(), pts.len());
    }

    #[test]
    fn token_string_clustering_at_paper_threshold() {
        // Samples from the "same kit" differ in <10% of token positions;
        // the benign sample is structurally different.
        let kit_a: Vec<u8> = (0..100).map(|i| (i % 5) as u8).collect();
        let mut kit_a2 = kit_a.clone();
        kit_a2[10] = 9;
        kit_a2[50] = 9; // 2% change
        let mut kit_a3 = kit_a.clone();
        kit_a3.truncate(95); // 5% shorter
        let benign: Vec<u8> = (0..100).map(|i| ((i * 7) % 6) as u8).collect();
        let samples = vec![kit_a, kit_a2, kit_a3, benign];
        let r = dbscan(&samples, &DbscanParams::new(0.10, 2), |a, b| {
            normalized_edit_distance(a, b)
        });
        assert_eq!(r.cluster_count(), 1);
        assert_eq!(r.members(0), vec![0, 1, 2]);
        assert!(r.is_noise(3));
    }

    #[test]
    #[should_panic(expected = "min_points")]
    fn zero_min_points_panics() {
        let _ = DbscanParams::new(0.1, 0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn negative_eps_panics() {
        let _ = DbscanParams::new(-0.1, 2);
    }

    #[test]
    fn kizzle_default_matches_paper() {
        let p = DbscanParams::kizzle_default();
        assert!((p.eps - 0.10).abs() < 1e-12);
        assert_eq!(p.min_points, 4);
        assert_eq!(DbscanParams::default(), p);
    }

    #[test]
    fn indexed_matches_naive_on_token_corpus() {
        use crate::distance::normalized_edit_distance_bounded;
        // Same corpus as token_string_clustering_at_paper_threshold, plus
        // extra variants so expansion paths get exercised.
        let mut samples: Vec<Vec<u8>> = Vec::new();
        let base: Vec<u8> = (0..100).map(|i| (i % 5) as u8).collect();
        for v in 0..8usize {
            let mut s = base.clone();
            for k in 0..v {
                let pos = (k * 11 + 3) % s.len();
                s[pos] = 9;
            }
            s.truncate(s.len() - v % 4);
            samples.push(s);
        }
        samples.push((0..100).map(|i| ((i * 7) % 6) as u8).collect());
        samples.push(Vec::new());

        let params = DbscanParams::new(0.10, 2);
        let naive = dbscan(&samples, &params, |a, b| {
            normalized_edit_distance_bounded(a, b, params.eps).unwrap_or(1.0)
        });
        let (indexed, stats) = dbscan_indexed(&samples, &params);
        assert_eq!(indexed, naive);
        assert_eq!(stats.queries, samples.len());
    }

    #[test]
    fn with_neighborhoods_matches_callback_dbscan() {
        let pts = [0.0f64, 0.1, 0.2, 10.0, 10.1, 10.2, 55.0];
        let params = DbscanParams::new(0.5, 2);
        let naive = dbscan(&pts, &params, abs_dist);
        let neighborhoods: Vec<Vec<usize>> = (0..pts.len())
            .map(|i| {
                (0..pts.len())
                    .filter(|&j| j != i && abs_dist(&pts[i], &pts[j]) <= params.eps)
                    .collect()
            })
            .collect();
        assert_eq!(dbscan_with_neighborhoods(&neighborhoods, &params), naive);
    }

    #[test]
    fn indexed_empty_input() {
        let samples: Vec<Vec<u8>> = Vec::new();
        let (result, _) = dbscan_indexed(&samples, &DbscanParams::kizzle_default());
        assert_eq!(result.cluster_count(), 0);
        assert!(result.labels().is_empty());
    }

    #[test]
    fn result_is_deterministic() {
        let pts: Vec<f64> = vec![0.0, 0.1, 0.2, 3.0, 3.1, 3.2, 7.7];
        let p = DbscanParams::new(0.5, 2);
        let a = dbscan(&pts, &p, abs_dist);
        let b = dbscan(&pts, &p, abs_dist);
        assert_eq!(a, b);
    }
}
