//! The incremental corpus engine: warm state threaded through
//! consecutive days.
//!
//! The paper's deployment is a *continuous* daily loop over heavily
//! overlapping grayware corpora. A stateless pipeline rebuilds the neighbor
//! index and re-queries every neighborhood from scratch each day; the
//! [`CorpusEngine`] instead composes a [`CorpusStore`] (stable ids, content
//! dedup, stamp-based retirement) with an incremental [`NeighborIndex`]
//! (in-place insert/remove, memoized neighborhoods maintained rather than
//! recomputed), so day *N+1* pays query cost only for its churned fraction.
//!
//! [`CorpusEngine::cluster_day`] clusters an arbitrary *view* of the live
//! corpus — the ids of one day's samples — through exactly the partition →
//! per-partition DBSCAN → index-routed reduce dataflow of
//! [`DistributedClusterer`](crate::distributed::DistributedClusterer). The
//! key identity making that sound: an eps-ball restricted to a subset of
//! samples equals the subset-local eps-ball, because the accept predicate
//! is pairwise. The engine therefore filters its full-corpus memoized
//! neighborhoods down to the day (and further down to each partition)
//! instead of re-querying, and the result is **byte-identical** to a cold
//! one-shot run over the same samples — the property tests in
//! `tests/incremental_properties.rs` hold it to that.

use crate::clustering::Clustering;
use crate::dbscan::{dbscan_with_neighborhoods, DbscanParams};
use crate::distributed::{
    partition_by_key, partition_outcome, reduce_token, DistributedConfig, DistributedStats,
    PartitionOutcome,
};
use crate::index::NeighborIndex;
use crate::store::{CorpusStore, SampleId};
use kizzle_snapshot::{
    ChainSave, ChainWriter, ChainedSnapshot, Decoder, Encoder, SectionSource, Snapshot,
    SnapshotBuilder, SnapshotError,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

pub use kizzle_snapshot::sections::{INDEX_SECTION, STORE_SECTION};
/// Chain file prefix of [`CorpusEngine::snapshot_delta`] state
/// (`engine.snap` + `engine.delta-N.snap`).
pub const ENGINE_CHAIN_PREFIX: &str = "engine";

/// What a [`CorpusEngine::resume`] actually managed to restore.
///
/// Resume never fails: the worst outcome is a cold, empty engine — exactly
/// the state a fresh cron-job process would have had before persistence
/// existed. The report says which rung of the fallback ladder was reached:
///
/// 1. store + index with every memoized neighborhood → warm, zero
///    recomputed queries;
/// 2. store intact but index damaged → index rebuilt structurally from the
///    store, neighborhoods recomputed lazily on demand;
/// 3. store damaged → empty engine, full cold rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// The sample store was restored from the snapshot.
    pub store_restored: bool,
    /// The neighbor index (including memoized neighborhoods) was restored
    /// from the snapshot; false means it was rebuilt from the store (or is
    /// empty because the store was lost too).
    pub index_restored: bool,
    /// Live samples in the resumed engine.
    pub live_samples: usize,
    /// Memoized neighborhoods carried over from the snapshot.
    pub cached_neighborhoods: usize,
    /// Human-readable reasons for every fallback taken, empty on a clean
    /// resume.
    pub notes: Vec<String>,
}

impl ResumeReport {
    /// True when both layers came back from the snapshot unchanged.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.store_restored && self.index_restored
    }

    /// Record one fallback-ladder note. Besides appending to
    /// [`ResumeReport::notes`], the note is emitted as an
    /// `engine.resume.note` telemetry event (and counted in
    /// `kizzle_resume_notes_total`), so a degraded resume is visible in
    /// the JSONL trace even when no caller prints the report.
    pub fn note(&mut self, message: String) {
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::event("engine.resume.note", message.as_str());
            kizzle_telemetry::counter("kizzle_resume_notes_total").incr();
        }
        self.notes.push(message);
    }
}

/// Persistent clustering engine over a corpus that changes incrementally.
#[derive(Debug, Clone)]
pub struct CorpusEngine {
    config: DistributedConfig,
    store: CorpusStore,
    index: NeighborIndex,
}

impl CorpusEngine {
    /// Create an empty engine; the index runs at `config.dbscan.eps`.
    #[must_use]
    pub fn new(config: DistributedConfig) -> Self {
        CorpusEngine {
            config,
            store: CorpusStore::new(),
            index: NeighborIndex::new(config.dbscan.eps),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// The persistent sample store.
    #[must_use]
    pub fn store(&self) -> &CorpusStore {
        &self.store
    }

    /// The incremental neighbor index.
    #[must_use]
    pub fn index(&self) -> &NeighborIndex {
        &self.index
    }

    /// Number of live samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the engine holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Add one day's class-strings under `stamp`, returning one id per
    /// input position (dedup means ids can repeat: a sample identical to an
    /// already-live one — yesterday's carry-over, or an intra-day duplicate
    /// — reuses its entry and refreshes its stamp instead of re-indexing).
    ///
    /// Fresh samples are indexed as a batch: their neighborhoods are
    /// computed in parallel and spliced into the surviving memoized lists.
    pub fn add_batch<S: AsRef<[u8]>>(&mut self, stamp: u64, samples: &[S]) -> Vec<SampleId> {
        let mut ids = Vec::with_capacity(samples.len());
        let mut fresh: Vec<(SampleId, Arc<[u8]>)> = Vec::new();
        for sample in samples {
            let (id, reused) = self.store.add(stamp, sample.as_ref());
            if !reused {
                fresh.push((id, self.store.data(id).expect("just added")));
            }
            ids.push(id);
        }
        self.index.insert_batch(fresh);
        ids
    }

    /// Remove one sample from store and index.
    pub fn remove(&mut self, id: SampleId) -> bool {
        if self.store.remove(id).is_none() {
            return false;
        }
        self.index.remove(id);
        true
    }

    /// Retire every sample whose stamp is strictly below `cutoff`,
    /// returning how many were removed.
    pub fn retire_older_than(&mut self, cutoff: u64) -> usize {
        let retired = self.store.older_than(cutoff);
        for &id in &retired {
            self.remove(id);
        }
        retired.len()
    }

    /// Serialize the warm stack as named section payloads. The store and
    /// index encoders are independent, so they run through the rayon pool
    /// — on a multi-core box the snapshot encode costs max(store, index)
    /// instead of their sum.
    #[must_use]
    pub fn encode_sections(&self) -> Vec<(String, Vec<u8>)> {
        let (store_bytes, index_bytes) = rayon::join(
            || {
                let mut enc = Encoder::new();
                self.store.encode_into(&mut enc);
                enc.into_bytes()
            },
            || {
                let mut enc = Encoder::new();
                self.index.encode_into(&mut enc);
                enc.into_bytes()
            },
        );
        vec![
            (STORE_SECTION.to_string(), store_bytes),
            (INDEX_SECTION.to_string(), index_bytes),
        ]
    }

    /// Serialize the warm stack (store + index) as snapshot sections.
    pub fn write_sections(&self, builder: &mut SnapshotBuilder) {
        for (name, payload) in self.encode_sections() {
            builder.section(&name, payload);
        }
    }

    /// Write a standalone engine snapshot, atomically (temp then rename).
    pub fn snapshot(&self, path: &Path) -> std::io::Result<()> {
        let mut builder = SnapshotBuilder::new();
        self.write_sections(&mut builder);
        builder.write_atomic(path)
    }

    /// Persist the engine as the next link of a base→delta snapshot chain
    /// in `dir` (base `engine.snap`, deltas `engine.delta-N.snap`, chain
    /// and section fingerprints recorded in the `MANIFEST` sidecar):
    /// only the sections whose content fingerprint changed since the base
    /// manifest's record are written. Once the chain carries `max_deltas`
    /// deltas, the next save compacts back to a fresh full base.
    ///
    /// [`CorpusEngine::resume_chain`] follows the recorded chain back.
    pub fn snapshot_delta(&self, dir: &Path, max_deltas: usize) -> std::io::Result<ChainSave> {
        ChainWriter::new(dir, ENGINE_CHAIN_PREFIX).save(
            self.encode_sections(),
            max_deltas,
            |manifest, save| {
                manifest.set("live_samples", self.len());
                manifest.set("cached_neighborhoods", self.index.cached_count());
                manifest.set(
                    "written_file",
                    save.file.as_deref().unwrap_or("none (no sections changed)"),
                );
                manifest.set("written_bytes", save.bytes);
            },
        )
    }

    /// Resume an engine from a snapshot file. Never fails: any damage
    /// degrades down the fallback ladder described on [`ResumeReport`].
    #[must_use]
    pub fn resume(config: DistributedConfig, path: &Path) -> (Self, ResumeReport) {
        match Snapshot::read(path) {
            Ok(snapshot) => CorpusEngine::resume_from_sections(config, &snapshot),
            Err(err) => {
                let mut report = ResumeReport::default();
                report.note(format!("snapshot unreadable, cold start: {err}"));
                (CorpusEngine::new(config), report)
            }
        }
    }

    /// Resume an engine from a [`CorpusEngine::snapshot_delta`] chain in
    /// `dir`. The ladder gains one rung above [`CorpusEngine::resume`]'s:
    /// a broken delta truncates the chain (resume the base — an older but
    /// self-consistent state), then section damage degrades per section,
    /// then cold. Never fails.
    #[must_use]
    pub fn resume_chain(config: DistributedConfig, dir: &Path) -> (Self, ResumeReport) {
        match ChainedSnapshot::open(dir, ENGINE_CHAIN_PREFIX) {
            Ok(chained) => {
                let (engine, mut report) = CorpusEngine::resume_from_sections(config, &chained);
                for chain_note in chained.notes() {
                    report.note(chain_note.clone());
                }
                (engine, report)
            }
            Err(err) => {
                let mut report = ResumeReport::default();
                report.note(format!("snapshot chain unreadable, cold start: {err}"));
                (CorpusEngine::new(config), report)
            }
        }
    }

    /// Resume from already-parsed snapshot sections — a single [`Snapshot`]
    /// or a chained overlay (the compiler embeds the engine sections in its
    /// own state chain). See [`CorpusEngine::resume`] for the fallback
    /// behavior.
    #[must_use]
    pub fn resume_from_sections(
        config: DistributedConfig,
        snapshot: &impl SectionSource,
    ) -> (Self, ResumeReport) {
        let mut report = ResumeReport::default();

        let store = match snapshot.section(STORE_SECTION).and_then(|payload| {
            let mut dec = Decoder::new(payload);
            let store = CorpusStore::decode_from_versioned(
                &mut dec,
                snapshot.section_version(STORE_SECTION),
            )?;
            dec.finish()?;
            Ok(store)
        }) {
            Ok(store) => {
                report.store_restored = true;
                store
            }
            Err(err) => {
                report.note(format!("store section lost, cold start: {err}"));
                return (CorpusEngine::new(config), report);
            }
        };

        let index = snapshot
            .section(INDEX_SECTION)
            .and_then(|payload| {
                let mut dec = Decoder::new(payload);
                let index = NeighborIndex::decode_from_versioned(
                    &mut dec,
                    snapshot.section_version(INDEX_SECTION),
                    |id| store.data(id),
                )?;
                dec.finish()?;
                Ok(index)
            })
            .and_then(|index| {
                // The sections must describe the same corpus at the same
                // eps, or the memoized neighborhoods are meaningless. Exact
                // bit equality: the caches were computed at *this* eps, and
                // even a one-ulp difference moves the radius cutoff.
                if index.eps().to_bits() != config.dbscan.eps.to_bits() {
                    return Err(SnapshotError::Corrupt(format!(
                        "index eps {} != config eps {}",
                        index.eps(),
                        config.dbscan.eps
                    )));
                }
                if index.len() != store.len()
                    || !store.live_ids().iter().all(|&id| index.contains(id))
                {
                    return Err(SnapshotError::Corrupt(
                        "index entries disagree with store".into(),
                    ));
                }
                Ok(index)
            });
        let index = match index {
            Ok(index) => {
                report.index_restored = true;
                report.cached_neighborhoods = index.cached_count();
                index
            }
            Err(err) => {
                report.note(format!("index section lost, rebuilding from store: {err}"));
                let mut rebuilt = NeighborIndex::new(config.dbscan.eps);
                rebuilt.insert_batch_unmemoized(
                    store
                        .live_ids()
                        .into_iter()
                        .map(|id| (id, store.data(id).expect("live id")))
                        .collect(),
                );
                rebuilt
            }
        };

        report.live_samples = store.len();
        (
            CorpusEngine {
                config,
                store,
                index,
            },
            report,
        )
    }

    /// Cluster a view of the live corpus — `day_ids[p]` is the sample at
    /// dense position `p` — through the distributed partition/reduce
    /// dataflow, byte-identical to a cold
    /// [`cluster_token_strings`](crate::distributed::DistributedClusterer::cluster_token_strings)
    /// run over the same dense sample sequence. Memoized neighborhoods are
    /// reused; only ids whose cache was churned away pay query cost.
    ///
    /// # Panics
    ///
    /// Panics if any id is not live.
    pub fn cluster_day(&mut self, day_ids: &[SampleId]) -> (Clustering, DistributedStats) {
        self.prepare_day(day_ids).finish()
    }

    /// Capture one day's clustering inputs under the engine borrow — the
    /// short phase of [`CorpusEngine::cluster_day`]. The returned
    /// [`PreparedDay`] owns everything the expensive partition →
    /// per-partition DBSCAN → reduce dataflow needs ([`Arc`] clones of the
    /// day's class-strings, day-restricted dense neighborhoods, partition
    /// keys, drained index stats), so [`PreparedDay::finish`] runs without
    /// touching the engine at all: the next day can insert, retire, or
    /// re-cache concurrently and the finished clustering is still
    /// byte-identical to a serial [`CorpusEngine::cluster_day`] call made
    /// at capture time.
    ///
    /// # Panics
    ///
    /// Panics if any id is not live.
    pub fn prepare_day(&mut self, day_ids: &[SampleId]) -> PreparedDay {
        let n = day_ids.len();
        let mut stats = DistributedStats::default();
        let params = self.config.dbscan;
        let t_map = Instant::now();
        if n == 0 {
            return PreparedDay {
                params,
                partitions: self.config.partitions,
                seed: self.config.seed,
                dense: Vec::new(),
                keys: Vec::new(),
                day_data: Vec::new(),
                stats,
                t_map,
            };
        }

        // Dense positions of every id in the view (dedup can map several
        // positions to one id).
        let mut positions: HashMap<u32, Vec<usize>> = HashMap::new();
        for (p, id) in day_ids.iter().enumerate() {
            positions.entry(id.raw()).or_default().push(p);
        }
        let unique: Vec<SampleId> = {
            let mut u: Vec<u32> = positions.keys().copied().collect();
            u.sort_unstable();
            u.into_iter().map(SampleId::new).collect()
        };
        self.index.ensure_cached(&unique);

        // Day-restricted dense neighborhoods: the full-corpus eps-ball
        // filtered to the view, expanded to positions, plus co-located
        // duplicates (distance 0 to themselves).
        let index = &self.index;
        let dense: Vec<Vec<usize>> = day_ids
            .par_iter()
            .enumerate()
            .map(|(p, id)| {
                let mut neighbors: Vec<usize> = Vec::new();
                for &q in &positions[&id.raw()] {
                    if q != p {
                        neighbors.push(q);
                    }
                }
                for &slot in index.cached_slots(id.raw()) {
                    if let Some(qs) = positions.get(&slot) {
                        neighbors.extend(qs.iter().copied());
                    }
                }
                neighbors.sort_unstable();
                neighbors
            })
            .collect();

        // Keys were hashed once at store-insert; the daily pass is O(n)
        // lookups, not O(total bytes) re-hashing. The data Arcs pin the
        // day's class-strings even if retirement drops them from the store
        // before `finish` runs.
        let (keys, day_data) = self.store.day_view(day_ids);

        // Drain the index counters now, while the day still owns them —
        // queries the *next* day issues while `finish` is in flight must
        // not be attributed to this day.
        stats.index.merge(&self.index.take_stats());

        PreparedDay {
            params,
            partitions: self.config.partitions,
            seed: self.config.seed,
            dense,
            keys,
            day_data,
            stats,
            t_map,
        }
    }
}

/// One day's clustering inputs, captured by [`CorpusEngine::prepare_day`].
///
/// Owns everything the partition/DBSCAN/reduce dataflow needs; `finish`
/// borrows nothing from the engine, so it can run on another thread while
/// the engine ingests the next day.
#[derive(Debug)]
pub struct PreparedDay {
    params: DbscanParams,
    partitions: usize,
    seed: u64,
    dense: Vec<Vec<usize>>,
    keys: Vec<u64>,
    day_data: Vec<Arc<[u8]>>,
    stats: DistributedStats,
    t_map: Instant,
}

impl PreparedDay {
    /// Dense positions in the captured view.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.day_data.len()
    }

    /// Run the captured view through partition → per-partition DBSCAN →
    /// index-routed reduce. Engine-free and byte-identical to the serial
    /// [`CorpusEngine::cluster_day`] over the same view.
    #[must_use]
    pub fn finish(mut self) -> (Clustering, DistributedStats) {
        let n = self.day_data.len();
        if n == 0 {
            return (Clustering::default(), self.stats);
        }
        let params = self.params;
        let day_span = kizzle_telemetry::span!("day.cluster");

        // Partition by content key — the same class-string lands in the
        // same partition every day (content-stable, not an `n`-dependent
        // shuffle) — and cluster each partition on its induced subgraph,
        // the same label computation a fresh per-partition index performs.
        let partition_span = kizzle_telemetry::span!("cluster.partition");
        let partitions = partition_by_key(&self.keys, self.partitions, self.seed);
        self.stats.partition_time = partition_span.finish();

        let dense = &self.dense;
        let outcomes: Vec<PartitionOutcome> = partitions
            .par_iter()
            .map(|part| {
                let mut local_of = vec![usize::MAX; n];
                for (local, &global) in part.iter().enumerate() {
                    local_of[global] = local;
                }
                let local_neighborhoods: Vec<Vec<usize>> = part
                    .iter()
                    .map(|&global| {
                        let mut local: Vec<usize> = dense[global]
                            .iter()
                            .filter_map(|&q| {
                                let l = local_of[q];
                                (l != usize::MAX).then_some(l)
                            })
                            .collect();
                        local.sort_unstable();
                        local
                    })
                    .collect();
                let result = dbscan_with_neighborhoods(&local_neighborhoods, &params);
                partition_outcome(&result, part)
            })
            .collect();
        self.stats.map_time = self.t_map.elapsed() - self.stats.partition_time;
        // The map measurement starts on the preparing thread (`t_map`) and
        // closes here, possibly on the seal thread — an RAII guard cannot
        // cross that boundary, so the already-measured duration is recorded
        // explicitly.
        kizzle_telemetry::record_span("cluster.map", self.stats.map_time);
        for outcome in &outcomes {
            self.stats.per_partition_clusters.push(outcome.0.len());
        }

        // Index-routed reduce over the dense day view.
        let clustering = reduce_token(&self.day_data, &params, outcomes, &mut self.stats);
        let day_elapsed = day_span.finish();
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::histogram("kizzle_cluster_day_ns").observe_duration(day_elapsed);
        }
        (clustering, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::DbscanParams;
    use crate::distributed::DistributedClusterer;

    fn family_day(per_family: usize, variant_offset: usize) -> Vec<Vec<u8>> {
        let mut samples = Vec::new();
        let bases: Vec<Vec<u8>> = vec![
            (0..120).map(|i| (i % 5) as u8).collect(),
            (0..150).map(|i| ((i * 3) % 6) as u8).collect(),
            (0..90).map(|i| ((i * 7 + 1) % 4) as u8).collect(),
        ];
        for base in &bases {
            for v in 0..per_family {
                let mut s = base.clone();
                for k in 0..(s.len() / 30) {
                    let pos = ((v + variant_offset) * 13 + k * 17) % s.len();
                    s[pos] = (s[pos] + 1) % 6;
                }
                samples.push(s);
            }
        }
        samples
    }

    fn cfg() -> DistributedConfig {
        DistributedConfig::new(3, DbscanParams::new(0.10, 2), 42)
    }

    #[test]
    fn empty_day_is_fine() {
        let mut engine = CorpusEngine::new(cfg());
        let (clustering, stats) = engine.cluster_day(&[]);
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(stats.merged_clusters, 0);
    }

    #[test]
    fn warm_second_day_matches_cold_run() {
        let day1 = family_day(5, 0);
        // Day 2 keeps most of day 1 and churns in a few new variants.
        let mut day2 = day1[3..].to_vec();
        day2.extend(family_day(2, 9));

        let mut engine = CorpusEngine::new(cfg());
        let ids1 = engine.add_batch(1, &day1);
        let (warm1, _) = engine.cluster_day(&ids1);
        let ids2 = engine.add_batch(2, &day2);
        let (warm2, stats2) = engine.cluster_day(&ids2);

        let clusterer = DistributedClusterer::new(cfg());
        let (cold1, _) = clusterer.cluster_token_strings(&day1);
        let (cold2, _) = clusterer.cluster_token_strings(&day2);
        assert_eq!(warm1, cold1);
        assert_eq!(warm2, cold2);
        // The carried-over samples were cache hits: only the churned
        // fraction paid query cost on day 2.
        assert!(
            stats2.index.queries < day2.len(),
            "stats: {:?}",
            stats2.index
        );
        assert!(stats2.index.cache_hits > 0);
    }

    #[test]
    fn prepared_day_finishes_off_thread_while_the_engine_moves_on() {
        let day1 = family_day(5, 0);
        let day2 = family_day(4, 7);

        let mut serial = CorpusEngine::new(cfg());
        let ids1 = serial.add_batch(1, &day1);
        let (want, _) = serial.cluster_day(&ids1);

        let mut engine = CorpusEngine::new(cfg());
        let ids1b = engine.add_batch(1, &day1);
        assert_eq!(ids1, ids1b);
        let prepared = engine.prepare_day(&ids1b);
        assert_eq!(prepared.sample_count(), day1.len());
        let handle = std::thread::spawn(move || prepared.finish());
        // Mutate the engine while the finish is in flight: insert day 2 and
        // retire day 1. The captured Arcs keep day 1's bytes alive.
        engine.add_batch(2, &day2);
        engine.retire_older_than(2);
        let (got, stats) = handle.join().expect("finish thread");
        assert_eq!(want, got);
        assert!(stats.merged_clusters > 0);
    }

    #[test]
    fn retirement_shrinks_the_corpus_without_changing_the_day() {
        let day1 = family_day(4, 0);
        let day2 = family_day(4, 5);
        let mut engine = CorpusEngine::new(cfg());
        engine.add_batch(1, &day1);
        assert_eq!(engine.len(), day1.len());
        let ids2 = engine.add_batch(2, &day2);
        // Retire day 1 (stamp < 2); day 2's clustering is unaffected.
        let retired = engine.retire_older_than(2);
        assert_eq!(retired, day1.len());
        assert_eq!(engine.len(), day2.len());
        let (warm, _) = engine.cluster_day(&ids2);
        let (cold, _) = DistributedClusterer::new(cfg()).cluster_token_strings(&day2);
        assert_eq!(warm, cold);
    }

    #[test]
    fn duplicate_positions_cluster_like_distinct_samples() {
        // A day whose view repeats the same content at several positions
        // must cluster exactly like a cold run over the repeated sequence.
        let base = family_day(3, 0);
        let mut day: Vec<Vec<u8>> = base.clone();
        day.push(base[0].clone());
        day.push(base[0].clone());
        let mut engine = CorpusEngine::new(cfg());
        let ids = engine.add_batch(1, &day);
        // Dedup collapsed the repeats onto one id.
        assert_eq!(ids[0], ids[base.len()]);
        assert_eq!(ids[0], ids[base.len() + 1]);
        let (warm, _) = engine.cluster_day(&ids);
        let (cold, _) = DistributedClusterer::new(cfg()).cluster_token_strings(&day);
        assert_eq!(warm, cold);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kizzle-engine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn snapshot_resume_is_warm_and_clusters_identically() {
        let day1 = family_day(5, 0);
        let mut day2 = day1[3..].to_vec();
        day2.extend(family_day(2, 9));

        let mut engine = CorpusEngine::new(cfg());
        let ids1 = engine.add_batch(1, &day1);
        let (_, _) = engine.cluster_day(&ids1);

        let path = temp_path("engine.snap");
        engine.snapshot(&path).expect("snapshot written");
        let (mut resumed, report) = CorpusEngine::resume(cfg(), &path);
        assert!(report.is_warm(), "report: {report:?}");
        assert_eq!(report.live_samples, engine.len());
        assert!(report.cached_neighborhoods > 0);
        assert!(report.notes.is_empty(), "notes: {:?}", report.notes);

        // Day 2 through the original and the resumed engine: identical ids,
        // identical clustering, and the resumed engine answers the
        // carried-over fraction from its restored caches.
        let ids2_live = engine.add_batch(2, &day2);
        let (live_clustering, _) = engine.cluster_day(&ids2_live);
        let ids2_resumed = resumed.add_batch(2, &day2);
        assert_eq!(ids2_live, ids2_resumed);
        let (resumed_clustering, resumed_stats) = resumed.cluster_day(&ids2_resumed);
        assert_eq!(live_clustering, resumed_clustering);
        assert!(resumed_stats.index.cache_hits > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_rerun_after_resume_needs_zero_queries() {
        let day = family_day(4, 0);
        let mut engine = CorpusEngine::new(cfg());
        let ids = engine.add_batch(1, &day);
        let (_, _) = engine.cluster_day(&ids);
        let path = temp_path("engine-rerun.snap");
        engine.snapshot(&path).expect("snapshot written");

        let (mut resumed, report) = CorpusEngine::resume(cfg(), &path);
        assert!(report.is_warm());
        // The same content re-added deduplicates onto live entries; the
        // resumed caches answer the whole day — same as a long-lived
        // process, zero recomputed queries.
        let ids2 = resumed.add_batch(2, &day);
        let (_, stats) = resumed.cluster_day(&ids2);
        assert_eq!(stats.index.queries, 0, "stats: {:?}", stats.index);
        assert!(stats.index.cache_hits > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_degrades_to_cold_empty_engine() {
        let path = temp_path("never-written.snap");
        std::fs::remove_file(&path).ok();
        let (engine, report) = CorpusEngine::resume(cfg(), &path);
        assert!(engine.is_empty());
        assert!(!report.store_restored);
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn corrupt_index_section_rebuilds_from_store() {
        let day = family_day(4, 0);
        let mut engine = CorpusEngine::new(cfg());
        let ids = engine.add_batch(1, &day);
        let (want, _) = engine.cluster_day(&ids);

        // Damage the index payload on disk; the store payload stays intact.
        let mut builder = kizzle_snapshot::SnapshotBuilder::new();
        let mut enc = Encoder::new();
        engine.store().encode_into(&mut enc);
        builder.section(STORE_SECTION, enc.into_bytes());
        builder.section(INDEX_SECTION, b"garbage payload".to_vec());
        let snapshot = Snapshot::from_bytes(&builder.to_bytes()).expect("parses");

        let (mut resumed, report) = CorpusEngine::resume_from_sections(cfg(), &snapshot);
        assert!(report.store_restored);
        assert!(!report.index_restored);
        assert_eq!(report.cached_neighborhoods, 0);
        assert_eq!(resumed.len(), engine.len());
        // The rebuilt engine still clusters the day identically — it just
        // pays the queries again.
        let ids2 = resumed.add_batch(1, &day);
        assert_eq!(ids, ids2, "dedup must map onto the restored entries");
        let (got, stats) = resumed.cluster_day(&ids2);
        assert_eq!(want, got);
        assert!(stats.index.queries > 0);
    }

    #[test]
    fn rebuilt_engine_saves_and_resumes_without_caches() {
        // A degraded (rebuilt-from-store) engine has no memoized
        // neighborhoods; saving and resuming that state must round-trip
        // the cache-less entries faithfully.
        let day = family_day(3, 0);
        let mut engine = CorpusEngine::new(cfg());
        let ids = engine.add_batch(1, &day);
        let (want, _) = engine.cluster_day(&ids);

        let mut builder = kizzle_snapshot::SnapshotBuilder::new();
        let mut enc = Encoder::new();
        engine.store().encode_into(&mut enc);
        builder.section(STORE_SECTION, enc.into_bytes());
        builder.section(INDEX_SECTION, Vec::new()); // damaged: empty payload
        let snapshot = Snapshot::from_bytes(&builder.to_bytes()).expect("parses");
        let (rebuilt, report) = CorpusEngine::resume_from_sections(cfg(), &snapshot);
        assert!(!report.index_restored);

        let path = temp_path("rebuilt.snap");
        rebuilt.snapshot(&path).expect("snapshot written");
        let (mut resumed, report) = CorpusEngine::resume(cfg(), &path);
        assert!(
            report.is_warm(),
            "cache-less index is still restorable: {report:?}"
        );
        assert_eq!(report.cached_neighborhoods, 0);
        let ids2 = resumed.add_batch(1, &day);
        assert_eq!(ids, ids2);
        let (got, stats) = resumed.cluster_day(&ids2);
        assert_eq!(want, got);
        assert!(
            stats.index.queries > 0,
            "nothing was cached, so queries were paid"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_store_section_degrades_to_cold() {
        let mut builder = kizzle_snapshot::SnapshotBuilder::new();
        builder.section(STORE_SECTION, b"\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF".to_vec());
        let snapshot = Snapshot::from_bytes(&builder.to_bytes()).expect("parses");
        let (engine, report) = CorpusEngine::resume_from_sections(cfg(), &snapshot);
        assert!(engine.is_empty());
        assert!(!report.store_restored);
        assert!(!report.index_restored);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut engine = CorpusEngine::new(cfg());
        let ids = engine.add_batch(1, &family_day(2, 0));
        assert!(engine.remove(ids[0]));
        assert!(!engine.remove(ids[0]));
        assert_eq!(engine.len(), ids.len() - 1);
    }
}
