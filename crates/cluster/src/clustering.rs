//! Cluster bookkeeping: members, prototypes and summary statistics.
//!
//! After DBSCAN assigns labels, the rest of the Kizzle pipeline works with
//! *clusters*: it picks a prototype (medoid) per cluster, unpacks and labels
//! the prototype, and generates one signature per malicious cluster.

use crate::dbscan::{DbscanResult, Label};
use rayon::prelude::*;

/// A single cluster of sample indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cluster {
    /// Indices (into the original sample collection) of the members.
    pub members: Vec<usize>,
    /// Index of the medoid prototype, if it has been computed.
    pub prototype: Option<usize>,
}

impl Cluster {
    /// Create a cluster from member indices.
    #[must_use]
    pub fn new(members: Vec<usize>) -> Self {
        Cluster {
            members,
            prototype: None,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the cluster has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Compute and cache the medoid: the member minimizing the sum of
    /// distances to all other members. Returns the chosen sample index.
    ///
    /// For clusters larger than `sample_cap` members, the medoid is computed
    /// over an evenly-spaced subsample to bound the quadratic cost; this is
    /// the same engineering concession a production deployment makes, and
    /// the medoid of a tight cluster is insensitive to it.
    ///
    /// Candidates are **early-abandoned**, which requires `distance` to be
    /// **non-negative** (every in-repo distance is in `[0, 1]`): a
    /// candidate whose partial sum already reaches the best full sum cannot
    /// win, and the rest of its row is skipped. A signed "distance" breaks
    /// that pruning argument — a negative later term could bring the full
    /// sum back under — and may silently select a different medoid than the
    /// exhaustive scan would. For non-negative distances the selected
    /// medoid is identical to the exhaustive scan (ties resolve to the
    /// earliest pool member either way), but on tight clusters — where one
    /// good candidate appears early — most rows stop after a few terms.
    pub fn compute_prototype<T, D>(
        &mut self,
        samples: &[T],
        distance: D,
        sample_cap: usize,
    ) -> Option<usize>
    where
        D: Fn(&T, &T) -> f64,
    {
        self.prototype = medoid_of(&self.members, samples, &distance, sample_cap);
        self.prototype
    }
}

/// The medoid scan behind [`Cluster::compute_prototype`], over borrowed
/// member lists so the parallel pass below needs no scratch clusters.
fn medoid_of<T, D>(
    members: &[usize],
    samples: &[T],
    distance: &D,
    sample_cap: usize,
) -> Option<usize>
where
    D: Fn(&T, &T) -> f64,
{
    if members.is_empty() {
        return None;
    }
    if members.len() == 1 {
        return Some(members[0]);
    }
    let pool: Vec<usize> = if members.len() > sample_cap && sample_cap > 0 {
        let step = members.len() / sample_cap;
        members.iter().step_by(step.max(1)).copied().collect()
    } else {
        members.to_vec()
    };
    let mut best = pool[0];
    let mut best_sum = f64::INFINITY;
    for &cand in &pool {
        let mut sum = 0.0f64;
        for &other in &pool {
            if other == cand {
                continue;
            }
            sum += distance(&samples[cand], &samples[other]);
            if sum >= best_sum {
                // A partial sum at or above the incumbent can only grow;
                // the full sum would lose the strict `<` below too.
                break;
            }
        }
        if sum < best_sum {
            best_sum = sum;
            best = cand;
        }
    }
    Some(best)
}

/// A full clustering of a sample collection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clustering {
    /// The clusters, in discovery order.
    pub clusters: Vec<Cluster>,
    /// Indices of samples classified as noise.
    pub noise: Vec<usize>,
    /// Total number of samples that were clustered.
    pub sample_count: usize,
}

impl Clustering {
    /// Build a [`Clustering`] from a DBSCAN result.
    #[must_use]
    pub fn from_dbscan(result: &DbscanResult) -> Self {
        let mut clusters = vec![Cluster::default(); result.cluster_count()];
        let mut noise = Vec::new();
        for (i, label) in result.labels().iter().enumerate() {
            match label {
                Label::Cluster(c) => clusters[*c].members.push(i),
                Label::Noise => noise.push(i),
                Label::Unvisited => unreachable!("dbscan labels every sample"),
            }
        }
        Clustering {
            clusters,
            noise,
            sample_count: result.labels().len(),
        }
    }

    /// Build a clustering directly from member lists (used by the
    /// distributed reduce step).
    #[must_use]
    pub fn from_members(clusters: Vec<Vec<usize>>, noise: Vec<usize>, sample_count: usize) -> Self {
        Clustering {
            clusters: clusters.into_iter().map(Cluster::new).collect(),
            noise,
            sample_count,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Compute prototypes for every cluster, in parallel: clusters are
    /// independent, so the per-cluster medoid scans (each capped all-pairs,
    /// see [`Cluster::compute_prototype`], including its non-negativity
    /// requirement on `distance`) run through the rayon pool — the final
    /// prototype pass of a large-cluster day costs the slowest cluster,
    /// not the sum.
    pub fn compute_prototypes<T, D>(&mut self, samples: &[T], distance: D)
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Copy + Sync,
    {
        let prototypes: Vec<Option<usize>> = self
            .clusters
            .par_iter()
            .map(|cluster| medoid_of(&cluster.members, samples, &distance, 64))
            .collect();
        for (cluster, prototype) in self.clusters.iter_mut().zip(prototypes) {
            cluster.prototype = prototype;
        }
    }

    /// Clusters with at least `min_size` members, largest first. Kizzle only
    /// builds signatures for clusters with enough samples to generalize
    /// from.
    ///
    /// Every returned cluster is guaranteed non-empty even when `min_size`
    /// is 0 — callers fall back to `members[0]` when no prototype has been
    /// computed, and an empty member list must never reach them.
    #[must_use]
    pub fn significant_clusters(&self, min_size: usize) -> Vec<&Cluster> {
        let mut out: Vec<&Cluster> = self
            .clusters
            .iter()
            .filter(|c| c.len() >= min_size.max(1))
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.len()));
        out
    }

    /// Sanity check: every sample index appears exactly once across clusters
    /// and noise.
    #[must_use]
    pub fn is_partition(&self) -> bool {
        let mut seen = vec![false; self.sample_count];
        let mut count = 0usize;
        for idx in self
            .clusters
            .iter()
            .flat_map(|c| c.members.iter())
            .chain(self.noise.iter())
        {
            if *idx >= self.sample_count || seen[*idx] {
                return false;
            }
            seen[*idx] = true;
            count += 1;
        }
        count == self.sample_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{dbscan, DbscanParams};

    fn abs_dist(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn from_dbscan_partitions_samples() {
        let pts = [0.0f64, 0.1, 0.2, 9.0, 9.1, 50.0];
        let r = dbscan(&pts, &DbscanParams::new(0.5, 2), abs_dist);
        let clustering = Clustering::from_dbscan(&r);
        assert_eq!(clustering.cluster_count(), 2);
        assert_eq!(clustering.noise, vec![5]);
        assert!(clustering.is_partition());
        assert_eq!(clustering.sample_count, 6);
    }

    #[test]
    fn prototype_of_singleton_is_itself() {
        let mut c = Cluster::new(vec![3]);
        let samples = [0.0f64, 1.0, 2.0, 3.0];
        assert_eq!(c.compute_prototype(&samples, abs_dist, 64), Some(3));
    }

    #[test]
    fn prototype_is_the_medoid() {
        // Members 0,1,2 at positions 0.0, 10.0, 11.0 — the medoid is 10.0.
        let samples = [0.0f64, 10.0, 11.0];
        let mut c = Cluster::new(vec![0, 1, 2]);
        assert_eq!(c.compute_prototype(&samples, abs_dist, 64), Some(1));
        assert_eq!(c.prototype, Some(1));
    }

    #[test]
    fn prototype_of_empty_cluster_is_none() {
        let mut c = Cluster::default();
        assert_eq!(c.compute_prototype(&[] as &[f64], abs_dist, 64), None);
        assert!(c.is_empty());
    }

    #[test]
    fn prototype_with_subsampling_still_reasonable() {
        let samples: Vec<f64> = (0..1000).map(f64::from).collect();
        let mut c = Cluster::new((0..1000).collect());
        let proto = c.compute_prototype(&samples, abs_dist, 16).unwrap();
        // True medoid is ~500; subsampled medoid must be in the middle half.
        assert!((250..750).contains(&proto));
    }

    #[test]
    fn significant_clusters_sorted_by_size() {
        let clustering =
            Clustering::from_members(vec![vec![0], vec![1, 2, 3], vec![4, 5]], vec![6], 7);
        let sig = clustering.significant_clusters(2);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig[0].len(), 3);
        assert_eq!(sig[1].len(), 2);
    }

    #[test]
    fn significant_clusters_never_yields_empty_members() {
        // Regression: an empty cluster slipping through `min_size == 0`
        // panicked the pipeline's `members[0]` prototype fallback.
        let clustering = Clustering::from_members(vec![vec![], vec![0, 1], vec![]], vec![2], 3);
        let sig = clustering.significant_clusters(0);
        assert_eq!(sig.len(), 1);
        assert!(sig.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn is_partition_detects_duplicates_and_gaps() {
        let bad = Clustering::from_members(vec![vec![0, 1], vec![1]], vec![], 3);
        assert!(!bad.is_partition());
        let gap = Clustering::from_members(vec![vec![0]], vec![], 2);
        assert!(!gap.is_partition());
        let oob = Clustering::from_members(vec![vec![5]], vec![], 2);
        assert!(!oob.is_partition());
    }

    #[test]
    fn compute_prototypes_fills_all_clusters() {
        let pts = [0.0f64, 0.1, 0.2, 9.0, 9.1, 9.3];
        let r = dbscan(&pts, &DbscanParams::new(0.5, 2), abs_dist);
        let mut clustering = Clustering::from_dbscan(&r);
        clustering.compute_prototypes(&pts, abs_dist);
        assert!(clustering.clusters.iter().all(|c| c.prototype.is_some()));
    }
}
