//! Distributed clustering: partition → per-partition DBSCAN → reduce.
//!
//! The Kizzle deployment partitions each day's samples across a cluster of
//! ~50 machines, runs the clustering independently per partition, and
//! reconciles the partition-level clusters in a final reduce step (paper
//! §III-A, Fig. 7; the reduce step is reported as the scalability
//! bottleneck in §IV). This module reproduces that dataflow with a
//! rayon-parallel map: the algorithmic structure — including the
//! reduce-side reconciliation by prototype distance — is identical, only
//! the transport differs. Token-string paths assign partitions by
//! **content key** ([`partition_key`]): the same sample lands in the same
//! partition every day regardless of the day's size, which is what lets
//! per-partition state memoize across the heavily overlapping daily
//! corpora (the generic callback path, which has no content to key on,
//! keeps the legacy seeded shuffle).
//!
//! Token-string workloads ([`DistributedClusterer::cluster_token_strings`],
//! the path the daily pipeline takes) are a thin wrapper over the
//! incremental [`CorpusEngine`](crate::engine::CorpusEngine): the day is
//! loaded into a throwaway engine and clustered through the shared
//! partition/reduce machinery, so the one-shot batch path and the warm
//! multi-day path are literally the same code. The reduce step no longer
//! reconciles merged prototypes all-pairs: prototype merge edges and noise
//! re-adoption lookups are routed through a small
//! [`NeighborIndex`] (the paper names exactly
//! this reconciliation as its bottleneck), with the reconciliation and
//! adoption phases timed separately in [`DistributedStats`].

use crate::clustering::{Cluster, Clustering};
use crate::dbscan::{dbscan, DbscanParams};
use crate::index::{IndexStats, NeighborIndex};
use crate::store::SampleId;
use kizzle_telemetry::trace::SpanGuard;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a distributed clustering run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedConfig {
    /// Number of partitions ("machines"). Each partition is clustered on its
    /// own worker.
    pub partitions: usize,
    /// DBSCAN parameters used inside every partition and for reduce-side
    /// reconciliation.
    pub dbscan: DbscanParams,
    /// Seed for the random partitioning, so runs are reproducible.
    pub seed: u64,
}

impl DistributedConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    #[must_use]
    pub fn new(partitions: usize, dbscan: DbscanParams, seed: u64) -> Self {
        assert!(partitions >= 1, "at least one partition is required");
        DistributedConfig {
            partitions,
            dbscan,
            seed,
        }
    }
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig::new(4, DbscanParams::kizzle_default(), 0)
    }
}

/// Timing and size statistics of a distributed clustering run, used by the
/// "Cluster-Based Processing Performance" experiment (paper §IV).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistributedStats {
    /// Wall-clock time spent partitioning the input.
    pub partition_time: Duration,
    /// Wall-clock time of the parallel map (per-partition DBSCAN) phase.
    /// On the engine paths this includes the neighborhood queries.
    pub map_time: Duration,
    /// Wall-clock time of the whole reduce phase
    /// (`reconcile_time + adopt_time` plus final bookkeeping).
    pub reduce_time: Duration,
    /// Reduce sub-phase: partition-level medoids plus the merge of
    /// partition clusters whose prototypes fall within `eps`.
    pub reconcile_time: Duration,
    /// Reduce sub-phase: merged-cluster medoids plus the re-adoption of
    /// noise points near a merged prototype.
    pub adopt_time: Duration,
    /// Wall-clock time of the *final* per-cluster prototype computation
    /// (`compute_prototypes` in the reduce epilogue). It is all-pairs per
    /// (capped) cluster and dominates days with large clusters, but ran
    /// after `reduce_time` was stamped — untimed until ISSUE 4 made it
    /// visible.
    pub prototype_time: Duration,
    /// Number of clusters found in each partition, before reconciliation.
    pub per_partition_clusters: Vec<usize>,
    /// Number of clusters after reconciliation.
    pub merged_clusters: usize,
    /// Number of samples classified as noise after reconciliation.
    pub noise: usize,
    /// Aggregated neighbor-index work counters of the map phase (engine
    /// paths only; zero for the generic distance-callback path).
    pub index: IndexStats,
    /// Work counters of the reduce step's throwaway prototype indexes
    /// (token-string paths only).
    pub reduce_index: IndexStats,
}

impl DistributedStats {
    /// Total wall-clock time of the run, final prototype pass included.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.partition_time + self.map_time + self.reduce_time + self.prototype_time
    }
}

/// Per-partition map output: member lists (global indices) and noise
/// (global indices).
pub(crate) type PartitionOutcome = (Vec<Vec<usize>>, Vec<usize>);

/// Seeded random partitioning of `0..n` into at most `partitions` chunks —
/// the legacy assignment of the generic distance-callback path, where no
/// content is available to key on.
pub(crate) fn partition_indices(n: usize, partitions: usize, seed: u64) -> Vec<Vec<usize>> {
    if n == 0 {
        // `chunks` panics on a zero chunk size; an empty day partitions
        // into nothing.
        return Vec::new();
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices
        .chunks(n.div_ceil(partitions))
        .map(<[usize]>::to_vec)
        .collect()
}

/// Stable 64-bit content key for partition assignment: FNV-1a over the
/// sample bytes. Deliberately *not* the std hasher — the key must be
/// identical across processes, platforms and Rust releases, because
/// partition assignment shapes clustering results that snapshots and CI
/// golden reports pin byte-for-byte.
#[must_use]
pub fn partition_key(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Content-stable partition assignment: sample `i` lands in partition
/// `mix(keys[i], seed) % partitions`, so the *same content* maps to the
/// *same partition* on every day, at every day size (the legacy shuffle
/// re-dealt everything whenever `n` changed). That stability is what lets
/// per-partition neighborhoods memoize across heavily overlapping days —
/// the first ROADMAP follow-up from PR 2. Duplicated content shares a key
/// and therefore a partition; empty partitions are kept (their DBSCAN run
/// is a no-op) so the outcome count stays `partitions` regardless of the
/// key distribution.
pub(crate) fn partition_by_key(keys: &[u64], partitions: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for (i, &key) in keys.iter().enumerate() {
        // splitmix64-style finalizer over (key, seed): the raw FNV key is
        // well-distributed in the low bits but the modulo must also move
        // when the seed does.
        let mut h = key ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        parts[(h % partitions as u64) as usize].push(i);
    }
    parts
}

/// Translate a partition-local DBSCAN result back to global sample indices.
pub(crate) fn partition_outcome(
    result: &crate::dbscan::DbscanResult,
    part: &[usize],
) -> PartitionOutcome {
    let clusters: Vec<Vec<usize>> = (0..result.cluster_count())
        .map(|c| result.members(c).into_iter().map(|i| part[i]).collect())
        .collect();
    let noise: Vec<usize> = result
        .labels()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| (*l == crate::dbscan::Label::Noise).then_some(part[i]))
        .collect();
    (clusters, noise)
}

/// Path-compressing union-find over partition-level cluster ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Flatten partition outcomes into global cluster member lists and noise.
fn flatten_outcomes(partition_results: Vec<PartitionOutcome>) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut all_clusters: Vec<Vec<usize>> = Vec::new();
    let mut all_noise: Vec<usize> = Vec::new();
    for (clusters, noise) in partition_results {
        all_clusters.extend(clusters);
        all_noise.extend(noise);
    }
    (all_clusters, all_noise)
}

/// Medoid prototype per cluster member list, in parallel: the medoid scan
/// is quadratic in (capped) cluster size and independent across clusters.
fn parallel_medoids<T, D>(samples: &[T], clusters: &[Vec<usize>], distance: &D) -> Vec<usize>
where
    T: Sync,
    D: Fn(&T, &T) -> f64 + Sync,
{
    clusters
        .par_iter()
        .map(|members| {
            let mut c = Cluster::new(members.clone());
            c.compute_prototype(samples, distance, 32)
                .expect("non-empty cluster has a prototype")
        })
        .collect()
}

/// Assemble merged clusters from union-find roots, in the deterministic
/// order both reduce variants share: members ascending, clusters ordered by
/// smallest member index.
fn assemble_merged(all_clusters: &[Vec<usize>], uf: &mut UnionFind) -> Vec<Vec<usize>> {
    let mut merged: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for (idx, members) in all_clusters.iter().enumerate() {
        let root = uf.find(idx);
        merged
            .entry(root)
            .or_default()
            .extend(members.iter().copied());
    }
    let mut merged_clusters: Vec<Vec<usize>> = merged.into_values().collect();
    for m in &mut merged_clusters {
        m.sort_unstable();
    }
    merged_clusters.sort_by_key(|m| m.first().copied().unwrap_or(usize::MAX));
    merged_clusters
}

/// Shared reduce epilogue: deterministic ordering, stats bookkeeping, and
/// final prototypes. Both reduce variants must finish identically — the
/// warm/cold and indexed-vs-generic equivalence properties depend on it.
fn finish_reduce<T, D>(
    samples: &[T],
    distance: &D,
    mut merged_clusters: Vec<Vec<usize>>,
    mut remaining_noise: Vec<usize>,
    reduce_span: SpanGuard,
    stats: &mut DistributedStats,
) -> Clustering
where
    T: Sync,
    D: Fn(&T, &T) -> f64 + Sync,
{
    for m in &mut merged_clusters {
        m.sort_unstable();
    }
    remaining_noise.sort_unstable();
    stats.reduce_time = reduce_span.finish();
    stats.merged_clusters = merged_clusters.len();
    stats.noise = remaining_noise.len();

    let mut clustering = Clustering::from_members(merged_clusters, remaining_noise, samples.len());
    // Timed separately from the reduce phases: this final all-pairs pass
    // dominates days with large clusters (ROADMAP), and an untimed hotspot
    // cannot be optimized against a baseline.
    let proto_span = kizzle_telemetry::span!("cluster.prototypes");
    clustering.compute_prototypes(samples, distance);
    stats.prototype_time = proto_span.finish();
    clustering
}

/// Reduce for the generic distance-callback path: reconcile partition-level
/// clusters by all-pairs prototype distance, then re-adopt noise points
/// close to a merged prototype. Arbitrary distances cannot go through the
/// neighbor index; token-string workloads use [`reduce_token`] instead.
fn reduce_generic<T, D>(
    samples: &[T],
    params: &DbscanParams,
    partition_results: Vec<PartitionOutcome>,
    distance: &D,
    stats: &mut DistributedStats,
) -> Clustering
where
    T: Sync,
    D: Fn(&T, &T) -> f64 + Sync,
{
    let reduce_span = kizzle_telemetry::span!("cluster.reduce");
    let reconcile_span = kizzle_telemetry::span!("cluster.reconcile");
    let (all_clusters, all_noise) = flatten_outcomes(partition_results);

    let prototypes = parallel_medoids(samples, &all_clusters, distance);
    let mut uf = UnionFind::new(all_clusters.len());
    for i in 0..prototypes.len() {
        for j in i + 1..prototypes.len() {
            if distance(&samples[prototypes[i]], &samples[prototypes[j]]) <= params.eps {
                uf.union(i, j);
            }
        }
    }
    let mut merged_clusters = assemble_merged(&all_clusters, &mut uf);
    stats.reconcile_time = reconcile_span.finish();

    // Re-adopt noise points that are within eps of a merged prototype.
    let adopt_span = kizzle_telemetry::span!("cluster.adopt");
    let merged_prototypes = parallel_medoids(samples, &merged_clusters, distance);
    let mut remaining_noise = Vec::new();
    for idx in all_noise {
        let mut adopted = false;
        for (c, &proto) in merged_prototypes.iter().enumerate() {
            if distance(&samples[idx], &samples[proto]) <= params.eps {
                merged_clusters[c].push(idx);
                adopted = true;
                break;
            }
        }
        if !adopted {
            remaining_noise.push(idx);
        }
    }
    stats.adopt_time = adopt_span.finish();

    finish_reduce(
        samples,
        distance,
        merged_clusters,
        remaining_noise,
        reduce_span,
        stats,
    )
}

/// Index-routed reduce for token-string workloads: identical merge and
/// adoption semantics to [`reduce_generic`] with the paper's bounded
/// distance, but prototype merge edges and noise-adoption lookups go
/// through a small [`NeighborIndex`] instead of all-pairs scans — at
/// production partition counts the all-pairs reconciliation is the
/// bottleneck the paper calls out in §IV.
pub(crate) fn reduce_token<T>(
    samples: &[T],
    params: &DbscanParams,
    partition_results: Vec<PartitionOutcome>,
    stats: &mut DistributedStats,
) -> Clustering
where
    T: AsRef<[u8]> + Sync,
{
    let eps = params.eps;
    let distance = move |a: &T, b: &T| {
        crate::distance::normalized_edit_distance_bounded(a.as_ref(), b.as_ref(), eps)
            .unwrap_or(1.0)
    };
    let reduce_span = kizzle_telemetry::span!("cluster.reduce");
    let reconcile_span = kizzle_telemetry::span!("cluster.reconcile");
    let (all_clusters, all_noise) = flatten_outcomes(partition_results);

    let prototypes = parallel_medoids(samples, &all_clusters, &distance);
    // Prototype pairs within eps become merge edges. The throwaway index
    // answers the eps-ball of every prototype through the filter chain;
    // symmetry makes each edge appear from both endpoints, which union-find
    // absorbs.
    let mut proto_index = NeighborIndex::build(
        &prototypes
            .iter()
            .map(|&p| samples[p].as_ref())
            .collect::<Vec<_>>(),
        eps,
    );
    let mut uf = UnionFind::new(all_clusters.len());
    for i in 0..prototypes.len() {
        for &j in proto_index.cached_slots(u32::try_from(i).expect("prototype count fits u32")) {
            uf.union(i, j as usize);
        }
    }
    stats.reduce_index.merge(&proto_index.take_stats());
    let mut merged_clusters = assemble_merged(&all_clusters, &mut uf);
    stats.reconcile_time = reconcile_span.finish();

    // Re-adopt noise points that are within eps of a merged prototype: each
    // noise sample queries the merged-prototype index and joins the first
    // matching cluster (smallest id), exactly as the all-pairs scan did.
    let adopt_span = kizzle_telemetry::span!("cluster.adopt");
    let merged_prototypes = parallel_medoids(samples, &merged_clusters, &distance);
    // Structural insert only: adoption uses external queries, so eagerly
    // memoized prototype-vs-prototype eps-balls would be thrown away.
    let mut adopt_index = NeighborIndex::new(eps);
    adopt_index.insert_batch_unmemoized(
        merged_prototypes
            .iter()
            .enumerate()
            .map(|(c, &p)| {
                (
                    SampleId::new(u32::try_from(c).expect("cluster count fits u32")),
                    Arc::from(samples[p].as_ref()),
                )
            })
            .collect(),
    );
    let mut remaining_noise = Vec::new();
    for idx in all_noise {
        // `query` returns ascending ids, so the first hit is the first
        // cluster in merged order.
        match adopt_index.query(samples[idx].as_ref()).first() {
            Some(&cluster) => merged_clusters[cluster.raw() as usize].push(idx),
            None => remaining_noise.push(idx),
        }
    }
    stats.reduce_index.merge(&adopt_index.take_stats());
    stats.adopt_time = adopt_span.finish();

    finish_reduce(
        samples,
        &distance,
        merged_clusters,
        remaining_noise,
        reduce_span,
        stats,
    )
}

/// The distributed clustering driver.
#[derive(Debug, Clone, Default)]
pub struct DistributedClusterer {
    config: DistributedConfig,
}

impl DistributedClusterer {
    /// Create a driver with the given configuration.
    #[must_use]
    pub fn new(config: DistributedConfig) -> Self {
        DistributedClusterer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Cluster `samples` with an arbitrary (symmetric) distance function.
    ///
    /// Partitions are clustered with the callback-based [`dbscan`] on a
    /// rayon-parallel map — arbitrary distances cannot go through the
    /// neighbor index; token strings should use
    /// [`DistributedClusterer::cluster_token_strings`] instead.
    ///
    /// Returns the reconciled global [`Clustering`] (indices refer to
    /// `samples`) and run statistics.
    pub fn cluster_with<T, D>(&self, samples: &[T], distance: D) -> (Clustering, DistributedStats)
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        let partition_span = kizzle_telemetry::span!("cluster.partition");
        let partitions = partition_indices(samples.len(), self.config.partitions, self.config.seed);
        self.cluster_partitioned(samples, partitions, partition_span.finish(), distance)
    }

    /// Like [`DistributedClusterer::cluster_with`], but with the
    /// content-stable partition assignment: `keys[i]` is the partition key
    /// of `samples[i]` (see [`partition_key`]), and the assignment depends
    /// only on `(key, seed, partitions)` — never on the day size. This is
    /// the partitioning the engine paths use; routing the generic callback
    /// path through the same keys keeps the two byte-identical (the
    /// `indexed_path_matches_generic_path` property).
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `samples` have different lengths.
    pub fn cluster_with_keys<T, D>(
        &self,
        samples: &[T],
        keys: &[u64],
        distance: D,
    ) -> (Clustering, DistributedStats)
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        assert_eq!(samples.len(), keys.len(), "one key per sample");
        let partition_span = kizzle_telemetry::span!("cluster.partition");
        let partitions = partition_by_key(keys, self.config.partitions, self.config.seed);
        self.cluster_partitioned(samples, partitions, partition_span.finish(), distance)
    }

    /// Shared map + reduce over an already-computed partition assignment.
    fn cluster_partitioned<T, D>(
        &self,
        samples: &[T],
        partitions: Vec<Vec<usize>>,
        partition_time: Duration,
        distance: D,
    ) -> (Clustering, DistributedStats)
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        let mut stats = DistributedStats::default();
        if samples.is_empty() {
            return (Clustering::default(), stats);
        }
        stats.partition_time = partition_time;

        let params = self.config.dbscan;
        let map_span = kizzle_telemetry::span!("cluster.map");
        let outcomes: Vec<PartitionOutcome> = partitions
            .par_iter()
            .map(|part| {
                let local: Vec<&T> = part.iter().map(|&i| &samples[i]).collect();
                let result = dbscan(&local, &params, |a, b| distance(a, b));
                partition_outcome(&result, part)
            })
            .collect();
        stats.map_time = map_span.finish();
        for outcome in &outcomes {
            stats.per_partition_clusters.push(outcome.0.len());
        }

        let clustering = reduce_generic(samples, &params, outcomes, &distance, &mut stats);
        (clustering, stats)
    }

    /// Cluster token-class strings with the paper's normalized edit
    /// distance at `eps`, through the incremental engine: the day is loaded
    /// into a throwaway [`CorpusEngine`](crate::engine::CorpusEngine) and
    /// clustered with memoized, parallel neighborhood queries and the
    /// index-routed reduce.
    ///
    /// Label-equivalent to routing the bounded distance through
    /// [`DistributedClusterer::cluster_with`], as the seed did, but
    /// dramatically faster — see `benches/clustering_indexed_vs_naive.rs` —
    /// and byte-identical to a warm multi-day engine clustering the same
    /// samples (the property tests in `tests/incremental_properties.rs`
    /// hold both paths to that).
    pub fn cluster_token_strings<S: AsRef<[u8]> + Sync>(
        &self,
        samples: &[S],
    ) -> (Clustering, DistributedStats) {
        let mut engine = crate::engine::CorpusEngine::new(self.config);
        let ids = engine.add_batch(0, samples);
        engine.cluster_day(&ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three synthetic "families" of token strings plus random noise.
    fn synthetic_samples(per_family: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let mut samples = Vec::new();
        let mut family_of = Vec::new();
        let bases: Vec<Vec<u8>> = vec![
            (0..120).map(|i| (i % 5) as u8).collect(),
            (0..150).map(|i| ((i * 3) % 6) as u8).collect(),
            (0..90).map(|i| ((i * 7 + 1) % 4) as u8).collect(),
        ];
        for (f, base) in bases.iter().enumerate() {
            for v in 0..per_family {
                let mut s = base.clone();
                // Perturb < 5% of positions so members stay within eps=0.1.
                for k in 0..(s.len() / 30) {
                    let pos = (v * 13 + k * 17) % s.len();
                    s[pos] = (s[pos] + 1) % 6;
                }
                samples.push(s);
                family_of.push(f);
            }
        }
        (samples, family_of)
    }

    #[test]
    fn empty_input_is_fine() {
        let clusterer = DistributedClusterer::default();
        let (clustering, stats) = clusterer.cluster_token_strings::<Vec<u8>>(&[]);
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(stats.merged_clusters, 0);
    }

    #[test]
    fn single_partition_equals_plain_dbscan_structure() {
        let (samples, _) = synthetic_samples(5);
        let cfg = DistributedConfig::new(1, DbscanParams::new(0.10, 2), 7);
        let (clustering, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(clustering.cluster_count(), 3);
        assert!(clustering.is_partition());
        assert_eq!(stats.per_partition_clusters.len(), 1);
    }

    #[test]
    fn multi_partition_reconciles_families_split_across_partitions() {
        let (samples, family_of) = synthetic_samples(8);
        let cfg = DistributedConfig::new(4, DbscanParams::new(0.10, 2), 42);
        let (clustering, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.is_partition());
        // All three families must be re-united by the reduce step.
        assert_eq!(clustering.cluster_count(), 3, "stats: {stats:?}");
        // Every cluster must be family-pure.
        for cluster in &clustering.clusters {
            let families: std::collections::HashSet<_> =
                cluster.members.iter().map(|&i| family_of[i]).collect();
            assert_eq!(families.len(), 1, "cluster mixes families");
        }
        assert_eq!(stats.merged_clusters, 3);
    }

    #[test]
    fn noise_points_stay_noise() {
        let (mut samples, _) = synthetic_samples(4);
        // Add two wildly different samples.
        samples.push((0..40).map(|i| (i % 2) as u8 + 4).collect());
        samples.push((0..300).map(|_| 3u8).collect());
        let noise_a = samples.len() - 2;
        let noise_b = samples.len() - 1;
        let cfg = DistributedConfig::new(3, DbscanParams::new(0.10, 2), 1);
        let (clustering, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.noise.contains(&noise_a));
        assert!(clustering.noise.contains(&noise_b));
    }

    #[test]
    fn deterministic_given_seed() {
        let (samples, _) = synthetic_samples(6);
        let cfg = DistributedConfig::new(4, DbscanParams::new(0.10, 2), 99);
        let (a, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        let (b, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_path_matches_generic_path() {
        // The engine-backed token-string path (memoized index queries,
        // index-routed reduce) must produce the same clustering as routing
        // the bounded distance through the generic callback path (what the
        // seed implementation did), given the same content-keyed partition
        // assignment.
        let (mut samples, _) = synthetic_samples(7);
        samples.push((0..40).map(|i| (i % 3) as u8 + 6).collect());
        samples.push(Vec::new());
        let keys: Vec<u64> = samples.iter().map(|s| partition_key(s)).collect();
        for partitions in [1, 3, 5] {
            let cfg = DistributedConfig::new(partitions, DbscanParams::new(0.10, 2), 11);
            let clusterer = DistributedClusterer::new(cfg);
            let (indexed, _) = clusterer.cluster_token_strings(&samples);
            let eps = cfg.dbscan.eps;
            let (generic, _) =
                clusterer.cluster_with_keys(&samples, &keys, |a: &Vec<u8>, b: &Vec<u8>| {
                    crate::distance::normalized_edit_distance_bounded(a, b, eps).unwrap_or(1.0)
                });
            assert_eq!(indexed, generic, "partitions = {partitions}");
        }
    }

    #[test]
    fn partition_assignment_is_content_stable() {
        // The same content must land in the same partition regardless of
        // how many *other* samples share the day — the property that lets
        // per-partition state memoize across overlapping days.
        let (samples, _) = synthetic_samples(6);
        let keys: Vec<u64> = samples.iter().map(|s| partition_key(s)).collect();
        let partitions = 4;
        let seed = 42;
        let full = partition_by_key(&keys, partitions, seed);
        let part_of = |parts: &[Vec<usize>], i: usize| {
            parts
                .iter()
                .position(|p| p.contains(&i))
                .expect("every index assigned")
        };
        // Drop half the day: the survivors keep their partitions.
        let survivors: Vec<usize> = (0..samples.len()).filter(|i| i % 2 == 0).collect();
        let kept_keys: Vec<u64> = survivors.iter().map(|&i| keys[i]).collect();
        let reduced = partition_by_key(&kept_keys, partitions, seed);
        for (new_pos, &old_pos) in survivors.iter().enumerate() {
            assert_eq!(
                part_of(&full, old_pos),
                part_of(&reduced, new_pos),
                "sample {old_pos} moved partitions when the day shrank"
            );
        }
        // The seed still matters: a different seed deals a different hand
        // for at least one sample (overwhelmingly likely at this size).
        let reseeded = partition_by_key(&keys, partitions, seed ^ 0xDEAD);
        assert_ne!(full, reseeded);
        // Duplicated content shares a partition by construction.
        let dup_keys = vec![keys[0], keys[1], keys[0]];
        let dup = partition_by_key(&dup_keys, partitions, seed);
        assert_eq!(part_of(&dup, 0), part_of(&dup, 2));
    }

    #[test]
    fn empty_input_clusters_to_nothing_on_every_path() {
        let cfg = DistributedConfig::new(3, DbscanParams::new(0.10, 2), 5);
        let clusterer = DistributedClusterer::new(cfg);
        let none: &[Vec<u8>] = &[];
        let (clustering, _) =
            clusterer.cluster_with(none, |a, b| crate::normalized_edit_distance(a, b));
        assert_eq!(clustering, Clustering::default());
        let (clustering, _) =
            clusterer.cluster_with_keys(none, &[], |a, b| crate::normalized_edit_distance(a, b));
        assert_eq!(clustering, Clustering::default());
        let (clustering, _) = clusterer.cluster_token_strings::<Vec<u8>>(&[]);
        assert_eq!(clustering, Clustering::default());
    }

    #[test]
    fn index_stats_are_aggregated() {
        let (samples, _) = synthetic_samples(5);
        let cfg = DistributedConfig::new(3, DbscanParams::new(0.10, 2), 5);
        let (_, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        // Every (distinct) sample's neighborhood is computed exactly once.
        assert_eq!(stats.index.queries, samples.len());
        assert!(stats.index.distance_calls <= stats.index.window_candidates);
    }

    #[test]
    fn stats_are_populated() {
        let (samples, _) = synthetic_samples(4);
        let cfg = DistributedConfig::new(2, DbscanParams::new(0.10, 2), 5);
        let (_, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(stats.per_partition_clusters.len(), 2);
        assert!(stats.total_time() >= stats.reduce_time);
        assert!(stats.reduce_time >= stats.reconcile_time);
        assert!(stats.merged_clusters > 0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = DistributedConfig::new(0, DbscanParams::kizzle_default(), 0);
    }

    #[test]
    fn more_partitions_than_samples() {
        let (samples, _) = synthetic_samples(1);
        let cfg = DistributedConfig::new(16, DbscanParams::new(0.10, 1), 3);
        let (clustering, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.is_partition());
    }
}
