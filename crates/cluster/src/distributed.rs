//! Distributed clustering: partition → per-partition DBSCAN → reduce.
//!
//! The Kizzle deployment randomly partitions each day's samples across a
//! cluster of ~50 machines, runs the clustering independently per partition,
//! and reconciles the partition-level clusters in a final reduce step (paper
//! §III-A, Fig. 7; the reduce step is reported as the scalability
//! bottleneck in §IV). This module reproduces that dataflow with a
//! rayon-parallel map: the algorithmic structure — including the
//! reduce-side reconciliation by prototype distance — is identical, only
//! the transport differs.
//!
//! Token-string workloads ([`DistributedClusterer::cluster_token_strings`],
//! the path the daily pipeline takes) run each partition through the
//! indexed engine ([`crate::dbscan::dbscan_indexed`]): neighborhood queries
//! go through the [`crate::index::NeighborIndex`] filter chain and are
//! themselves parallelized, so a partition no longer pays the
//! all-pairs banded edit distance.

use crate::clustering::{Cluster, Clustering};
use crate::dbscan::{dbscan, dbscan_indexed, DbscanParams};
use crate::index::IndexStats;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Configuration of a distributed clustering run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedConfig {
    /// Number of partitions ("machines"). Each partition is clustered on its
    /// own worker.
    pub partitions: usize,
    /// DBSCAN parameters used inside every partition and for reduce-side
    /// reconciliation.
    pub dbscan: DbscanParams,
    /// Seed for the random partitioning, so runs are reproducible.
    pub seed: u64,
}

impl DistributedConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    #[must_use]
    pub fn new(partitions: usize, dbscan: DbscanParams, seed: u64) -> Self {
        assert!(partitions >= 1, "at least one partition is required");
        DistributedConfig {
            partitions,
            dbscan,
            seed,
        }
    }
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig::new(4, DbscanParams::kizzle_default(), 0)
    }
}

/// Timing and size statistics of a distributed clustering run, used by the
/// "Cluster-Based Processing Performance" experiment (paper §IV).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistributedStats {
    /// Wall-clock time spent partitioning the input.
    pub partition_time: Duration,
    /// Wall-clock time of the parallel map (per-partition DBSCAN) phase.
    pub map_time: Duration,
    /// Wall-clock time of the reduce (reconciliation) phase.
    pub reduce_time: Duration,
    /// Number of clusters found in each partition, before reconciliation.
    pub per_partition_clusters: Vec<usize>,
    /// Number of clusters after reconciliation.
    pub merged_clusters: usize,
    /// Number of samples classified as noise after reconciliation.
    pub noise: usize,
    /// Aggregated neighbor-index work counters (token-string runs only;
    /// zero for the generic distance-callback path).
    pub index: IndexStats,
}

impl DistributedStats {
    /// Total wall-clock time of the run.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.partition_time + self.map_time + self.reduce_time
    }
}

/// Per-partition map output: member lists (global indices) and noise
/// (global indices).
type PartitionOutcome = (Vec<Vec<usize>>, Vec<usize>);

/// The distributed clustering driver.
#[derive(Debug, Clone, Default)]
pub struct DistributedClusterer {
    config: DistributedConfig,
}

impl DistributedClusterer {
    /// Create a driver with the given configuration.
    #[must_use]
    pub fn new(config: DistributedConfig) -> Self {
        DistributedClusterer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Phase 1: seeded random partitioning into index sets.
    fn partition_indices(&self, n: usize) -> Vec<Vec<usize>> {
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        indices.shuffle(&mut rng);
        indices
            .chunks(n.div_ceil(self.config.partitions))
            .map(<[usize]>::to_vec)
            .collect()
    }

    /// Phases 1–2: partition the input and run `map_one` over the
    /// partitions in parallel, recording the phase timings, per-partition
    /// cluster counts, and aggregated index counters (the generic path
    /// reports [`IndexStats::default`]).
    fn map_partitions<F>(
        &self,
        n: usize,
        stats: &mut DistributedStats,
        map_one: F,
    ) -> Vec<PartitionOutcome>
    where
        F: Fn(&[usize]) -> (PartitionOutcome, IndexStats) + Sync,
    {
        let t0 = Instant::now();
        let partitions = self.partition_indices(n);
        stats.partition_time = t0.elapsed();

        let t1 = Instant::now();
        let results: Vec<(PartitionOutcome, IndexStats)> = partitions
            .par_iter()
            .map(|part| map_one(part))
            .collect();
        stats.map_time = t1.elapsed();

        let mut outcomes = Vec::with_capacity(results.len());
        for (outcome, index_stats) in results {
            stats.index.merge(&index_stats);
            stats.per_partition_clusters.push(outcome.0.len());
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Phase 3: reconcile partition-level clusters by prototype distance,
    /// then re-adopt noise points close to a merged prototype.
    fn reduce<T, D>(
        samples: &[T],
        params: &DbscanParams,
        partition_results: Vec<PartitionOutcome>,
        distance: &D,
        stats: &mut DistributedStats,
    ) -> Clustering
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        let t2 = Instant::now();
        let mut all_clusters: Vec<Vec<usize>> = Vec::new();
        let mut all_noise: Vec<usize> = Vec::new();
        for (clusters, noise) in partition_results {
            all_clusters.extend(clusters);
            all_noise.extend(noise);
        }

        // Prototype (medoid) per partition-level cluster, in parallel: the
        // medoid scan is quadratic in (capped) cluster size and independent
        // across clusters.
        let prototypes: Vec<usize> = all_clusters
            .par_iter()
            .map(|members| {
                let mut c = Cluster::new(members.clone());
                c.compute_prototype(samples, distance, 32)
                    .expect("non-empty cluster has a prototype")
            })
            .collect();

        // Union-find over partition-level clusters.
        let mut parent: Vec<usize> = (0..all_clusters.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for i in 0..prototypes.len() {
            for j in i + 1..prototypes.len() {
                if distance(&samples[prototypes[i]], &samples[prototypes[j]]) <= params.eps {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }

        let mut merged: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, members) in all_clusters.iter().enumerate() {
            let root = find(&mut parent, idx);
            merged.entry(root).or_default().extend(members.iter().copied());
        }
        let mut merged_clusters: Vec<Vec<usize>> = merged.into_values().collect();
        // Deterministic order: by smallest member index.
        for m in &mut merged_clusters {
            m.sort_unstable();
        }
        merged_clusters.sort_by_key(|m| m.first().copied().unwrap_or(usize::MAX));

        // Re-adopt noise points that are within eps of a merged prototype.
        let merged_prototypes: Vec<usize> = merged_clusters
            .par_iter()
            .map(|members| {
                let mut c = Cluster::new(members.clone());
                c.compute_prototype(samples, distance, 32)
                    .expect("non-empty cluster has a prototype")
            })
            .collect();
        let mut remaining_noise = Vec::new();
        for idx in all_noise {
            let mut adopted = false;
            for (c, &proto) in merged_prototypes.iter().enumerate() {
                if distance(&samples[idx], &samples[proto]) <= params.eps {
                    merged_clusters[c].push(idx);
                    adopted = true;
                    break;
                }
            }
            if !adopted {
                remaining_noise.push(idx);
            }
        }
        for m in &mut merged_clusters {
            m.sort_unstable();
        }
        remaining_noise.sort_unstable();
        stats.reduce_time = t2.elapsed();
        stats.merged_clusters = merged_clusters.len();
        stats.noise = remaining_noise.len();

        let mut clustering =
            Clustering::from_members(merged_clusters, remaining_noise, samples.len());
        clustering.compute_prototypes(samples, distance);
        clustering
    }

    /// Cluster `samples` with an arbitrary (symmetric) distance function.
    ///
    /// Partitions are clustered with the callback-based [`dbscan`] on a
    /// rayon-parallel map — arbitrary distances cannot go through the
    /// neighbor index; token strings should use
    /// [`DistributedClusterer::cluster_token_strings`] instead.
    ///
    /// Returns the reconciled global [`Clustering`] (indices refer to
    /// `samples`) and run statistics.
    pub fn cluster_with<T, D>(&self, samples: &[T], distance: D) -> (Clustering, DistributedStats)
    where
        T: Sync,
        D: Fn(&T, &T) -> f64 + Sync,
    {
        let mut stats = DistributedStats::default();
        if samples.is_empty() {
            return (Clustering::default(), stats);
        }

        let params = self.config.dbscan;
        let outcomes = self.map_partitions(samples.len(), &mut stats, |part| {
            let local: Vec<&T> = part.iter().map(|&i| &samples[i]).collect();
            let result = dbscan(&local, &params, |a, b| distance(a, b));
            (partition_outcome(&result, part), IndexStats::default())
        });

        let clustering = Self::reduce(samples, &params, outcomes, &distance, &mut stats);
        (clustering, stats)
    }

    /// Cluster token-class strings with the paper's normalized edit
    /// distance at `eps`, through the indexed engine: per-partition
    /// [`dbscan_indexed`] (length window → histogram bound → bit-parallel
    /// distance, parallel neighborhood queries), then the shared reduce.
    ///
    /// Label-equivalent to routing the bounded distance through
    /// [`DistributedClusterer::cluster_with`], as the seed did, but
    /// dramatically faster — see `benches/clustering_indexed_vs_naive.rs`.
    pub fn cluster_token_strings(
        &self,
        samples: &[Vec<u8>],
    ) -> (Clustering, DistributedStats) {
        let mut stats = DistributedStats::default();
        if samples.is_empty() {
            return (Clustering::default(), stats);
        }

        let params = self.config.dbscan;
        let outcomes = self.map_partitions(samples.len(), &mut stats, |part| {
            let local: Vec<&Vec<u8>> = part.iter().map(|&i| &samples[i]).collect();
            let (result, index_stats) = dbscan_indexed(&local, &params);
            (partition_outcome(&result, part), index_stats)
        });

        // The reduce step compares only prototypes and noise — a tiny
        // fraction of the pairs — so the plain bounded distance suffices.
        let eps = params.eps;
        let distance = move |a: &Vec<u8>, b: &Vec<u8>| {
            crate::distance::normalized_edit_distance_bounded(a, b, eps).unwrap_or(1.0)
        };
        let clustering = Self::reduce(samples, &params, outcomes, &distance, &mut stats);
        (clustering, stats)
    }
}

/// Translate a partition-local DBSCAN result back to global sample indices.
fn partition_outcome(result: &crate::dbscan::DbscanResult, part: &[usize]) -> PartitionOutcome {
    let clusters: Vec<Vec<usize>> = (0..result.cluster_count())
        .map(|c| result.members(c).into_iter().map(|i| part[i]).collect())
        .collect();
    let noise: Vec<usize> = result
        .labels()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| (*l == crate::dbscan::Label::Noise).then_some(part[i]))
        .collect();
    (clusters, noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three synthetic "families" of token strings plus random noise.
    fn synthetic_samples(per_family: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let mut samples = Vec::new();
        let mut family_of = Vec::new();
        let bases: Vec<Vec<u8>> = vec![
            (0..120).map(|i| (i % 5) as u8).collect(),
            (0..150).map(|i| ((i * 3) % 6) as u8).collect(),
            (0..90).map(|i| ((i * 7 + 1) % 4) as u8).collect(),
        ];
        for (f, base) in bases.iter().enumerate() {
            for v in 0..per_family {
                let mut s = base.clone();
                // Perturb < 5% of positions so members stay within eps=0.1.
                for k in 0..(s.len() / 30) {
                    let pos = (v * 13 + k * 17) % s.len();
                    s[pos] = (s[pos] + 1) % 6;
                }
                samples.push(s);
                family_of.push(f);
            }
        }
        (samples, family_of)
    }

    #[test]
    fn empty_input_is_fine() {
        let clusterer = DistributedClusterer::default();
        let (clustering, stats) = clusterer.cluster_token_strings(&[]);
        assert_eq!(clustering.cluster_count(), 0);
        assert_eq!(stats.merged_clusters, 0);
    }

    #[test]
    fn single_partition_equals_plain_dbscan_structure() {
        let (samples, _) = synthetic_samples(5);
        let cfg = DistributedConfig::new(1, DbscanParams::new(0.10, 2), 7);
        let (clustering, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(clustering.cluster_count(), 3);
        assert!(clustering.is_partition());
        assert_eq!(stats.per_partition_clusters.len(), 1);
    }

    #[test]
    fn multi_partition_reconciles_families_split_across_partitions() {
        let (samples, family_of) = synthetic_samples(8);
        let cfg = DistributedConfig::new(4, DbscanParams::new(0.10, 2), 42);
        let (clustering, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.is_partition());
        // All three families must be re-united by the reduce step.
        assert_eq!(clustering.cluster_count(), 3, "stats: {stats:?}");
        // Every cluster must be family-pure.
        for cluster in &clustering.clusters {
            let families: std::collections::HashSet<_> =
                cluster.members.iter().map(|&i| family_of[i]).collect();
            assert_eq!(families.len(), 1, "cluster mixes families");
        }
        assert_eq!(stats.merged_clusters, 3);
    }

    #[test]
    fn noise_points_stay_noise() {
        let (mut samples, _) = synthetic_samples(4);
        // Add two wildly different samples.
        samples.push((0..40).map(|i| (i % 2) as u8 + 4).collect());
        samples.push((0..300).map(|_| 3u8).collect());
        let noise_a = samples.len() - 2;
        let noise_b = samples.len() - 1;
        let cfg = DistributedConfig::new(3, DbscanParams::new(0.10, 2), 1);
        let (clustering, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.noise.contains(&noise_a));
        assert!(clustering.noise.contains(&noise_b));
    }

    #[test]
    fn deterministic_given_seed() {
        let (samples, _) = synthetic_samples(6);
        let cfg = DistributedConfig::new(4, DbscanParams::new(0.10, 2), 99);
        let (a, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        let (b, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_path_matches_generic_path() {
        // The indexed token-string engine must produce the same clustering
        // as routing the bounded distance through the generic callback
        // path (what the seed implementation did).
        let (mut samples, _) = synthetic_samples(7);
        samples.push((0..40).map(|i| (i % 3) as u8 + 6).collect());
        samples.push(Vec::new());
        for partitions in [1, 3, 5] {
            let cfg = DistributedConfig::new(partitions, DbscanParams::new(0.10, 2), 11);
            let clusterer = DistributedClusterer::new(cfg);
            let (indexed, _) = clusterer.cluster_token_strings(&samples);
            let eps = cfg.dbscan.eps;
            let (generic, _) = clusterer.cluster_with(&samples, |a: &Vec<u8>, b: &Vec<u8>| {
                crate::distance::normalized_edit_distance_bounded(a, b, eps).unwrap_or(1.0)
            });
            assert_eq!(indexed, generic, "partitions = {partitions}");
        }
    }

    #[test]
    fn index_stats_are_aggregated() {
        let (samples, _) = synthetic_samples(5);
        let cfg = DistributedConfig::new(3, DbscanParams::new(0.10, 2), 5);
        let (_, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        // Every sample is queried exactly once across all partitions.
        assert_eq!(stats.index.queries, samples.len());
        assert!(stats.index.distance_calls <= stats.index.window_candidates);
    }

    #[test]
    fn stats_are_populated() {
        let (samples, _) = synthetic_samples(4);
        let cfg = DistributedConfig::new(2, DbscanParams::new(0.10, 2), 5);
        let (_, stats) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert_eq!(stats.per_partition_clusters.len(), 2);
        assert!(stats.total_time() >= stats.reduce_time);
        assert!(stats.merged_clusters > 0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = DistributedConfig::new(0, DbscanParams::kizzle_default(), 0);
    }

    #[test]
    fn more_partitions_than_samples() {
        let (samples, _) = synthetic_samples(1);
        let cfg = DistributedConfig::new(16, DbscanParams::new(0.10, 1), 3);
        let (clustering, _) = DistributedClusterer::new(cfg).cluster_token_strings(&samples);
        assert!(clustering.is_partition());
    }
}
