//! # kizzle-winnow — winnowing fingerprints for cluster labeling
//!
//! Kizzle labels a cluster by unpacking a prototype sample and comparing it
//! against a corpus of known, unpacked exploit-kit payloads using
//! *winnowing* (Schleimer, Wilkerson, Aiken — SIGMOD 2003), the local
//! document-fingerprinting algorithm originally built for plagiarism
//! detection (paper §III-B). If the winnow-histogram overlap with a known
//! family exceeds a family-specific threshold, the cluster inherits that
//! family's label.
//!
//! The algorithm:
//!
//! 1. normalize the document (drop whitespace, lower-case),
//! 2. hash every `k`-gram with a rolling hash,
//! 3. slide a window of `w` consecutive k-gram hashes over the document and
//!    record the minimum hash of each window (right-most minimum on ties),
//! 4. the selected hashes form the document's fingerprint; two documents are
//!    compared by the overlap of their fingerprint multisets.
//!
//! Winnowing guarantees that any shared substring of length at least
//! `w + k - 1` produces at least one shared fingerprint, which is exactly the
//! property Kizzle relies on: the *unpacked* body of an exploit kit barely
//! changes between variants, so long shared regions persist even when the
//! packer is rewritten daily.
//!
//! ## Example
//!
//! ```
//! use kizzle_winnow::{WinnowConfig, Fingerprint};
//!
//! let cfg = WinnowConfig::default();
//! let a = Fingerprint::of_text("var payload = unpack(document, key); run(payload);", &cfg);
//! let b = Fingerprint::of_text("var payload = unpack(document, key); run(payload); // v2", &cfg);
//! assert!(a.overlap(&b) > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod hash;

pub use fingerprint::{Fingerprint, WinnowConfig};
pub use hash::{kgram_hashes, rolling_hashes};

/// Convenience: similarity (containment of `a` in `b`) of two texts using
/// the default configuration.
///
/// # Examples
///
/// ```
/// let sim = kizzle_winnow::similarity(
///     "function detect(){ return navigator.plugins.length; }",
///     "function detect(){ return navigator.plugins.length; } extra();",
/// );
/// assert!(sim > 0.7);
/// ```
#[must_use]
pub fn similarity(a: &str, b: &str) -> f64 {
    let cfg = WinnowConfig::default();
    Fingerprint::of_text(a, &cfg).overlap(&Fingerprint::of_text(b, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_full_similarity() {
        let t = "var a = document.createElement('script'); a.text = payload;";
        assert!((similarity(t, t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_texts_have_low_similarity() {
        let a = "for (var i = 0; i < pieces.length; i++) { s += String.fromCharCode(pieces[i]); }";
        let b = "function isPlainObject(c) { return this.rgx.any.test(this.toString.call(c)); }";
        assert!(similarity(a, b) < 0.3);
    }

    #[test]
    fn appending_code_keeps_high_containment() {
        // Models the paper's observation that kits evolve by *appending*
        // exploits: the old body stays contained in the new one.
        let v1 = "function exploit_cve_2013_2551(){ spray(); trigger(); } exploit_cve_2013_2551();";
        let v2 = format!("{v1} function exploit_cve_2014_0322(){{ spray2(); trigger2(); }}");
        assert!(similarity(v1, &v2) > 0.85);
    }
}
