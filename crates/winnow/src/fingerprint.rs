//! Winnowing fingerprint selection and histogram comparison.

use crate::hash::rolling_hashes;
use std::collections::HashMap;
use std::fmt;

/// Parameters of the winnowing algorithm.
///
/// The guarantee threshold is `t = window + k - 1`: any substring shared by
/// two documents of at least `t` normalized characters yields at least one
/// shared fingerprint. The noise threshold is `k`: no match shorter than `k`
/// characters is ever detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinnowConfig {
    /// k-gram size in normalized characters.
    pub k: usize,
    /// Window size (number of consecutive k-gram hashes per window).
    pub window: usize,
}

impl WinnowConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `window` is zero.
    #[must_use]
    pub fn new(k: usize, window: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(window > 0, "window must be positive");
        WinnowConfig { k, window }
    }

    /// The guarantee threshold `t = window + k - 1`.
    #[must_use]
    pub fn guarantee_threshold(&self) -> usize {
        self.window + self.k - 1
    }
}

impl Default for WinnowConfig {
    /// `k = 12`, `window = 8`: every shared run of 19+ normalized characters
    /// is guaranteed to be detected. Exploit-kit payload bodies share far
    /// longer runs than that, while 12-character k-grams keep benign
    /// boilerplate (e.g. `function(){return`) from dominating.
    fn default() -> Self {
        WinnowConfig { k: 12, window: 8 }
    }
}

/// A document fingerprint: the multiset of winnowed k-gram hashes
/// ("winnow histogram" in the paper's terminology).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fingerprint {
    counts: HashMap<u64, u32>,
    total: u64,
}

impl Fingerprint {
    /// Fingerprint a document.
    ///
    /// The text is normalized first: ASCII whitespace is removed and ASCII
    /// letters are lower-cased, mirroring the normalization AV scanners and
    /// the original winnowing paper apply so that formatting changes do not
    /// perturb the fingerprint.
    #[must_use]
    pub fn of_text(text: &str, config: &WinnowConfig) -> Self {
        let normalized = normalize(text);
        Self::of_normalized_bytes(&normalized, config)
    }

    /// Fingerprint already-normalized bytes (no whitespace stripping).
    #[must_use]
    pub fn of_normalized_bytes(bytes: &[u8], config: &WinnowConfig) -> Self {
        let hashes = rolling_hashes(bytes, config.k);
        let selected = winnow_select(&hashes, config.window);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for h in &selected {
            *counts.entry(*h).or_insert(0) += 1;
        }
        Fingerprint {
            total: selected.len() as u64,
            counts,
        }
    }

    /// Number of selected fingerprints (with multiplicity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True if the document was too short to produce any fingerprint.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of *distinct* fingerprint hashes.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiset intersection size with another fingerprint.
    #[must_use]
    pub fn intersection_size(&self, other: &Fingerprint) -> u64 {
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(h, c)| u64::from((*c).min(large.counts.get(h).copied().unwrap_or(0))))
            .sum()
    }

    /// Containment of `self` in `other`: the fraction of this document's
    /// fingerprints also present in `other`.
    ///
    /// This is the "overlap" Kizzle uses to decide whether a cluster
    /// prototype matches a known family, and to measure day-over-day
    /// similarity of unpacked kits (paper Fig. 11). Returns 0 when `self`
    /// has no fingerprints.
    #[must_use]
    pub fn overlap(&self, other: &Fingerprint) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.intersection_size(other) as f64 / self.total as f64
    }

    /// Symmetric Jaccard similarity of the two fingerprint multisets.
    #[must_use]
    pub fn jaccard(&self, other: &Fingerprint) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.total + other.total - inter;
        if union == 0 {
            return if self.total == other.total { 1.0 } else { 0.0 };
        }
        inter as f64 / union as f64
    }

    /// Merge another fingerprint into this one (used to build a family-level
    /// reference histogram out of several known samples).
    pub fn merge(&mut self, other: &Fingerprint) {
        for (h, c) in &other.counts {
            *self.counts.entry(*h).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Iterate over `(hash, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(h, c)| (*h, *c))
    }

    /// Reassemble a fingerprint from `(hash, count)` pairs, as produced by
    /// [`Fingerprint::iter`] — the reconstruction half of persisting a
    /// reference corpus. Counts for a repeated hash accumulate; the total
    /// is the sum of counts, matching how fingerprints are built and
    /// merged.
    #[must_use]
    pub fn from_counts<I: IntoIterator<Item = (u64, u32)>>(pairs: I) -> Self {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        let mut total: u64 = 0;
        for (hash, count) in pairs {
            *counts.entry(hash).or_insert(0) += count;
            total += u64::from(count);
        }
        Fingerprint { counts, total }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fingerprint({} marks, {} distinct)",
            self.total,
            self.counts.len()
        )
    }
}

impl FromIterator<u64> for Fingerprint {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut counts = HashMap::new();
        let mut total = 0;
        for h in iter {
            *counts.entry(h).or_insert(0) += 1;
            total += 1;
        }
        Fingerprint { counts, total }
    }
}

/// Normalize text for fingerprinting: drop ASCII whitespace, lower-case
/// ASCII letters.
#[must_use]
pub fn normalize(text: &str) -> Vec<u8> {
    text.bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .map(|b| b.to_ascii_lowercase())
        .collect()
}

/// The winnowing selection: minimum hash of every window of `window`
/// consecutive hashes, taking the right-most minimum on ties, and recording
/// each selected position only once (the standard "robust winnowing" of the
/// original paper).
#[must_use]
pub fn winnow_select(hashes: &[u64], window: usize) -> Vec<u64> {
    assert!(window > 0, "window must be positive");
    if hashes.is_empty() {
        return Vec::new();
    }
    if hashes.len() <= window {
        // Degenerate document: a single window.
        let min = hashes.iter().copied().min().unwrap_or(0);
        return vec![min];
    }
    let mut selected = Vec::new();
    let mut last_selected: Option<usize> = None;
    for start in 0..=hashes.len() - window {
        let slice = &hashes[start..start + window];
        // Right-most minimum.
        let mut min_idx = 0;
        for (i, h) in slice.iter().enumerate() {
            if *h <= slice[min_idx] {
                min_idx = i;
            }
        }
        let global_idx = start + min_idx;
        if last_selected != Some(global_idx) {
            selected.push(hashes[global_idx]);
            last_selected = Some(global_idx);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    const BODY: &str = r#"
        function getBrowser(){ var ua = navigator.userAgent; return ua; }
        function checkAv(){ try { new ActiveXObject("Kaspersky.IeVirtualKeyboardPlugin.JavaScriptApi"); return true; } catch(e) { return false; } }
        function exploit_2013_2551(){ var spray = []; for (var i = 0; i < 4096; i++) { spray.push(block); } trigger(); }
    "#;

    #[test]
    fn from_counts_roundtrips_iter() {
        let config = WinnowConfig::default();
        let original = Fingerprint::of_text(BODY, &config);
        let rebuilt = Fingerprint::from_counts(original.iter());
        assert_eq!(rebuilt.len(), original.len());
        assert_eq!(rebuilt.distinct(), original.distinct());
        // Identical multisets behave identically in every comparison.
        assert_eq!(rebuilt.intersection_size(&original), original.len() as u64);
        assert!((rebuilt.overlap(&original) - 1.0).abs() < 1e-12);
        assert!(Fingerprint::from_counts(std::iter::empty()).is_empty());
    }

    #[test]
    fn config_guarantee_threshold() {
        let cfg = WinnowConfig::new(5, 4);
        assert_eq!(cfg.guarantee_threshold(), 8);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_config_panics() {
        let _ = WinnowConfig::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_config_panics() {
        let _ = WinnowConfig::new(4, 0);
    }

    #[test]
    fn self_overlap_is_one() {
        let cfg = WinnowConfig::default();
        let fp = Fingerprint::of_text(BODY, &cfg);
        assert!(!fp.is_empty());
        assert!((fp.overlap(&fp) - 1.0).abs() < 1e-12);
        assert!((fp.jaccard(&fp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_document_has_empty_fingerprint() {
        let cfg = WinnowConfig::default();
        let fp = Fingerprint::of_text("", &cfg);
        assert!(fp.is_empty());
        assert_eq!(fp.overlap(&fp), 0.0);
    }

    #[test]
    fn whitespace_and_case_do_not_matter() {
        let cfg = WinnowConfig::default();
        let a = Fingerprint::of_text(BODY, &cfg);
        let b = Fingerprint::of_text(&BODY.to_uppercase().replace(' ', "\n\t "), &cfg);
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_long_substring_guarantee() {
        // Winnowing guarantee: a shared run of >= w + k - 1 normalized chars
        // must produce at least one common fingerprint.
        let cfg = WinnowConfig::new(8, 4);
        let shared = "sharedExploitCodeBlockThatIsLongEnough";
        let a = format!("prefix_a_{shared}_suffix_a");
        let b = format!("completely_different_{shared}_tail");
        let fa = Fingerprint::of_text(&a, &cfg);
        let fb = Fingerprint::of_text(&b, &cfg);
        assert!(fa.intersection_size(&fb) >= 1);
    }

    #[test]
    fn disjoint_documents_share_nothing() {
        let cfg = WinnowConfig::default();
        let a = Fingerprint::of_text("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", &cfg);
        let b = Fingerprint::of_text("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", &cfg);
        assert_eq!(a.intersection_size(&b), 0);
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn containment_is_asymmetric() {
        let cfg = WinnowConfig::default();
        let small = Fingerprint::of_text(BODY, &cfg);
        let big_text = format!("{BODY}\n{}", "function extra(){ return 'unrelated padding code with plenty of text to fingerprint'; }".repeat(8));
        let big = Fingerprint::of_text(&big_text, &cfg);
        assert!(small.overlap(&big) > big.overlap(&small));
    }

    #[test]
    fn merge_accumulates() {
        let cfg = WinnowConfig::default();
        let mut family = Fingerprint::of_text(BODY, &cfg);
        let before = family.len();
        let other = Fingerprint::of_text(
            "var unrelatedcode = somethingcompletelydifferent(12345);",
            &cfg,
        );
        family.merge(&other);
        assert_eq!(family.len(), before + other.len());
        // The merged reference still fully contains the original sample.
        assert!((Fingerprint::of_text(BODY, &cfg).overlap(&family) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn winnow_select_min_per_window() {
        let hashes = vec![9, 3, 7, 1, 8, 2, 6];
        let sel = winnow_select(&hashes, 3);
        // Windows: [9,3,7]->3, [3,7,1]->1, [7,1,8]->1(dup pos), [1,8,2]->2? no: min is 1 at pos3 — careful
        // pos: 0..6, windows starting 0..=4
        //  w0 [9,3,7] -> 3 (pos1)
        //  w1 [3,7,1] -> 1 (pos3)
        //  w2 [7,1,8] -> 1 (pos3, duplicate, skipped)
        //  w3 [1,8,2] -> 1 (pos3, duplicate, skipped)
        //  w4 [8,2,6] -> 2 (pos5)
        assert_eq!(sel, vec![3, 1, 2]);
    }

    #[test]
    fn winnow_select_short_input_single_window() {
        assert_eq!(winnow_select(&[5, 2, 9], 10), vec![2]);
        assert!(winnow_select(&[], 4).is_empty());
    }

    #[test]
    fn winnow_ties_pick_rightmost() {
        let sel = winnow_select(&[4, 4, 4, 4], 2);
        // Each window picks the right-most 4; positions 1,2,3 -> three selections.
        assert_eq!(sel, vec![4, 4, 4]);
    }

    #[test]
    fn fingerprint_from_iterator() {
        let fp: Fingerprint = vec![1u64, 2, 2, 3].into_iter().collect();
        assert_eq!(fp.len(), 4);
        assert_eq!(fp.distinct(), 3);
    }

    #[test]
    fn display_is_informative() {
        let cfg = WinnowConfig::default();
        let fp = Fingerprint::of_text(BODY, &cfg);
        let s = fp.to_string();
        assert!(s.contains("marks"));
        assert!(s.contains("distinct"));
    }

    #[test]
    fn normalize_drops_whitespace_and_lowercases() {
        assert_eq!(normalize("A b\tC\n"), b"abc".to_vec());
    }
}
