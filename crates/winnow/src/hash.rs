//! Rolling k-gram hashing.
//!
//! Winnowing needs a hash of every k-gram of the (normalized) document. A
//! polynomial rolling hash (Karp–Rabin style) computes all of them in a
//! single pass; the hash is then finalized with a 64-bit mixer so that the
//! "minimum hash in window" selection is not biased by the last character.

/// Base of the polynomial rolling hash. A largish odd constant; the exact
/// value only needs to spread bytes well before the final mix.
const BASE: u64 = 1_000_003;

/// Finalizer: splitmix64, a cheap full-avalanche 64-bit mixer.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes of every `k`-gram of `bytes`, computed with a rolling hash and
/// finalized with [`mix64`].
///
/// Returns an empty vector when `bytes.len() < k`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn rolling_hashes(bytes: &[u8], k: usize) -> Vec<u64> {
    assert!(k > 0, "k-gram size must be positive");
    if bytes.len() < k {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(bytes.len() - k + 1);

    // base^(k-1), used to remove the outgoing byte.
    let mut top = 1u64;
    for _ in 0..k - 1 {
        top = top.wrapping_mul(BASE);
    }

    let mut h = 0u64;
    for &b in &bytes[..k] {
        h = h.wrapping_mul(BASE).wrapping_add(u64::from(b) + 1);
    }
    out.push(mix64(h));

    for i in k..bytes.len() {
        let outgoing = u64::from(bytes[i - k]) + 1;
        h = h.wrapping_sub(outgoing.wrapping_mul(top));
        h = h.wrapping_mul(BASE).wrapping_add(u64::from(bytes[i]) + 1);
        out.push(mix64(h));
    }
    out
}

/// Hashes of every `k`-gram, computed naively (no rolling). Used by tests to
/// cross-check [`rolling_hashes`] and exposed for callers that hash short
/// strings where the rolling setup cost dominates.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn kgram_hashes(bytes: &[u8], k: usize) -> Vec<u64> {
    assert!(k > 0, "k-gram size must be positive");
    if bytes.len() < k {
        return Vec::new();
    }
    bytes
        .windows(k)
        .map(|w| {
            let mut h = 0u64;
            for &b in w {
                h = h.wrapping_mul(BASE).wrapping_add(u64::from(b) + 1);
            }
            mix64(h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_naive() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for k in [1, 2, 3, 5, 8, 13] {
            assert_eq!(rolling_hashes(data, k), kgram_hashes(data, k), "k={k}");
        }
    }

    #[test]
    fn short_input_yields_empty() {
        assert!(rolling_hashes(b"ab", 3).is_empty());
        assert!(kgram_hashes(b"", 1).is_empty());
    }

    #[test]
    fn count_is_len_minus_k_plus_one() {
        let data = b"abcdefghij";
        assert_eq!(rolling_hashes(data, 4).len(), 7);
    }

    #[test]
    #[should_panic(expected = "k-gram size must be positive")]
    fn zero_k_panics() {
        let _ = rolling_hashes(b"abc", 0);
    }

    #[test]
    fn equal_kgrams_hash_equal_and_position_independent() {
        let hashes = rolling_hashes(b"abcXabc", 3);
        // "abc" at position 0 and position 4 must hash identically.
        assert_eq!(hashes[0], hashes[4]);
    }

    #[test]
    fn different_kgrams_usually_differ() {
        let hashes = rolling_hashes(b"abcdefgh", 3);
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn mixer_is_not_identity() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
    }
}
