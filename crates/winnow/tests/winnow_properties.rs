//! Property-based tests for winnowing fingerprints.

use kizzle_winnow::{kgram_hashes, rolling_hashes, Fingerprint, WinnowConfig};
use proptest::prelude::*;

proptest! {
    /// The rolling hash always agrees with the naive k-gram hash.
    #[test]
    fn rolling_equals_naive(data in prop::collection::vec(any::<u8>(), 0..300), k in 1usize..16) {
        prop_assert_eq!(rolling_hashes(&data, k), kgram_hashes(&data, k));
    }

    /// Overlap and Jaccard are always within [0, 1].
    #[test]
    fn similarity_bounded(a in "[ -~]{0,300}", b in "[ -~]{0,300}") {
        let cfg = WinnowConfig::new(5, 4);
        let fa = Fingerprint::of_text(&a, &cfg);
        let fb = Fingerprint::of_text(&b, &cfg);
        let o = fa.overlap(&fb);
        let j = fa.jaccard(&fb);
        prop_assert!((0.0..=1.0).contains(&o));
        prop_assert!((0.0..=1.0).contains(&j));
    }

    /// Jaccard similarity is symmetric; overlap of a document with itself is 1
    /// whenever the document is long enough to have fingerprints.
    #[test]
    fn jaccard_symmetric_and_self_overlap(a in "[ -~]{0,300}", b in "[ -~]{0,300}") {
        let cfg = WinnowConfig::new(5, 4);
        let fa = Fingerprint::of_text(&a, &cfg);
        let fb = Fingerprint::of_text(&b, &cfg);
        prop_assert!((fa.jaccard(&fb) - fb.jaccard(&fa)).abs() < 1e-12);
        if !fa.is_empty() {
            prop_assert!((fa.overlap(&fa) - 1.0).abs() < 1e-12);
        }
    }

    /// Winnowing guarantee: documents sharing a substring of at least
    /// `window + k - 1` non-whitespace characters share at least one
    /// fingerprint.
    #[test]
    fn shared_substring_guarantee(
        shared in "[a-z0-9]{30,60}",
        prefix_a in "[A-Z]{0,20}",
        prefix_b in "[0-9]{0,20}",
    ) {
        let cfg = WinnowConfig::new(8, 4); // guarantee threshold 11 << 30
        let a = format!("{prefix_a}{shared}");
        let b = format!("{prefix_b}{shared}");
        let fa = Fingerprint::of_text(&a, &cfg);
        let fb = Fingerprint::of_text(&b, &cfg);
        prop_assert!(fa.intersection_size(&fb) >= 1);
    }

    /// Merging fingerprints adds their sizes and never decreases overlap of a
    /// constituent with the merged reference.
    #[test]
    fn merge_monotone(a in "[ -~]{20,200}", b in "[ -~]{20,200}") {
        let cfg = WinnowConfig::new(5, 4);
        let fa = Fingerprint::of_text(&a, &cfg);
        let fb = Fingerprint::of_text(&b, &cfg);
        let mut merged = fa.clone();
        merged.merge(&fb);
        prop_assert_eq!(merged.len(), fa.len() + fb.len());
        prop_assert!(fa.overlap(&merged) >= fa.overlap(&fb) - 1e-12);
        if !fa.is_empty() {
            prop_assert!((fa.overlap(&merged) - 1.0).abs() < 1e-12);
        }
    }
}
