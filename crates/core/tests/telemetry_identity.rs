//! Telemetry must be a pure observer (ISSUE 8 acceptance): running the
//! fully-instrumented pipeline with the `kizzle-telemetry` gate **on**
//! produces byte-identical results to running it **off** — reports,
//! signatures, and warm engine state. The instrumented run here is the
//! hardest shape the service supports: multiple producer threads feeding
//! the bounded-channel frontend while the previous day's seal runs
//! overlapped in the background, so every span/counter site in
//! service.rs, pipeline.rs, engine.rs, distributed.rs and matcher.rs is
//! exercised while the comparison runs.
//!
//! This file is its own test binary on purpose: the telemetry gate is a
//! process-global, and integration tests compile separately, so flipping
//! it here cannot race with the rest of the suite. The single proptest
//! below is the only test in the binary (proptest cases run
//! sequentially), which keeps the on/off toggling data-race-free.

use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, KitFamily, Sample, SimDate, StreamConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fast_service() -> KizzleService {
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    KizzleService::new(config, reference).expect("fast config is valid")
}

fn day_samples(date: SimDate, samples_per_day: usize, seed: u64) -> Vec<Sample> {
    let config = StreamConfig {
        samples_per_day,
        malicious_fraction: 0.5,
        family_weights: vec![
            (KitFamily::Angler, 0.4),
            (KitFamily::Nuclear, 0.3),
            (KitFamily::SweetOrange, 0.3),
        ],
        seed,
    };
    GraywareStream::new(config).generate_day(date)
}

/// Everything in a report that must be byte-identical between the two
/// runs — only the wall-clock/work-counter stats are stripped (they are
/// views over real timings and legitimately differ run to run).
fn normalized(mut report: DayReport) -> DayReport {
    report.clustering_stats = Default::default();
    report.pipeline = Default::default();
    report
}

/// One multi-producer pipelined run with overlapped background seals,
/// returning the per-day normalized reports. Identical driving logic for
/// both the telemetry-off and telemetry-on arms — only the global gate
/// differs between them.
fn pipelined_run(
    service: &mut KizzleService,
    day_sizes: &[usize],
    batch_size: usize,
    producers: usize,
    channel_bound: usize,
    seed: u64,
) -> Vec<DayReport> {
    let mut date = SimDate::new(2014, 8, 5);
    let mut pending: Option<SealHandle> = None;
    let mut reports = Vec::new();
    for (d, &size) in day_sizes.iter().enumerate() {
        let day = day_samples(date, size, seed.wrapping_add(d as u64));
        let mut session = service.begin_day(date).expect("day opens");
        let producer = session.pipeline(channel_bound);
        let chunks: Vec<Arc<[Sample]>> = day.chunks(batch_size).map(Arc::from).collect();
        let turn = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for worker in 0..producers {
                let producer = producer.clone();
                let turn = Arc::clone(&turn);
                let chunks = &chunks;
                scope.spawn(move || {
                    for (i, chunk) in chunks.iter().enumerate() {
                        if i % producers != worker {
                            continue;
                        }
                        while turn.load(Ordering::Acquire) != i {
                            std::thread::yield_now();
                        }
                        assert!(producer.send_shared(Arc::clone(chunk)));
                        turn.store(i + 1, Ordering::Release);
                    }
                });
            }
        });
        drop(producer);
        if let Some(handle) = pending.take() {
            reports.push(normalized(handle.wait()));
        }
        pending = Some(session.seal_background());
        date = date.next();
    }
    reports.push(normalized(pending.take().expect("last handle").wait()));
    reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Telemetry-off and telemetry-on runs of the same day sequence are
    /// byte-identical, and the enabled run actually recorded: the day
    /// lifecycle counters advanced and the span buffer drained the seal
    /// phases — proof the comparison exercised the instrumented paths
    /// rather than a no-op build.
    #[test]
    fn telemetry_never_perturbs_byte_identity(
        day_sizes in prop::collection::vec(8usize..48, 2..4),
        batch_size in 1usize..16,
        producers in 2usize..4,
        channel_bound in 1usize..4,
        seed in 0u64..1000,
    ) {
        // Arm 1: gate off (the default production posture).
        kizzle_telemetry::set_enabled(false);
        let mut plain = fast_service();
        let want = pipelined_run(
            &mut plain, &day_sizes, batch_size, producers, channel_bound, seed,
        );

        // Arm 2: gate on, same inputs. Drain leftovers first so the span
        // assertions below see only this run's records.
        kizzle_telemetry::set_enabled(true);
        let _ = kizzle_telemetry::drain();
        let sealed_before = kizzle_telemetry::counter("kizzle_days_sealed_total").value();
        let mut traced = fast_service();
        let got = pipelined_run(
            &mut traced, &day_sizes, batch_size, producers, channel_bound, seed,
        );
        let sealed_after = kizzle_telemetry::counter("kizzle_days_sealed_total").value();
        let records = kizzle_telemetry::drain();
        kizzle_telemetry::set_enabled(false);

        prop_assert_eq!(want, got);
        prop_assert_eq!(&*plain.signatures(), &*traced.signatures());
        prop_assert_eq!(plain.engine().len(), traced.engine().len());
        prop_assert_eq!(
            plain.engine().index().cached_count(),
            traced.engine().index().cached_count()
        );
        let (window_plain, _) = plain.cluster_window();
        let (window_traced, _) = traced.cluster_window();
        prop_assert_eq!(window_plain, window_traced);

        // The instrumented arm really recorded.
        prop_assert_eq!(sealed_after - sealed_before, day_sizes.len() as u64);
        let seal_spans = records.iter().filter(|r| r.name() == "day.seal").count();
        prop_assert_eq!(seal_spans, day_sizes.len());
        prop_assert!(records.iter().any(|r| r.name() == "day.cluster"));
        prop_assert!(records.iter().any(|r| r.name() == "day.publish"));
    }
}
