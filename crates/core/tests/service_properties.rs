//! The two contracts of the service façade (ISSUE 5 acceptance):
//!
//! 1. **Streaming == single-shot.** A [`DaySession`] fed the day in
//!    arbitrary mini-batches seals to a [`DayReport`] byte-identical
//!    (modulo wall-clock/work-counter stats) to the monolithic
//!    [`KizzleCompiler::process_day`] over the same sample sequence, with
//!    identical resulting signatures, reference corpus evolution and warm
//!    engine state — across multiple consecutive days.
//! 2. **Publication is atomic.** [`Matcher`] clones scanning from other
//!    threads while a seal is in flight observe either the previous
//!    published set or the new one — a complete, self-consistent set
//!    either way, never a torn mixture — and all of them observe the new
//!    set once the publish lands.

use kizzle::prelude::*;
use kizzle_corpus::{GraywareStream, KitFamily, Sample, SimDate, StreamConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn fast_service() -> KizzleService {
    let config = KizzleConfig::fast();
    let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
    KizzleService::new(config, reference).expect("fast config is valid")
}

fn day_samples(date: SimDate, samples_per_day: usize, seed: u64) -> Vec<Sample> {
    let config = StreamConfig {
        samples_per_day,
        malicious_fraction: 0.5,
        family_weights: vec![
            (KitFamily::Angler, 0.4),
            (KitFamily::Nuclear, 0.3),
            (KitFamily::SweetOrange, 0.3),
        ],
        seed,
    };
    GraywareStream::new(config).generate_day(date)
}

/// Everything in a report that must be byte-identical between the two
/// ingest shapes — only the wall-clock/work-counter stats are stripped.
fn normalized(mut report: DayReport) -> DayReport {
    report.clustering_stats = Default::default();
    report.pipeline = Default::default();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mini-batched sessions over several consecutive days — with the
    /// batch split re-drawn per day — match the single-shot compiler
    /// byte-for-byte: reports, signatures, and warm engine state.
    #[test]
    fn mini_batch_ingest_equals_single_shot(
        day_sizes in prop::collection::vec(8usize..56, 1..4),
        batch_size in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut single = fast_service();
        let mut batched = fast_service();
        let mut date = SimDate::new(2014, 8, 5);
        for (d, &size) in day_sizes.iter().enumerate() {
            let day = day_samples(date, size, seed.wrapping_add(d as u64));

            let want = single.process_day(date, &day).expect("single-shot day");

            let mut session = batched.begin_day(date).expect("day opens");
            for chunk in day.chunks(batch_size) {
                session.ingest(chunk);
            }
            prop_assert_eq!(session.ingested(), day.len());
            let got = session.seal();

            prop_assert_eq!(normalized(want), normalized(got), "day {}", d);
            prop_assert_eq!(&*single.signatures(), &*batched.signatures());
            prop_assert_eq!(single.engine().len(), batched.engine().len());
            prop_assert_eq!(
                single.engine().index().cached_count(),
                batched.engine().index().cached_count()
            );
            date = date.next();
        }
        // The façade's single-shot convenience is the same code path as the
        // compiler's process_day: windows cluster identically afterwards.
        let (window_single, _) = single.cluster_window();
        let (window_batched, _) = batched.cluster_window();
        prop_assert_eq!(window_single, window_batched);
    }

    /// The pipelined frontend with **multiple producer threads** plus an
    /// **overlapped background seal** is still byte-identical to the
    /// single-shot compiler. Producers hand off mini-batches through the
    /// bounded channel in a rendezvous order (the day's sample sequence is
    /// defined by channel FIFO order, so the test serializes *sends* while
    /// still exercising cross-thread submission and backpressure), and
    /// each day's seal runs concurrently with the next day's ingest.
    #[test]
    fn pipelined_multi_producer_with_overlapped_seal_equals_single_shot(
        day_sizes in prop::collection::vec(8usize..48, 2..4),
        batch_size in 1usize..16,
        producers in 2usize..4,
        channel_bound in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut single = fast_service();
        let mut piped = fast_service();
        let mut date = SimDate::new(2014, 8, 5);
        let mut pending: Option<SealHandle> = None;
        let mut want_reports = Vec::new();
        let mut got_reports = Vec::new();

        for (d, &size) in day_sizes.iter().enumerate() {
            let day = day_samples(date, size, seed.wrapping_add(d as u64));
            want_reports.push(normalized(
                single.process_day(date, &day).expect("single-shot day"),
            ));

            // begin_day + pipelined ingest run while the *previous* day's
            // background seal is (potentially) still in flight.
            let mut session = piped.begin_day(date).expect("day opens");
            let producer = session.pipeline(channel_bound);
            let chunks: Vec<Arc<[Sample]>> =
                day.chunks(batch_size).map(Arc::from).collect();
            let turn = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            std::thread::scope(|scope| {
                for worker in 0..producers {
                    let producer = producer.clone();
                    let turn = Arc::clone(&turn);
                    let chunks = &chunks;
                    scope.spawn(move || {
                        for (i, chunk) in chunks.iter().enumerate() {
                            if i % producers != worker {
                                continue;
                            }
                            while turn.load(Ordering::Acquire) != i {
                                std::thread::yield_now();
                            }
                            assert!(producer.send_shared(Arc::clone(chunk)));
                            turn.store(i + 1, Ordering::Release);
                        }
                    });
                }
            });
            drop(producer);
            // Only now collect the previous day's overlapped report.
            if let Some(handle) = pending.take() {
                got_reports.push(normalized(handle.wait()));
            }
            pending = Some(session.seal_background());
            let _ = d;
            date = date.next();
        }
        got_reports.push(normalized(pending.take().expect("last handle").wait()));

        prop_assert_eq!(want_reports, got_reports);
        prop_assert_eq!(&*single.signatures(), &*piped.signatures());
        prop_assert_eq!(single.engine().len(), piped.engine().len());
        prop_assert_eq!(
            single.engine().index().cached_count(),
            piped.engine().index().cached_count()
        );
        let (window_single, _) = single.cluster_window();
        let (window_piped, _) = piped.cluster_window();
        prop_assert_eq!(window_single, window_piped);
    }
}

/// Scanner threads hammer matcher clones while the main thread seals a
/// day. Every observed signature set must be one of the published epochs
/// — empty (epoch 0) or the full post-seal set — never a partially
/// visible mixture; after the seal, every handle converges to the new
/// epoch.
#[test]
fn matcher_clones_never_observe_a_torn_set_during_seal() {
    let mut service = fast_service();
    let date = SimDate::new(2014, 8, 5);
    let day = day_samples(date, 48, 4);

    // The documents the scanners probe with: one that the sealed set will
    // detect (a malicious sample of the day) and one benign-ish probe.
    let malicious = day
        .iter()
        .find(|s| s.truth.is_malicious())
        .expect("malicious sample in a 50% day")
        .html
        .clone();

    let matcher = service.matcher();
    let stop = Arc::new(AtomicBool::new(false));
    let seal_done = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let matcher = matcher.clone();
            let stop = Arc::clone(&stop);
            let seal_done = Arc::clone(&seal_done);
            let probe = malicious.clone();
            std::thread::spawn(move || {
                let mut saw_after_publish = false;
                while !stop.load(Ordering::Relaxed) {
                    // A snapshot must be internally consistent: its length
                    // is stable across the two reads below because the Arc
                    // pins one immutable set.
                    let set = matcher.signatures();
                    let len_a = set.len();
                    let hit = set.scan_document(&probe).is_some();
                    let len_b = set.len();
                    assert_eq!(len_a, len_b, "set mutated under a reader");
                    // Before any publish the set is empty and cannot hit;
                    // a hit implies the full sealed set (epoch >= 1).
                    if hit {
                        assert!(len_a > 0);
                        assert!(matcher.epoch() >= 1);
                    }
                    if seal_done.load(Ordering::Acquire) && matcher.epoch() >= 1 {
                        saw_after_publish = true;
                    }
                }
                // One final look after the loop: on an oversubscribed box a
                // thread can be descheduled for the whole seal→stop window
                // and still converge here — the property is "eventually
                // observes the publish", not "within 50ms".
                saw_after_publish || matcher.epoch() >= 1
            })
        })
        .collect();

    // Seal while the scanners run.
    let report = service.process_day(date, &day).expect("day seals");
    assert!(
        !report.new_signatures.is_empty(),
        "day produced no signatures; report: {report}"
    );
    seal_done.store(true, Ordering::Release);
    // Give every scanner a chance to observe the published epoch.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    for handle in handles {
        let converged = handle.join().expect("scanner thread panicked");
        assert!(converged, "a scanner never observed the published set");
    }

    // And the pre-seal handle itself converged to the sealed signatures.
    assert_eq!(matcher.epoch(), 1);
    assert_eq!(matcher.signatures().len(), service.signatures().len());
    let detected = day
        .iter()
        .filter(|s| matcher.scan(&s.html).is_some())
        .count();
    assert!(detected > 0);
}

/// Two days sealed back to back: every publication bumps the epoch and
/// handles observe the *cumulative* set (signatures only accumulate).
#[test]
fn consecutive_seals_publish_monotonically() {
    let mut service = fast_service();
    let matcher = service.matcher();
    let d1 = SimDate::new(2014, 8, 5);
    let d2 = SimDate::new(2014, 8, 20);
    service
        .process_day(d1, &day_samples(d1, 48, 6))
        .expect("day 1");
    let after_day1 = matcher.signatures().len();
    assert_eq!(matcher.epoch(), 1);
    service
        .process_day(d2, &day_samples(d2, 48, 7))
        .expect("day 2");
    assert_eq!(matcher.epoch(), 2);
    assert!(matcher.signatures().len() >= after_day1);
}

/// Scanner threads hammer matcher clones while a **background** seal is
/// in flight and the next day is already ingesting — the overlapped
/// variant of the torn-set property. Every observed set must be a
/// complete published epoch; the background publish is the same atomic
/// swap as the synchronous one.
#[test]
fn matcher_clones_never_observe_a_torn_set_during_overlapped_seal() {
    let mut service = fast_service();
    let d1 = SimDate::new(2014, 8, 5);
    let d2 = SimDate::new(2014, 8, 6);
    let day1 = day_samples(d1, 48, 14);
    let day2 = day_samples(d2, 32, 15);
    let malicious = day1
        .iter()
        .find(|s| s.truth.is_malicious())
        .expect("malicious sample in a 50% day")
        .html
        .clone();

    let matcher = service.matcher();
    let stop = Arc::new(AtomicBool::new(false));
    let scanners: Vec<_> = (0..3)
        .map(|_| {
            let matcher = matcher.clone();
            let stop = Arc::clone(&stop);
            let probe = malicious.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let set = matcher.signatures();
                    let len_a = set.len();
                    let hit = set.scan_document(&probe).is_some();
                    assert_eq!(len_a, set.len(), "set mutated under a reader");
                    if hit {
                        assert!(len_a > 0);
                        assert!(matcher.epoch() >= 1);
                    }
                }
            })
        })
        .collect();

    let mut session = service.begin_day(d1).expect("day 1 opens");
    session.ingest(&day1);
    let handle = session.seal_background();
    // Overlap: day 2 ingests while day 1 seals and the scanners scan.
    let mut next = service.begin_day(d2).expect("day 2 opens");
    for chunk in day2.chunks(8) {
        next.ingest(chunk);
    }
    let report1 = handle.wait();
    assert!(
        !report1.new_signatures.is_empty(),
        "day 1 produced no signatures; report: {report1}"
    );
    let report2 = next.seal();
    stop.store(true, Ordering::Relaxed);
    for scanner in scanners {
        scanner.join().expect("scanner thread panicked");
    }

    // Both publishes landed in order; the handle converged.
    assert_eq!(matcher.epoch(), 2);
    let _ = report2;
    let detected = day1
        .iter()
        .filter(|s| matcher.scan(&s.html).is_some())
        .count();
    assert!(detected > 0);
}
