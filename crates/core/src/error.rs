//! The unified error type of the public Kizzle API.
//!
//! Before the service façade existed, failures leaked out of the crate in
//! whatever shape the layer that hit them happened to use: `save_state`
//! returned [`std::io::Error`], `load_state` returned
//! [`kizzle_snapshot::SnapshotError`], configuration problems panicked out
//! of `KizzleConfig::validated`, and a config-fingerprint mismatch was one
//! `SnapshotError` variant among many. [`KizzleError`] is the one type a
//! caller matches on instead — every public fallible operation on
//! [`KizzleService`](crate::KizzleService) and
//! [`KizzleCompiler`](crate::KizzleCompiler) returns it.

use kizzle_snapshot::SnapshotError;
use std::fmt;

/// Any error the public Kizzle API can return.
#[derive(Debug)]
pub enum KizzleError {
    /// A configuration violates a cross-module invariant (the message says
    /// which one). Produced by
    /// [`KizzleConfig::validate`](crate::KizzleConfig::validate) and the
    /// [builder](crate::config::KizzleConfigBuilder)'s `build`.
    Config(String),
    /// Persisted state could not be read or written: container damage,
    /// version skew, a broken chain, or the underlying I/O failure. The
    /// inner [`SnapshotError`] carries the detail.
    Snapshot(SnapshotError),
    /// A snapshot was intact but was written under a configuration whose
    /// fingerprint disagrees with the loading one. Clustering parameters
    /// shape every piece of persisted state, so mixing them would silently
    /// corrupt results; the load is refused instead.
    ConfigFingerprint {
        /// Fingerprint recorded in the snapshot.
        found: u64,
        /// Fingerprint of the configuration trying to load it.
        expected: u64,
    },
    /// A day session was used out of order —
    /// [`KizzleService::begin_day`](crate::KizzleService::begin_day) (or a
    /// single-shot `process_day`) for a date earlier than the last opened
    /// day. (Mismatched parallel sample/stream slices are a programming
    /// error and panic instead.)
    Ingest(String),
    /// An operating-system I/O failure outside the snapshot container
    /// (creating the state directory, writing the manifest sidecar).
    Io(std::io::Error),
}

impl fmt::Display for KizzleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KizzleError::Config(what) => write!(f, "invalid configuration: {what}"),
            KizzleError::Snapshot(err) => write!(f, "snapshot: {err}"),
            KizzleError::ConfigFingerprint { found, expected } => write!(
                f,
                "snapshot written under a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            KizzleError::Ingest(what) => write!(f, "ingest: {what}"),
            KizzleError::Io(err) => write!(f, "io: {err}"),
        }
    }
}

impl std::error::Error for KizzleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KizzleError::Snapshot(err) => Some(err),
            KizzleError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for KizzleError {
    /// Snapshot errors keep their shape, except the fingerprint mismatch,
    /// which is prominent enough in operation (every config change trips
    /// it) to deserve its own variant.
    fn from(err: SnapshotError) -> Self {
        match err {
            SnapshotError::ConfigMismatch { found, expected } => {
                KizzleError::ConfigFingerprint { found, expected }
            }
            other => KizzleError::Snapshot(other),
        }
    }
}

impl From<std::io::Error> for KizzleError {
    fn from(err: std::io::Error) -> Self {
        KizzleError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_mismatch_gets_its_own_variant() {
        let err: KizzleError = SnapshotError::ConfigMismatch {
            found: 1,
            expected: 2,
        }
        .into();
        assert!(matches!(
            err,
            KizzleError::ConfigFingerprint {
                found: 1,
                expected: 2
            }
        ));
        let text = err.to_string();
        assert!(text.contains("fingerprint"), "display: {text}");
    }

    #[test]
    fn other_snapshot_errors_stay_snapshot() {
        let err: KizzleError = SnapshotError::Corrupt("bad section".into()).into();
        assert!(matches!(err, KizzleError::Snapshot(_)));
        assert!(err.to_string().contains("bad section"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn io_errors_wrap() {
        let err: KizzleError = std::io::Error::other("disk fell off").into();
        assert!(matches!(err, KizzleError::Io(_)));
        assert!(err.to_string().contains("disk fell off"));
    }
}
