//! The daily processing pipeline: cluster → label → sign → deploy.

use crate::config::KizzleConfig;
use crate::reference::ReferenceCorpus;
use kizzle_cluster::{Clustering, CorpusEngine, DistributedStats, SampleId};
use kizzle_corpus::{KitFamily, Sample, SimDate};
use kizzle_js::TokenStream;
use kizzle_signature::{generate_signature, SignatureSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the pipeline decided about one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterVerdict {
    /// Number of samples in the cluster.
    pub size: usize,
    /// The family the cluster was labeled with, if any.
    pub family: Option<KitFamily>,
    /// The winnow overlap of the unpacked prototype with the best-matching
    /// reference (0 when no reference matched).
    pub overlap: f64,
    /// Name of the signature generated for the cluster, if one was.
    pub signature_name: Option<String>,
}

/// Counters from the session ingest frontend, surfaced per day in the
/// [`DayReport`] so pipeline overlap and backpressure are measurable.
///
/// The single-shot paths ([`KizzleCompiler::process_day`] and friends)
/// report all zeros; a [`DaySession`](crate::DaySession) counts every
/// mini-batch, and the bounded-channel frontend additionally records how
/// often producers stalled on a full channel and how deep the queue got.
/// Like `clustering_stats`, these are observability fields: they are not
/// part of the [`fmt::Display`] rendering, and equivalence tests normalize
/// them away.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Mini-batches submitted for ingest (direct calls and channel sends).
    pub submitted_batches: u64,
    /// Mini-batches actually tokenized/deduped/store-inserted. Less than
    /// `submitted_batches` only when an aborted session discarded work.
    pub applied_batches: u64,
    /// Producer sends that found the channel full and had to block — the
    /// backpressure count.
    pub producer_stalls: u64,
    /// High-water mark of mini-batches queued in the channel at once.
    pub max_queue_depth: u64,
}

impl PipelineStats {
    /// A hint for the next run's channel bound, derived from this run's
    /// backpressure — the first step of the ROADMAP adaptive-channel-bound
    /// follow-up. `None` when no producer ever stalled: the bound was not
    /// the bottleneck, so there is nothing to suggest. Otherwise the
    /// smallest power of two above twice the observed high-water mark —
    /// producers filled the channel to its bound (that is what a stall
    /// means), so the mark *is* the current bound and doubling it gives the
    /// frontend room to absorb the burst that caused the stall.
    #[must_use]
    pub fn suggested_bound(&self) -> Option<u64> {
        if self.producer_stalls == 0 {
            return None;
        }
        Some(
            self.max_queue_depth
                .saturating_mul(2)
                .next_power_of_two()
                .max(2),
        )
    }

    /// Fold these per-day counters into the global telemetry registry
    /// (`kizzle_ingest_producer_stalls_total`,
    /// `kizzle_pipeline_max_queue_depth` as a run-level high-water mark).
    /// No-op while telemetry is disabled.
    pub fn record_to_registry(&self) {
        if !kizzle_telemetry::enabled() {
            return;
        }
        kizzle_telemetry::gauge("kizzle_pipeline_max_queue_depth").set_max(self.max_queue_depth);
        if self.producer_stalls > 0 {
            kizzle_telemetry::counter("kizzle_ingest_producer_stalls_total")
                .add(self.producer_stalls);
        }
    }
}

/// The result of processing one day of grayware.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The processed day.
    pub date: SimDate,
    /// Number of samples processed.
    pub samples: usize,
    /// Number of clusters found (paper §IV reports 280–1,200 per day at
    /// full scale).
    pub clusters: usize,
    /// Number of samples left as noise.
    pub noise: usize,
    /// Per-cluster verdicts, for clusters at or above the minimum size.
    pub verdicts: Vec<ClusterVerdict>,
    /// Names of the signatures added today.
    pub new_signatures: Vec<String>,
    /// Timing of the distributed clustering phases.
    pub clustering_stats: DistributedStats,
    /// Ingest-frontend counters (all zero on the single-shot paths).
    pub pipeline: PipelineStats,
}

impl DayReport {
    /// Number of clusters labeled as malicious today.
    #[must_use]
    pub fn malicious_clusters(&self) -> usize {
        self.verdicts.iter().filter(|v| v.family.is_some()).count()
    }
}

impl fmt::Display for DayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} samples, {} clusters ({} malicious), {} new signatures",
            self.date,
            self.samples,
            self.clusters,
            self.malicious_clusters(),
            self.new_signatures.len()
        )
    }
}

/// The Kizzle signature compiler.
///
/// Holds the labeled reference corpus it was seeded with, the cumulative
/// set of signatures it has emitted so far, and the warm incremental
/// corpus engine threaded through consecutive
/// [`KizzleCompiler::process_day`] calls: each day's class-strings are
/// tokenized once into the engine's store (content dedup turns the overlap
/// with recent days into index cache hits), samples older than the
/// configured retention window are retired, and the day is clustered as a
/// view over the live corpus — byte-identical to a cold per-day run.
#[derive(Debug, Clone)]
pub struct KizzleCompiler {
    pub(crate) config: KizzleConfig,
    pub(crate) reference: ReferenceCorpus,
    /// The cumulative signature set, shared by `Arc` with every epoch the
    /// service has published: the once-daily append copies the members
    /// exactly when a published epoch still holds the previous set
    /// (`Arc::make_mut` copy-on-write), so publishing stopped deep-cloning
    /// the whole set per day.
    pub(crate) signatures: Arc<SignatureSet>,
    pub(crate) signature_counters: HashMap<KitFamily, usize>,
    pub(crate) engine: CorpusEngine,
    /// The most recent day threaded through [`KizzleCompiler::process_day`]
    /// — the day counter persisted by
    /// [`KizzleCompiler::save_state`](crate::snapshot).
    pub(crate) last_day: Option<SimDate>,
    /// Each retained day's sample-id view (stamp, ids as deposited —
    /// duplicates included), pruned with the retention window. This is
    /// what makes [`KizzleCompiler::cluster_window`] weight repeated
    /// content the way the per-day clustering does, instead of clustering
    /// the deduplicated store.
    pub(crate) day_views: Vec<(u64, Vec<SampleId>)>,
}

impl KizzleCompiler {
    /// Create a compiler from a configuration and a seeded reference corpus.
    #[must_use]
    pub fn new(config: KizzleConfig, reference: ReferenceCorpus) -> Self {
        let config = config.validated();
        KizzleCompiler {
            engine: CorpusEngine::new(config.clustering),
            config,
            reference,
            signatures: Arc::new(SignatureSet::new()),
            signature_counters: HashMap::new(),
            last_day: None,
            day_views: Vec::new(),
        }
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &KizzleConfig {
        &self.config
    }

    /// The warm corpus engine (live store size, index state) — exposed for
    /// observability and tests.
    #[must_use]
    pub fn engine(&self) -> &CorpusEngine {
        &self.engine
    }

    /// The reference corpus (grows as labeled clusters are absorbed).
    #[must_use]
    pub fn reference(&self) -> &ReferenceCorpus {
        &self.reference
    }

    /// The signatures deployed so far.
    #[must_use]
    pub fn signatures(&self) -> &SignatureSet {
        &self.signatures
    }

    /// The signature set as the shared handle the service publishes —
    /// cloning it is a reference-count bump, not a copy of the set.
    #[must_use]
    pub fn signatures_shared(&self) -> Arc<SignatureSet> {
        Arc::clone(&self.signatures)
    }

    /// The most recent day processed, if any — survives snapshot save/load.
    #[must_use]
    pub fn last_processed_day(&self) -> Option<SimDate> {
        self.last_day
    }

    /// Cluster the *entire retention window* — every retained day's batch
    /// concatenated in day order, duplicates included, so repeated content
    /// carries the same weight it had per day — through the same
    /// partition/reduce dataflow as [`KizzleCompiler::process_day`]. The
    /// multi-day eval mode from the ROADMAP: comparing its cluster count
    /// with the per-day counts shows how much the day boundary fragments
    /// slow-moving families.
    ///
    /// Read-mostly: memoized neighborhoods computed here stay cached (they
    /// are exact for any view), so labels of later days are unaffected.
    pub fn cluster_window(&mut self) -> (Clustering, DistributedStats) {
        let ids: Vec<SampleId> = self
            .day_views
            .iter()
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        self.engine.cluster_day(&ids)
    }

    /// Tokenize a document and truncate it to the configured prefix length.
    #[must_use]
    pub fn tokenize_capped(&self, document: &str) -> TokenStream {
        kizzle_js::tokenize_document_capped(document, self.config.token_cap)
    }

    /// Process one day of samples: cluster, label, and generate signatures.
    /// The generated signatures are added to the active set immediately
    /// (Kizzle's same-day response).
    ///
    /// A thin wrapper over the crate-internal session phases (open →
    /// ingest → seal) that [`DaySession`](crate::DaySession) drives
    /// incrementally — here one ingest covers the whole day. The
    /// mini-batched session produces a byte-identical report
    /// (property-tested in `tests/service_properties.rs`).
    pub fn process_day(&mut self, date: SimDate, samples: &[Sample]) -> DayReport {
        let streams: Vec<TokenStream> = {
            let _ingest_span = kizzle_telemetry::span!("day.ingest");
            samples
                .iter()
                .map(|s| self.tokenize_capped(&s.html))
                .collect()
        };
        self.process_day_tokenized(date, samples, &streams)
    }

    /// Like [`KizzleCompiler::process_day`] but reusing already tokenized
    /// streams (the evaluation harness tokenizes once and shares the streams
    /// between Kizzle and its metrics).
    pub fn process_day_tokenized(
        &mut self,
        date: SimDate,
        samples: &[Sample],
        streams: &[TokenStream],
    ) -> DayReport {
        assert_eq!(
            samples.len(),
            streams.len(),
            "samples and streams must be parallel"
        );
        let stamp = self.open_day(date);
        let day_ids = self.ingest_streams(stamp, streams);
        self.seal_day(date, stamp, &samples, streams, day_ids)
    }

    /// Session phase 1 — open a day: advance the day counter, retire
    /// samples (and day views) that aged out of the retention window, and
    /// return the day's stamp. Front half of the old monolithic
    /// `process_day`, split out so ingest can start before the day's data
    /// has fully arrived.
    pub(crate) fn open_day(&mut self, date: SimDate) -> u64 {
        let stamp = u64::try_from(date.absolute_day()).unwrap_or(0);
        self.last_day = Some(date);
        let cutoff = stamp.saturating_sub(self.config.retention_days as u64 - 1);
        self.engine.retire_older_than(cutoff);
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::gauge("kizzle_corpus_live_samples").set(self.engine.len() as u64);
        }
        // Day views age out with the same cutoff as their samples: a view
        // inside the window only names ids whose stamps are at or above
        // its own, so every id it holds is still live.
        self.day_views
            .retain(|(view_stamp, _)| *view_stamp >= cutoff);
        stamp
    }

    /// Session phase 2 — ingest a mini-batch of tokenized streams: deposit
    /// their class-strings into the warm engine (carry-over content becomes
    /// a cache hit; fresh content is indexed eagerly, so the day's front
    /// half amortizes while later batches are still arriving) and return
    /// the batch's sample ids. Callable any number of times per open day.
    pub(crate) fn ingest_streams(&mut self, stamp: u64, streams: &[TokenStream]) -> Vec<SampleId> {
        let _dedup_span = kizzle_telemetry::span!("day.dedup");
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::counter("kizzle_ingest_batches_total").incr();
            kizzle_telemetry::counter("kizzle_ingest_samples_total").add(streams.len() as u64);
        }
        let class_strings: Vec<Vec<u8>> = streams.iter().map(TokenStream::class_codes).collect();
        let ids = self.engine.add_batch(stamp, &class_strings);
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::gauge("kizzle_corpus_live_samples").set(self.engine.len() as u64);
        }
        ids
    }

    /// Session phase 3 — seal the day: record the day view, cluster the
    /// accumulated ids, label prototypes against the reference corpus, and
    /// generate signatures. `samples`/`streams`/`day_ids` are the
    /// position-parallel concatenation of every ingested batch.
    ///
    /// Re-sealing a day *replaces* its view: a crashed cron job that
    /// re-runs the same date (allowed by the service's monotone check)
    /// must not leave the day counted twice in `cluster_window` or in
    /// persisted snapshots.
    ///
    /// Internally two sub-phases so the service can overlap them with the
    /// next day: [`KizzleCompiler::seal_view`] captures the clustering
    /// inputs under the borrow, the engine-free
    /// [`PreparedDay::finish`](kizzle_cluster::PreparedDay::finish) runs
    /// the expensive clustering anywhere, and
    /// [`KizzleCompiler::label_and_sign`] folds the result back in.
    pub(crate) fn seal_day(
        &mut self,
        date: SimDate,
        stamp: u64,
        samples: &dyn SampleSource,
        streams: &[TokenStream],
        day_ids: Vec<SampleId>,
    ) -> DayReport {
        let seal_span = kizzle_telemetry::span!("day.seal");
        let prepared = self.seal_view(stamp, &day_ids);
        let (clustering, stats) = prepared.finish();
        let report = self.label_and_sign(date, samples, streams, clustering, stats);
        let seal_elapsed = seal_span.finish();
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::histogram("kizzle_day_seal_ns").observe_duration(seal_elapsed);
        }
        report
    }

    /// Seal sub-phase A — record (or replace) the day's retained view and
    /// capture the clustering inputs while the compiler is borrowed. The
    /// returned [`PreparedDay`](kizzle_cluster::PreparedDay) owns
    /// everything the clustering needs, so the borrow can end before the
    /// expensive work starts.
    pub(crate) fn seal_view(
        &mut self,
        stamp: u64,
        day_ids: &[SampleId],
    ) -> kizzle_cluster::PreparedDay {
        self.day_views
            .retain(|(view_stamp, _)| *view_stamp != stamp);
        self.day_views.push((stamp, day_ids.to_vec()));
        self.engine.prepare_day(day_ids)
    }

    /// Seal sub-phase B — label cluster prototypes against the reference
    /// corpus, absorb labeled prototypes, and generate signatures. Touches
    /// reference/signatures/counters but **never** the engine, which is
    /// what lets the next day's ingest mutate the warm store while this
    /// runs.
    pub(crate) fn label_and_sign(
        &mut self,
        date: SimDate,
        samples: &dyn SampleSource,
        streams: &[TokenStream],
        clustering: Clustering,
        stats: DistributedStats,
    ) -> DayReport {
        let tel = kizzle_telemetry::enabled();
        let mut verdicts = Vec::new();
        let mut new_signatures = Vec::new();
        // The winnow (unpack → reference label → absorb) and siggen
        // (signature generation → set append) phases interleave per
        // cluster, so an RAII guard per phase would spray hundreds of
        // sub-ms spans; accumulate each phase across the loop and record
        // two per-day spans after it.
        let mut winnow_time = Duration::ZERO;
        let mut siggen_time = Duration::ZERO;
        for cluster in clustering.significant_clusters(self.config.min_cluster_size) {
            let winnow_started = tel.then(Instant::now);
            let prototype_idx = cluster.prototype.unwrap_or_else(|| cluster.members[0]);
            let (_, unpacked) = kizzle_unpack::unpack_or_passthrough(samples.html(prototype_idx));
            let labeled = self.reference.label(&unpacked);

            let mut verdict = ClusterVerdict {
                size: cluster.len(),
                family: labeled.map(|(f, _)| f),
                overlap: labeled.map_or(0.0, |(_, o)| o),
                signature_name: None,
            };

            if let Some((family, _)) = labeled {
                // Track the kit's evolution so tomorrow's variant still
                // labels correctly.
                self.reference.absorb(family, &unpacked);
                if let Some(started) = winnow_started {
                    winnow_time += started.elapsed();
                }
                let siggen_started = tel.then(Instant::now);

                let member_streams: Vec<TokenStream> = cluster
                    .members
                    .iter()
                    .map(|&i| streams[i].clone())
                    .collect();
                let counter = self.signature_counters.entry(family).or_insert(0);
                let name = format!("{}.sig{}", family.short_code(), *counter + 1);
                match generate_signature(&name, &member_streams, &self.config.signature) {
                    Ok(signature) => {
                        // Copy-on-write: the set only materializes a copy
                        // when a published epoch still shares it.
                        if Arc::make_mut(&mut self.signatures).add(family.name(), signature) {
                            *counter += 1;
                            verdict.signature_name = Some(name.clone());
                            new_signatures.push(name);
                        }
                    }
                    Err(_) => {
                        // Not enough common structure (paper: short common
                        // subsequences are discarded); the cluster stays
                        // labeled but unsigned.
                    }
                }
                if let Some(started) = siggen_started {
                    siggen_time += started.elapsed();
                }
            } else if let Some(started) = winnow_started {
                winnow_time += started.elapsed();
            }
            verdicts.push(verdict);
        }
        if tel {
            kizzle_telemetry::record_span("day.winnow", winnow_time);
            kizzle_telemetry::record_span("day.siggen", siggen_time);
            kizzle_telemetry::counter("kizzle_days_sealed_total").incr();
            kizzle_telemetry::counter("kizzle_signatures_emitted_total")
                .add(new_signatures.len() as u64);
            kizzle_telemetry::gauge("kizzle_signatures_live").set(self.signatures.len() as u64);
        }

        DayReport {
            date,
            samples: samples.count(),
            clusters: clustering.cluster_count(),
            noise: clustering.noise.len(),
            verdicts,
            new_signatures,
            clustering_stats: stats,
            pipeline: PipelineStats::default(),
        }
    }

    /// Scan an already tokenized sample against the deployed signatures.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<KitFamily> {
        self.signatures
            .scan_stream(stream)
            .and_then(|hit| family_from_label(&hit.label))
    }

    /// Scan a raw document against the deployed signatures.
    #[must_use]
    pub fn scan(&self, document: &str) -> Option<KitFamily> {
        self.scan_stream(&self.tokenize_capped(document))
    }
}

/// Map a signature label back to the kit family it names.
#[must_use]
pub fn family_from_label(label: &str) -> Option<KitFamily> {
    KitFamily::ALL.into_iter().find(|f| f.name() == label)
}

/// Read-only, position-addressed view of a day's buffered samples for the
/// seal phases. The single-shot paths borrow a contiguous `&[Sample]`; the
/// session buffers `Arc`-shared chunks (so `ingest_owned`/`ingest_shared`
/// never copy the day a second time) and exposes them through the same
/// trait.
pub(crate) trait SampleSource {
    /// Number of buffered samples (day positions).
    fn count(&self) -> usize;
    /// The raw document at day position `index`.
    fn html(&self, index: usize) -> &str;
}

impl SampleSource for &[Sample] {
    fn count(&self) -> usize {
        self.len()
    }

    fn html(&self, index: usize) -> &str {
        &self[index].html
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{GraywareStream, GroundTruth, KitModel, StreamConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn compiler() -> KizzleCompiler {
        let reference =
            ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::fast());
        KizzleCompiler::new(KizzleConfig::fast(), reference)
    }

    /// A small, malicious-heavy day so clusters form reliably in tests.
    fn test_day(date: SimDate, seed: u64) -> Vec<Sample> {
        let config = StreamConfig {
            samples_per_day: 48,
            malicious_fraction: 0.5,
            family_weights: vec![
                (KitFamily::Angler, 0.4),
                (KitFamily::Nuclear, 0.3),
                (KitFamily::SweetOrange, 0.3),
            ],
            seed,
        };
        GraywareStream::new(config).generate_day(date)
    }

    #[test]
    fn process_day_finds_clusters_and_generates_signatures() {
        let mut compiler = compiler();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);
        let report = compiler.process_day(date, &day);

        assert_eq!(report.samples, day.len());
        assert!(report.clusters > 0);
        assert!(report.malicious_clusters() >= 2, "report: {report}");
        assert!(!report.new_signatures.is_empty());
        assert_eq!(compiler.signatures().len(), report.new_signatures.len());
    }

    #[test]
    fn generated_signatures_detect_same_day_samples() {
        let mut compiler = compiler();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 4);
        compiler.process_day(date, &day);

        let mut detected_malicious = 0usize;
        let mut total_malicious = 0usize;
        let mut false_positives = 0usize;
        for sample in &day {
            let hit = compiler.scan(&sample.html);
            match sample.truth {
                GroundTruth::Malicious(_) => {
                    total_malicious += 1;
                    if hit.is_some() {
                        detected_malicious += 1;
                    }
                }
                GroundTruth::Benign => {
                    if hit.is_some() {
                        false_positives += 1;
                    }
                }
            }
        }
        assert!(total_malicious > 0);
        assert!(
            detected_malicious * 2 > total_malicious,
            "detected {detected_malicious}/{total_malicious}"
        );
        assert!(
            false_positives <= 1,
            "too many false positives: {false_positives}"
        );
    }

    #[test]
    fn detected_family_matches_ground_truth() {
        let mut compiler = compiler();
        let date = SimDate::new(2014, 8, 8);
        let day = test_day(date, 5);
        compiler.process_day(date, &day);
        for sample in &day {
            if let (GroundTruth::Malicious(truth), Some(found)) =
                (sample.truth, compiler.scan(&sample.html))
            {
                assert_eq!(found, truth, "family confusion on {}", sample.id);
            }
        }
    }

    #[test]
    fn signatures_accumulate_across_days() {
        let mut compiler = compiler();
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 20);
        compiler.process_day(d1, &test_day(d1, 6));
        let count_after_day1 = compiler.signatures().len();
        compiler.process_day(d2, &test_day(d2, 7));
        assert!(compiler.signatures().len() >= count_after_day1);
        // Nuclear rotated its delimiter between the two dates, so a second
        // Nuclear signature must exist if Nuclear clustered on both days.
        let nuclear_sigs = compiler.signatures().for_label(KitFamily::Nuclear.name());
        assert!(!nuclear_sigs.is_empty());
    }

    #[test]
    fn benign_only_day_produces_no_signatures() {
        let mut compiler = compiler();
        let date = SimDate::new(2014, 8, 10);
        let config = StreamConfig {
            samples_per_day: 40,
            malicious_fraction: 0.0,
            family_weights: vec![(KitFamily::Angler, 1.0)],
            seed: 8,
        };
        let day = GraywareStream::new(config).generate_day(date);
        let report = compiler.process_day(date, &day);
        assert_eq!(report.malicious_clusters(), 0, "report: {report:?}");
        assert!(compiler.signatures().is_empty());
        assert!(day.iter().all(|s| compiler.scan(&s.html).is_none()));
    }

    #[test]
    fn empty_day_is_handled() {
        let mut compiler = compiler();
        let report = compiler.process_day(SimDate::new(2014, 8, 1), &[]);
        assert_eq!(report.samples, 0);
        assert_eq!(report.clusters, 0);
        assert!(report.new_signatures.is_empty());
    }

    #[test]
    fn token_cap_is_applied() {
        let compiler = compiler();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let html =
            KitModel::new(KitFamily::Rig).generate_sample(SimDate::new(2014, 8, 3), &mut rng);
        let stream = compiler.tokenize_capped(&html);
        assert!(stream.len() <= compiler.config().token_cap);
    }

    #[test]
    fn family_label_roundtrip() {
        for family in KitFamily::ALL {
            assert_eq!(family_from_label(family.name()), Some(family));
        }
        assert_eq!(family_from_label("NotAKit"), None);
    }

    #[test]
    fn engine_retains_samples_within_the_retention_window() {
        let mut compiler = compiler();
        assert!(compiler.engine().is_empty());
        let d1 = SimDate::new(2014, 8, 5);
        let day1 = test_day(d1, 3);
        compiler.process_day(d1, &day1);
        let live_after_day1 = compiler.engine().len();
        assert!(live_after_day1 > 0);
        // The next day (inside the fast() retention window of 2) keeps
        // yesterday's samples warm...
        let d2 = SimDate::new(2014, 8, 6);
        compiler.process_day(d2, &test_day(d2, 4));
        assert!(compiler.engine().len() >= live_after_day1);
        // ...and a far-future day retires everything older.
        let d3 = SimDate::new(2014, 9, 20);
        let day3 = test_day(d3, 5);
        compiler.process_day(d3, &day3);
        assert!(compiler.engine().len() <= day3.len());
    }

    #[test]
    fn reprocessing_identical_content_hits_the_warm_cache() {
        let mut compiler = compiler();
        let d1 = SimDate::new(2014, 8, 5);
        let day = test_day(d1, 3);
        let first = compiler.process_day(d1, &day);
        // The same content the next day: every class-string deduplicates
        // onto the live entries, so the index answers purely from its
        // maintained caches.
        let d2 = SimDate::new(2014, 8, 6);
        let second = compiler.process_day(d2, &day);
        assert_eq!(second.clusters, first.clusters);
        assert_eq!(second.noise, first.noise);
        assert_eq!(
            second.clustering_stats.index.queries, 0,
            "warm rerun recomputed neighborhoods: {:?}",
            second.clustering_stats.index
        );
        assert!(second.clustering_stats.index.cache_hits > 0);
        let sizes = |report: &DayReport| {
            report
                .verdicts
                .iter()
                .map(|v| (v.size, v.family))
                .collect::<Vec<_>>()
        };
        assert_eq!(sizes(&second), sizes(&first));
    }

    #[test]
    fn day_report_display_is_informative() {
        let mut compiler = compiler();
        let date = SimDate::new(2014, 8, 5);
        let report = compiler.process_day(date, &test_day(date, 9));
        let text = report.to_string();
        assert!(text.contains("8/5/14"));
        assert!(text.contains("clusters"));
    }
}
