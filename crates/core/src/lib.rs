//! # kizzle — the signature compiler
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! compiler that turns a daily stream of grayware HTML samples into
//! anti-virus-style structural signatures for exploit kits, with no analyst
//! in the loop once it has been seeded with known kits.
//!
//! One processing round ([`KizzleCompiler::process_day`]) follows the
//! paper's Fig. 7 pipeline:
//!
//! 1. **Tokenize** every sample into an abstract token stream
//!    (`kizzle-js`), capped at a configurable prefix length.
//! 2. **Cluster** the token-class strings with partitioned DBSCAN at
//!    normalized edit distance 0.10 (`kizzle-cluster`).
//! 3. **Label** each sufficiently large cluster: unpack its medoid
//!    prototype (`kizzle-unpack`), fingerprint the unpacked body with
//!    winnowing (`kizzle-winnow`) and compare against the reference corpus
//!    of known unpacked kits; overlap above the family threshold labels the
//!    cluster malicious.
//! 4. **Generate** one structural signature per malicious cluster
//!    (`kizzle-signature`) and add it to the active [`SignatureSet`].
//!
//! The active set is cumulative across days, which is what gives Kizzle its
//! same-day response to packer churn (the paper's Fig. 12).
//!
//! ## The service façade
//!
//! The deployment is two-sided — a slow compiler re-clustering daily, a
//! fast matcher scanning live traffic — and the public API mirrors that:
//! [`KizzleService`] owns the warm compiler, [`KizzleService::begin_day`]
//! opens a streaming [`DaySession`] that ingests mini-batches as they
//! arrive, and [`KizzleService::matcher`] hands out cloneable
//! `Send + Sync` [`Matcher`] read handles that keep scanning — lock-free
//! in the steady state — while a day seals, picking up each newly
//! published signature set atomically. Configuration goes through
//! [`KizzleConfig::builder`], and every fallible operation returns the
//! unified [`KizzleError`]. The one-object [`KizzleCompiler`] survives
//! underneath (and [`KizzleCompiler::process_day`] is now a thin wrapper
//! over the same session phases) for harnesses that want the monolith.
//!
//! ## Quickstart
//!
//! ```
//! use kizzle::prelude::*;
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//!
//! // Seed with known, unpacked kits and start the service.
//! let date = SimDate::new(2014, 8, 5);
//! let config = KizzleConfig::fast();
//! let reference = ReferenceCorpus::seeded_from_models(date, &config);
//! let mut service = KizzleService::new(config, reference)?;
//!
//! // Serving side: a matcher handle per worker thread.
//! let matcher = service.matcher();
//!
//! // Ingest side: one session per day, fed in mini-batches as the
//! // telemetry arrives; sealing clusters, labels and publishes.
//! let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
//! let mut session = service.begin_day(date)?;
//! for batch in day.chunks(16) {
//!     session.ingest(batch);
//! }
//! let report = session.seal();
//! assert!(report.clusters > 0);
//!
//! // The signatures generated today already detect today's samples —
//! // through the handle issued before the day was sealed.
//! let detected = day.iter().filter(|s| matcher.scan(&s.html).is_some()).count();
//! assert!(detected > 0);
//! # Ok::<(), KizzleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod pipeline;
pub mod reference;
pub mod service;
pub mod snapshot;
pub mod source;

pub use config::{KizzleConfig, KizzleConfigBuilder};
pub use error::KizzleError;
pub use pipeline::{ClusterVerdict, DayReport, KizzleCompiler, PipelineStats};
pub use reference::ReferenceCorpus;
pub use service::{
    DaySession, IngestProducer, KizzleService, Matcher, ScanVerdict, SealHandle,
    DEFAULT_PIPELINE_BOUND,
};
pub use snapshot::{config_fingerprint, read_signatures, ResumeReport, DEFAULT_MAX_DELTAS};
pub use source::{ChainFollower, EpochSource, FollowHandle, SignatureSource};

pub use kizzle_signature::SignatureSet;

pub mod prelude {
    //! One-line import of the curated service API:
    //! `use kizzle::prelude::*;`.
    pub use crate::config::{KizzleConfig, KizzleConfigBuilder};
    pub use crate::error::KizzleError;
    pub use crate::pipeline::{ClusterVerdict, DayReport, KizzleCompiler, PipelineStats};
    pub use crate::reference::ReferenceCorpus;
    pub use crate::service::{
        DaySession, IngestProducer, KizzleService, Matcher, ScanVerdict, SealHandle,
    };
    pub use crate::snapshot::ResumeReport;
    pub use crate::source::{ChainFollower, EpochSource, SignatureSource};
    pub use kizzle_signature::SignatureSet;
}
