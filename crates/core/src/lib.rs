//! # kizzle — the signature compiler
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! compiler that turns a daily stream of grayware HTML samples into
//! anti-virus-style structural signatures for exploit kits, with no analyst
//! in the loop once it has been seeded with known kits.
//!
//! One processing round ([`KizzleCompiler::process_day`]) follows the
//! paper's Fig. 7 pipeline:
//!
//! 1. **Tokenize** every sample into an abstract token stream
//!    (`kizzle-js`), capped at a configurable prefix length.
//! 2. **Cluster** the token-class strings with partitioned DBSCAN at
//!    normalized edit distance 0.10 (`kizzle-cluster`).
//! 3. **Label** each sufficiently large cluster: unpack its medoid
//!    prototype (`kizzle-unpack`), fingerprint the unpacked body with
//!    winnowing (`kizzle-winnow`) and compare against the reference corpus
//!    of known unpacked kits; overlap above the family threshold labels the
//!    cluster malicious.
//! 4. **Generate** one structural signature per malicious cluster
//!    (`kizzle-signature`) and add it to the active [`SignatureSet`].
//!
//! The active set is cumulative across days, which is what gives Kizzle its
//! same-day response to packer churn (the paper's Fig. 12).
//!
//! ## Example
//!
//! ```
//! use kizzle::{KizzleCompiler, KizzleConfig, ReferenceCorpus};
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//!
//! let date = SimDate::new(2014, 8, 5);
//! let reference = ReferenceCorpus::seeded_from_models(date, &KizzleConfig::default());
//! let mut compiler = KizzleCompiler::new(KizzleConfig::fast(), reference);
//!
//! let stream = GraywareStream::new(StreamConfig::small(7));
//! let day = stream.generate_day(date);
//! let report = compiler.process_day(date, &day);
//! assert!(report.clusters > 0);
//! // The signatures generated today already detect today's samples.
//! let detected = day.iter().filter(|s| compiler.scan(&s.html).is_some()).count();
//! assert!(detected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod pipeline;
pub mod reference;
pub mod snapshot;

pub use config::KizzleConfig;
pub use pipeline::{ClusterVerdict, DayReport, KizzleCompiler};
pub use reference::ReferenceCorpus;
pub use snapshot::{config_fingerprint, read_signatures, ResumeReport, DEFAULT_MAX_DELTAS};

pub use kizzle_signature::SignatureSet;
