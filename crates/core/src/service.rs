//! The service façade: session-based streaming ingest on the compiler
//! side, lock-free cloneable read handles on the serving side.
//!
//! The paper's pipeline is explicitly two-sided — a slow compiler that
//! re-clusters daily and a fast matcher that scans live traffic — but the
//! pre-façade API was a single `KizzleCompiler` monolith: `process_day`
//! demanded the whole day up front, and `scan` was unusable while a day
//! compiled because both borrowed the same object. [`KizzleService`]
//! splits the two sides:
//!
//! * **Ingest** is a session: [`KizzleService::begin_day`] opens a
//!   [`DaySession`] that accepts mini-batches as they arrive
//!   ([`DaySession::ingest`] tokenizes, deduplicates and store-inserts
//!   eagerly, amortizing the day's front half across the arrival window)
//!   and [`DaySession::seal`] runs cluster → winnow-label → signature
//!   generation. Sealing is byte-identical to the old single-shot
//!   `process_day` over the same sample sequence — held to that by the
//!   property tests in `tests/service_properties.rs` — and
//!   [`KizzleCompiler::process_day`] survives as a thin wrapper over the
//!   same phases.
//! * **Serving** is a handle: [`KizzleService::matcher`] hands out cheap,
//!   cloneable, `Send + Sync` [`Matcher`]s over an epoch-swapped
//!   `Arc<SignatureSet>`. Scans keep running against the previous day's
//!   published set while a seal is in flight and pick up the new set
//!   atomically at publish — a scan observes the old set or the new set,
//!   never a torn mixture. The steady-state read path is lock-free: one
//!   atomic epoch load plus an uncontended per-handle cache; a handle
//!   touches the shared `RwLock` only on its *first* scan after a publish
//!   (once a day in production, against a writer that holds it for a
//!   pointer swap).
//! * **The ingest side pipelines.** [`DaySession::pipeline`] puts a
//!   bounded channel and one worker thread in front of the session:
//!   cloneable [`IngestProducer`]s submit mini-batches
//!   ([`IngestProducer::send`], `send_owned`, `send_shared` — the
//!   `Arc<[Sample]>` variant avoids buffering the day twice — or
//!   `send_tokenized`) and the worker tokenizes/dedups/store-inserts
//!   off the producers' threads, a full channel blocking them
//!   (backpressure, counted in [`DayReport`]`.pipeline`). And the seal
//!   overlaps: [`DaySession::seal_background`] runs the previous day's
//!   clustering on a background thread while
//!   [`KizzleService::begin_day`] for the *next* day returns
//!   immediately — [`SealHandle::wait`] joins the report. Both paths
//!   stay byte-identical to the synchronous single-shot run (threaded
//!   property tests in `tests/service_properties.rs`).
//!
//! ```
//! use kizzle::prelude::*;
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//!
//! let date = SimDate::new(2014, 8, 5);
//! let config = KizzleConfig::fast();
//! let reference = ReferenceCorpus::seeded_from_models(date, &config);
//! let mut service = KizzleService::new(config, reference)?;
//!
//! // Serving side: handles scan concurrently with compilation.
//! let matcher = service.matcher();
//!
//! // Ingest side: the day arrives in mini-batches.
//! let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
//! let mut session = service.begin_day(date)?;
//! for batch in day.chunks(16) {
//!     session.ingest(batch);
//! }
//! let report = session.seal();
//! assert!(report.clusters > 0);
//!
//! // The seal published atomically: the pre-existing handle now detects
//! // today's kits.
//! let detected = day.iter().filter(|s| matcher.scan(&s.html).is_some()).count();
//! assert!(detected > 0);
//! # Ok::<(), KizzleError>(())
//! ```
//!
//! The pipelined quickstart — producers feed a bounded channel, the
//! previous day seals in the background while the next day ingests:
//!
//! ```
//! use kizzle::prelude::*;
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//! use std::sync::Arc;
//!
//! let date = SimDate::new(2014, 8, 5);
//! let config = KizzleConfig::fast();
//! let reference = ReferenceCorpus::seeded_from_models(date, &config);
//! let mut service = KizzleService::new(config, reference)?;
//! let day: Arc<[_]> = GraywareStream::new(StreamConfig::small(7))
//!     .generate_day(date)
//!     .into();
//!
//! // Day N: mini-batches through the bounded-channel frontend. The
//! // producer handle is cloneable — one per feeder thread.
//! let mut session = service.begin_day(date)?;
//! let producer = session.pipeline(4);
//! for batch in day.chunks(16) {
//!     assert!(producer.send(batch));
//! }
//! drop(producer);
//!
//! // Seal day N off-thread; day N+1 opens immediately and ingests
//! // while N's clustering runs.
//! let sealing = session.seal_background();
//! let mut next = service.begin_day(date.next())?;
//! next.ingest_shared(Arc::clone(&day));
//! let report_n = sealing.wait();
//! let report_n1 = next.seal();
//! assert_eq!(report_n.samples, day.len());
//! assert!(report_n1.date > report_n.date);
//! # Ok::<(), KizzleError>(())
//! ```

use crate::config::KizzleConfig;
use crate::error::KizzleError;
use crate::pipeline::{family_from_label, DayReport, KizzleCompiler, PipelineStats, SampleSource};
use crate::reference::ReferenceCorpus;
use crate::snapshot::ResumeReport;
use crate::source::{EpochSource, SignatureSource};
use kizzle_cluster::{Clustering, CorpusEngine, DistributedStats, SampleId};
use kizzle_corpus::{KitFamily, Sample, SimDate};
use kizzle_js::TokenStream;
use kizzle_signature::SignatureSet;
use std::mem;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// The channel bound [`DaySession::pipeline_auto`] starts from before any
/// day has produced backpressure evidence — the bound the repo's own
/// pipelined examples and benches historically used.
pub const DEFAULT_PIPELINE_BOUND: usize = 4;

/// The compiler-side state shared between the service, its ingest
/// workers, and an in-flight background seal: the warm compiler under a
/// mutex, plus the publication point. Worker threads hold `Arc` clones,
/// so an abandoned session's detached worker can finish draining safely
/// after the session (or even the service) is gone.
#[derive(Debug)]
struct ServiceCore {
    compiler: Mutex<KizzleCompiler>,
    shared: Arc<EpochSource>,
    /// Channel bound the next [`DaySession::pipeline_auto`] will use —
    /// each seal folds its day's [`PipelineStats::suggested_bound`] in,
    /// so a day that stalled producers widens the next day's channel.
    auto_bound: AtomicU64,
}

impl ServiceCore {
    /// Feed a sealed day's backpressure evidence into the adaptive bound.
    /// `None` (no producer ever stalled) keeps the current bound: it was
    /// not the bottleneck, so there is nothing to learn.
    fn store_auto_bound(&self, pipeline: &PipelineStats) {
        if let Some(bound) = pipeline.suggested_bound() {
            self.auto_bound.store(bound, Ordering::Relaxed);
        }
    }
}

/// The two-sided Kizzle service: session-based streaming ingest over the
/// warm [`KizzleCompiler`], and [`Matcher`] read handles over the
/// epoch-swapped published signature set. See the [module docs](self) for
/// the full picture and a usage example.
///
/// # Pipelined ingest
///
/// The front-end is pipelined: [`DaySession::pipeline`] opens a bounded
/// `sync_channel` whose worker tokenizes/dedups/store-inserts mini-batches
/// off the callers' threads (cloneable [`IngestProducer`]s submit with
/// backpressure), and [`DaySession::seal_background`] runs the expensive
/// clustering of day *d* on a background thread so `begin_day(d+1)` and
/// its ingest overlap the seal. Every compiler-state accessor first waits
/// out an in-flight background seal, so observed state is always a
/// day boundary; only [`KizzleService::begin_day`], ingest itself, and
/// [`KizzleService::matcher`] scans run concurrently with a seal.
///
/// ```
/// use kizzle::prelude::*;
/// use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
///
/// let date = SimDate::new(2014, 8, 5);
/// let config = KizzleConfig::fast();
/// let reference = ReferenceCorpus::seeded_from_models(date, &config);
/// let mut service = KizzleService::new(config, reference)?;
///
/// let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
/// let mut session = service.begin_day(date)?;
/// // Bounded-channel frontend: producers submit, the worker ingests.
/// let producer = session.pipeline(4);
/// std::thread::scope(|scope| {
///     for chunk in day.chunks(16) {
///         let producer = producer.clone();
///         scope.spawn(move || assert!(producer.send(chunk)));
///     }
/// });
/// drop(producer);
/// // Seal in the background; day d+1 could begin_day/ingest right here.
/// let handle = session.seal_background();
/// let report = handle.wait();
/// assert_eq!(report.samples, day.len());
/// assert!(report.pipeline.applied_batches > 0);
/// # Ok::<(), KizzleError>(())
/// ```
#[derive(Debug)]
pub struct KizzleService {
    core: Arc<ServiceCore>,
    /// The previous day's in-flight background seal, if any. Joined
    /// (drained) before any compiler-state access or new seal; left
    /// running across `begin_day`/ingest — that is the overlap.
    pending: Mutex<Option<JoinHandle<()>>>,
    /// Immutable copy of the validated configuration, readable without
    /// the compiler lock.
    config: KizzleConfig,
}

impl KizzleService {
    /// Create a service from a validated configuration and a seeded
    /// reference corpus. Returns [`KizzleError::Config`] instead of
    /// panicking when the configuration violates an invariant.
    pub fn new(config: KizzleConfig, reference: ReferenceCorpus) -> Result<Self, KizzleError> {
        let config = config.validate()?;
        Ok(KizzleService::from_compiler(KizzleCompiler::new(
            config, reference,
        )))
    }

    /// Wrap an existing compiler (e.g. one restored by
    /// [`KizzleCompiler::load_state`]), publishing its current signature
    /// set as epoch 0.
    #[must_use]
    pub fn from_compiler(compiler: KizzleCompiler) -> Self {
        let set = compiler.signatures_shared();
        // Seal at publish time: scans on fresh Matcher handles must never
        // pay the pipeline build (a resumed set usually arrives pre-sealed
        // from the snapshot's scan-pipeline section).
        set.seal();
        let config = *compiler.config();
        let shared = Arc::new(EpochSource::new(set, config.token_cap));
        KizzleService {
            core: Arc::new(ServiceCore {
                compiler: Mutex::new(compiler),
                shared,
                auto_bound: AtomicU64::new(DEFAULT_PIPELINE_BOUND as u64),
            }),
            pending: Mutex::new(None),
            config,
        }
    }

    fn lock_compiler(&self) -> MutexGuard<'_, KizzleCompiler> {
        self.core.compiler.lock().expect("compiler lock")
    }

    /// Join an in-flight background seal, if any. Every compiler-state
    /// accessor and every new seal calls this first, so background seals
    /// serialize and observed state is always a day boundary. A panic on
    /// the seal thread resurfaces here.
    fn drain_pending(&self) {
        let pending = self.pending.lock().expect("pending seal lock").take();
        if let Some(worker) = pending {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Load persisted service state from `state_dir`, or start fresh when
    /// no usable snapshot exists (`reference` seeds the fresh service; it
    /// is a closure because seeding winnow-fingerprints every kit model —
    /// a cost the warm path must not pay). The cron-job entry point; the
    /// report says which resume rung was reached.
    pub fn open(
        state_dir: &Path,
        config: KizzleConfig,
        reference: impl FnOnce() -> ReferenceCorpus,
    ) -> Result<(Self, ResumeReport), KizzleError> {
        let config = config.validate()?;
        let (compiler, report) = KizzleCompiler::load_or_new(state_dir, config, reference);
        Ok((KizzleService::from_compiler(compiler), report))
    }

    /// Load persisted service state, refusing to start without it. Unlike
    /// [`KizzleService::open`] this propagates every load failure —
    /// [`KizzleError::ConfigFingerprint`] when the snapshot was written
    /// under a different configuration, [`KizzleError::Snapshot`] for
    /// damage.
    pub fn load(
        state_dir: &Path,
        config: KizzleConfig,
    ) -> Result<(Self, ResumeReport), KizzleError> {
        let (compiler, report) = KizzleCompiler::load_state(state_dir, config)?;
        Ok((KizzleService::from_compiler(compiler), report))
    }

    /// Persist the complete service state into `state_dir` as the next
    /// link of the snapshot chain (see [`KizzleCompiler::save_state`]).
    /// Waits out an in-flight background seal first, so what is persisted
    /// is always a sealed day boundary.
    pub fn save(&self, state_dir: &Path) -> Result<(), KizzleError> {
        self.drain_pending();
        self.lock_compiler().save_state(state_dir)
    }

    /// Like [`KizzleService::save`] with an explicit chain-compaction
    /// cadence (`max_deltas == 0` writes a full snapshot every time).
    pub fn save_compacting(&self, state_dir: &Path, max_deltas: usize) -> Result<(), KizzleError> {
        self.drain_pending();
        self.lock_compiler()
            .save_state_compacting(state_dir, max_deltas)
    }

    /// Open a streaming ingest session for `date`. Mini-batches go in via
    /// [`DaySession::ingest`]; [`DaySession::seal`] compiles and publishes.
    ///
    /// Returns [`KizzleError::Ingest`] when `date` precedes the last
    /// opened day — the retention window and day views are keyed on a
    /// monotone day counter, so replaying the past would silently corrupt
    /// the warm state. (Re-running the *same* date is allowed: a crashed
    /// cron job may legitimately re-run a day.)
    ///
    /// `begin_day` itself is free of side effects: the day cursor only
    /// advances — and samples aged out of the retention window are only
    /// retired — on the session's **first non-empty ingest** (or at seal,
    /// for an empty day). A session dropped before ingesting anything therefore
    /// leaves the warm state untouched; once a batch has been ingested the
    /// day is committed (its stamped samples are live in the store) and
    /// abandoning the session no longer rolls that back.
    /// `begin_day` does **not** wait for a background seal: that is the
    /// pipeline overlap — day *d+1* opens and ingests while day *d*'s
    /// [`DaySession::seal_background`] is still clustering.
    pub fn begin_day(&mut self, date: SimDate) -> Result<DaySession<'_>, KizzleError> {
        self.check_monotone(date)?;
        let state = Arc::new(SessionState {
            date,
            token_cap: self.config.token_cap,
            core: Arc::clone(&self.core),
            inner: Mutex::new(SessionInner::default()),
            abort: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            max_queued: AtomicU64::new(0),
        });
        Ok(DaySession {
            service: self,
            date,
            state,
            frontend: None,
            finished: false,
        })
    }

    fn check_monotone(&self, date: SimDate) -> Result<(), KizzleError> {
        if let Some(last) = self.lock_compiler().last_processed_day() {
            if date < last {
                return Err(KizzleError::Ingest(format!(
                    "day {date} precedes the last opened day {last}"
                )));
            }
            // Guard the other direction too: a mis-parsed far-future date
            // would retire the entire retained corpus in one sweep (every
            // live sample ages out against the bogus day). Refuse jumps
            // beyond the configured horizon as a typed ingest error the
            // caller can fix, instead of silently going cold.
            let advance = date.absolute_day() - last.absolute_day();
            let max_advance = i64::try_from(self.config().max_day_advance).unwrap_or(i64::MAX);
            if advance > max_advance {
                return Err(KizzleError::Ingest(format!(
                    "day {date} is {advance} days past the last opened day {last} \
                     (max_day_advance is {max_advance}); refusing to retire the corpus"
                )));
            }
        }
        Ok(())
    }

    /// Single-shot convenience: process the whole day through the same
    /// phases the session drives (no buffering — the samples are borrowed
    /// straight through the compiler) and publish the grown set.
    /// Byte-identical to mini-batched ingest of the same sequence.
    pub fn process_day(
        &mut self,
        date: SimDate,
        samples: &[Sample],
    ) -> Result<DayReport, KizzleError> {
        self.drain_pending();
        self.check_monotone(date)?;
        let report = self.lock_compiler().process_day(date, samples);
        self.publish_current();
        Ok(report)
    }

    /// Publish the compiler's current set: seal its scan pipeline (so no
    /// scan ever pays the build) and swap the shared handle in.
    fn publish_current(&self) {
        let _publish_span = kizzle_telemetry::span!("day.publish");
        let set = self.lock_compiler().signatures_shared();
        set.seal();
        self.core.shared.publish(set);
    }

    /// Like [`KizzleService::process_day`] with already tokenized streams
    /// (the evaluation harness tokenizes once and shares the streams
    /// between Kizzle and its metrics). `samples` and `streams` must be
    /// parallel.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn process_day_tokenized(
        &mut self,
        date: SimDate,
        samples: &[Sample],
        streams: &[TokenStream],
    ) -> Result<DayReport, KizzleError> {
        self.drain_pending();
        self.check_monotone(date)?;
        let report = self
            .lock_compiler()
            .process_day_tokenized(date, samples, streams);
        self.publish_current();
        Ok(report)
    }

    /// A cheap, cloneable, `Send + Sync` read handle over the published
    /// signature set. Handles stay valid for the life of the process —
    /// they keep scanning the previous set lock-free while a seal is in
    /// flight and observe each publication atomically.
    #[must_use]
    pub fn matcher(&self) -> Matcher {
        Matcher::over(Arc::clone(&self.core.shared))
    }

    /// The channel bound the next [`DaySession::pipeline_auto`] will use:
    /// [`DEFAULT_PIPELINE_BOUND`] until a sealed day's frontend stalled a
    /// producer, afterwards that day's
    /// [`PipelineStats::suggested_bound`]. Mostly useful for
    /// observability and tests.
    #[must_use]
    pub fn auto_pipeline_bound(&self) -> usize {
        usize::try_from(self.core.auto_bound.load(Ordering::Relaxed))
            .unwrap_or(DEFAULT_PIPELINE_BOUND)
    }

    /// The signatures the service has published so far (the compiler-side
    /// view; [`Matcher::signatures`] is the serving-side snapshot). Waits
    /// out an in-flight background seal, then holds the compiler lock for
    /// the guard's lifetime — drop it before ingesting or sealing.
    #[must_use]
    pub fn signatures(&self) -> SignaturesRef<'_> {
        self.drain_pending();
        SignaturesRef(self.lock_compiler())
    }

    /// The reference corpus (grows as labeled clusters are absorbed).
    /// Guarded like [`KizzleService::signatures`].
    #[must_use]
    pub fn reference(&self) -> ReferenceRef<'_> {
        self.drain_pending();
        ReferenceRef(self.lock_compiler())
    }

    /// The warm corpus engine (live store size, index state) — exposed for
    /// observability and tests. Guarded like [`KizzleService::signatures`].
    #[must_use]
    pub fn engine(&self) -> EngineRef<'_> {
        self.drain_pending();
        EngineRef(self.lock_compiler())
    }

    /// The pipeline configuration (an immutable copy — readable without
    /// the compiler lock, even while a seal is in flight).
    #[must_use]
    pub fn config(&self) -> &KizzleConfig {
        &self.config
    }

    /// The last *opened* day, if any (advanced by a session's first ingest
    /// or a single-shot `process_day`, even when the session is later
    /// abandoned without sealing) — the date [`KizzleService::begin_day`]'s
    /// monotone check compares against. Survives snapshot save/load.
    #[must_use]
    pub fn last_processed_day(&self) -> Option<SimDate> {
        self.lock_compiler().last_processed_day()
    }

    /// Cluster the entire retention window as one batch (the multi-day
    /// eval mode) — see [`KizzleCompiler::cluster_window`].
    pub fn cluster_window(&mut self) -> (Clustering, DistributedStats) {
        self.drain_pending();
        self.lock_compiler().cluster_window()
    }

    /// Borrow the underlying compiler (escape hatch for evaluation
    /// harnesses that need pipeline internals the façade does not carry).
    /// Guarded like [`KizzleService::signatures`].
    #[must_use]
    pub fn compiler(&self) -> CompilerRef<'_> {
        self.drain_pending();
        CompilerRef(self.lock_compiler())
    }

    /// Unwrap the service back into its compiler.
    #[must_use]
    pub fn into_compiler(self) -> KizzleCompiler {
        self.drain_pending();
        match Arc::try_unwrap(self.core) {
            Ok(core) => core.compiler.into_inner().expect("compiler lock"),
            // A detached worker from an abandoned session still holds the
            // core; clone the warm state out instead of waiting for it.
            Err(core) => core.compiler.lock().expect("compiler lock").clone(),
        }
    }
}

/// Read guard over the service's [`KizzleCompiler`], returned by
/// [`KizzleService::compiler`]. Holds the compiler lock until dropped.
#[derive(Debug)]
pub struct CompilerRef<'a>(MutexGuard<'a, KizzleCompiler>);

impl Deref for CompilerRef<'_> {
    type Target = KizzleCompiler;

    fn deref(&self) -> &KizzleCompiler {
        &self.0
    }
}

/// Read guard over the compiler's [`SignatureSet`], returned by
/// [`KizzleService::signatures`]. Holds the compiler lock until dropped.
#[derive(Debug)]
pub struct SignaturesRef<'a>(MutexGuard<'a, KizzleCompiler>);

impl Deref for SignaturesRef<'_> {
    type Target = SignatureSet;

    fn deref(&self) -> &SignatureSet {
        self.0.signatures()
    }
}

/// Read guard over the compiler's [`ReferenceCorpus`], returned by
/// [`KizzleService::reference`]. Holds the compiler lock until dropped.
#[derive(Debug)]
pub struct ReferenceRef<'a>(MutexGuard<'a, KizzleCompiler>);

impl Deref for ReferenceRef<'_> {
    type Target = ReferenceCorpus;

    fn deref(&self) -> &ReferenceCorpus {
        self.0.reference()
    }
}

/// Read guard over the compiler's [`CorpusEngine`], returned by
/// [`KizzleService::engine`]. Holds the compiler lock until dropped.
#[derive(Debug)]
pub struct EngineRef<'a>(MutexGuard<'a, KizzleCompiler>);

impl Deref for EngineRef<'_> {
    type Target = CorpusEngine;

    fn deref(&self) -> &CorpusEngine {
        self.0.engine()
    }
}

/// The day's buffered state, shared between the session, its channel
/// worker, and (briefly) the seal. Cluster member indices are
/// day-positional, so application order defines the day sequence.
#[derive(Debug, Default)]
struct SessionInner {
    /// Set when the day has been opened (first non-empty batch applied,
    /// or seal of an empty day) — the point after which the day is
    /// committed.
    stamp: Option<u64>,
    samples: SampleRope,
    streams: Vec<TokenStream>,
    day_ids: Vec<SampleId>,
}

/// State shared by a [`DaySession`], its [`IngestProducer`]s and its
/// channel worker — `Arc`ed so an abandoned session's worker can drain
/// and exit on its own.
#[derive(Debug)]
struct SessionState {
    date: SimDate,
    token_cap: usize,
    core: Arc<ServiceCore>,
    inner: Mutex<SessionInner>,
    /// Raised when the session is dropped unsealed: producers stop
    /// submitting, the worker discards instead of applying.
    abort: AtomicBool,
    submitted: AtomicU64,
    applied: AtomicU64,
    stalls: AtomicU64,
    queued: AtomicU64,
    max_queued: AtomicU64,
}

impl SessionState {
    fn pipeline_stats(&self) -> PipelineStats {
        PipelineStats {
            submitted_batches: self.submitted.load(Ordering::Relaxed),
            applied_batches: self.applied.load(Ordering::Relaxed),
            producer_stalls: self.stalls.load(Ordering::Relaxed),
            max_queue_depth: self.max_queued.load(Ordering::Relaxed),
        }
    }
}

/// The day's samples as `Arc`-shared chunks in application order —
/// [`DaySession::ingest_owned`]/[`DaySession::ingest_shared`] hand their
/// allocation straight in, so large days are buffered once, not twice.
#[derive(Debug, Default)]
struct SampleRope {
    chunks: Vec<Arc<[Sample]>>,
    /// `starts[c]` is the day position of `chunks[c][0]`.
    starts: Vec<usize>,
    len: usize,
}

impl SampleRope {
    fn push(&mut self, chunk: Arc<[Sample]>) {
        if chunk.is_empty() {
            return;
        }
        self.starts.push(self.len);
        self.len += chunk.len();
        self.chunks.push(chunk);
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl SampleSource for SampleRope {
    fn count(&self) -> usize {
        self.len
    }

    fn html(&self, index: usize) -> &str {
        let chunk = self.starts.partition_point(|&start| start <= index) - 1;
        &self.chunks[chunk][index - self.starts[chunk]].html
    }
}

/// One unit of work on the ingest channel.
enum Job {
    /// Tokenize on the worker, then apply.
    Raw(Arc<[Sample]>),
    /// Apply with caller-provided token streams.
    Tokenized(Arc<[Sample]>, Vec<TokenStream>),
    /// Seal cutoff: the worker stops reading the channel and exits.
    Finish,
}

/// The bounded-channel frontend of one session: the sender side plus the
/// worker draining it.
#[derive(Debug)]
struct Frontend {
    tx: SyncSender<Job>,
    worker: Option<JoinHandle<()>>,
}

/// Tokenize/dedup/store-insert one mini-batch atomically: the whole batch
/// lands under one compiler lock, so no observer (and no abort) ever sees
/// a half-inserted batch.
fn apply_batch(state: &SessionState, samples: Arc<[Sample]>, streams: Vec<TokenStream>) {
    debug_assert_eq!(samples.len(), streams.len());
    if samples.is_empty() {
        return;
    }
    let mut compiler = state.core.compiler.lock().expect("compiler lock");
    let mut inner = state.inner.lock().expect("session buffers lock");
    let stamp = match inner.stamp {
        Some(stamp) => stamp,
        None => {
            // First non-empty batch opens the day: advance the cursor, run
            // the retention sweep — same point as the synchronous path.
            let stamp = compiler.open_day(state.date);
            inner.stamp = Some(stamp);
            stamp
        }
    };
    let ids = compiler.ingest_streams(stamp, &streams);
    inner.day_ids.extend(ids);
    inner.streams.extend(streams);
    inner.samples.push(samples);
    state.applied.fetch_add(1, Ordering::Relaxed);
}

/// Submit a job with backpressure: try the channel first, count a stall
/// and block when it is full. `false` means the job was not accepted
/// (worker gone, or the session aborted).
fn submit_job(state: &SessionState, tx: &SyncSender<Job>, job: Job) -> bool {
    if state.abort.load(Ordering::Acquire) {
        return false;
    }
    let depth = state.queued.fetch_add(1, Ordering::Relaxed) + 1;
    state.max_queued.fetch_max(depth, Ordering::Relaxed);
    state.submitted.fetch_add(1, Ordering::Relaxed);
    let job = match tx.try_send(job) {
        Ok(()) => return true,
        Err(TrySendError::Full(job)) => {
            state.stalls.fetch_add(1, Ordering::Relaxed);
            job
        }
        Err(TrySendError::Disconnected(job)) => {
            drop(job);
            state.queued.fetch_sub(1, Ordering::Relaxed);
            state.submitted.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
    };
    match tx.send(job) {
        Ok(()) => true,
        Err(_) => {
            state.queued.fetch_sub(1, Ordering::Relaxed);
            state.submitted.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }
}

/// The channel worker: drain jobs in FIFO order, tokenizing and applying
/// off the producers' threads, until the seal's `Finish` sentinel or
/// channel disconnect (every sender gone). An aborted session's jobs are
/// received and discarded, so a producer blocked on a full channel always
/// unblocks.
fn ingest_worker(state: &SessionState, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let (samples, streams) = match job {
            Job::Finish => break,
            Job::Raw(samples) => {
                state.queued.fetch_sub(1, Ordering::Relaxed);
                if state.abort.load(Ordering::Acquire) {
                    continue;
                }
                let streams = {
                    let _ingest_span = kizzle_telemetry::span!("day.ingest");
                    samples
                        .iter()
                        .map(|s| kizzle_js::tokenize_document_capped(&s.html, state.token_cap))
                        .collect()
                };
                (samples, streams)
            }
            Job::Tokenized(samples, streams) => {
                state.queued.fetch_sub(1, Ordering::Relaxed);
                if state.abort.load(Ordering::Acquire) {
                    continue;
                }
                (samples, streams)
            }
        };
        apply_batch(state, samples, streams);
    }
}

/// A cloneable, `Send` handle for submitting mini-batches to a session's
/// bounded-channel frontend, issued by [`DaySession::pipeline`].
///
/// Sends apply backpressure: when the channel is full the send blocks (and
/// counts a stall) until the worker catches up. Every send returns whether
/// the batch was accepted — `false` once the session has sealed (the
/// cutoff) or been dropped. Batches are applied in channel FIFO order,
/// which defines the day's sample order; with several producers that
/// interleaving is whatever the threads race to, so callers needing a
/// deterministic day sequence must order their sends themselves.
#[derive(Debug, Clone)]
pub struct IngestProducer {
    tx: SyncSender<Job>,
    state: Arc<SessionState>,
}

impl IngestProducer {
    /// Submit a mini-batch by copy (the batch is cloned into shared
    /// storage). Empty batches are accepted no-ops.
    pub fn send(&self, samples: &[Sample]) -> bool {
        if samples.is_empty() {
            return !self.state.abort.load(Ordering::Acquire);
        }
        self.send_shared(samples.into())
    }

    /// Submit an owned mini-batch — moved, not copied.
    pub fn send_owned(&self, samples: Vec<Sample>) -> bool {
        if samples.is_empty() {
            return !self.state.abort.load(Ordering::Acquire);
        }
        self.send_shared(samples.into())
    }

    /// Submit an `Arc`-shared mini-batch — the session buffers the same
    /// allocation the caller keeps, so the day is never held twice.
    pub fn send_shared(&self, samples: Arc<[Sample]>) -> bool {
        if samples.is_empty() {
            return !self.state.abort.load(Ordering::Acquire);
        }
        submit_job(&self.state, &self.tx, Job::Raw(samples))
    }

    /// Submit an `Arc`-shared mini-batch with already tokenized streams
    /// (position-parallel with `samples`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn send_tokenized(&self, samples: Arc<[Sample]>, streams: Vec<TokenStream>) -> bool {
        assert_eq!(
            samples.len(),
            streams.len(),
            "samples and streams must be parallel"
        );
        if samples.is_empty() {
            return !self.state.abort.load(Ordering::Acquire);
        }
        submit_job(&self.state, &self.tx, Job::Tokenized(samples, streams))
    }
}

/// A streaming ingest session for one day, opened by
/// [`KizzleService::begin_day`].
///
/// Mini-batches are tokenized, deduplicated and store-inserted **eagerly**
/// on [`DaySession::ingest`] — by the time the day's tail arrives, its
/// front half has already been indexed, so [`DaySession::seal`] pays only
/// clustering, labeling and signature generation. The first *non-empty*
/// batch applied also *opens* the day (advances the day cursor, retires
/// samples that aged out of the retention window); dropping a session
/// before that first batch is a complete no-op. Dropping it afterwards
/// abandons the day: already-applied batches stay in the warm store (where
/// retention will age them out) but no clustering runs, no day view is
/// recorded and nothing is published. With the pipelined frontend the
/// drop additionally aborts cleanly: queued batches are received and
/// discarded (never half-applied — batches apply atomically), and a
/// producer blocked on the full channel always unblocks.
///
/// # Pipelined frontend
///
/// [`DaySession::pipeline`] bounds a `sync_channel` and spawns a worker
/// that tokenizes/dedups/store-inserts off the callers' threads;
/// cloneable [`IngestProducer`]s submit mini-batches with backpressure.
/// [`DaySession::seal_background`] then runs clustering on a background
/// thread and returns a [`SealHandle`] — `begin_day(d+1)` and its ingest
/// proceed immediately, overlapping day *d*'s expensive phase, while
/// [`Matcher`]s keep scanning the previous published set and pick up the
/// new one atomically when the background seal publishes. Both async
/// boundaries are byte-identical to the synchronous path (property-tested
/// in `tests/service_properties.rs`); the [`DayReport::pipeline`] counters
/// record how hard the frontend worked.
///
/// The direct ingest calls buffer sample and stream copies until seal
/// (cluster member indices are day-positional, and labeling/signature
/// generation need the originals); [`DaySession::ingest_owned`] /
/// [`DaySession::ingest_shared`] move or share the allocation instead, so
/// a large day is held once, not twice.
#[derive(Debug)]
pub struct DaySession<'a> {
    service: &'a mut KizzleService,
    date: SimDate,
    state: Arc<SessionState>,
    frontend: Option<Frontend>,
    /// Set by the seal paths so `Drop` knows not to abort.
    finished: bool,
}

impl DaySession<'_> {
    /// The day this session ingests.
    #[must_use]
    pub fn date(&self) -> SimDate {
        self.date
    }

    /// Number of samples applied to the warm store so far. With a
    /// pipelined frontend this trails the producers by whatever is still
    /// queued in the channel.
    #[must_use]
    pub fn ingested(&self) -> usize {
        self.state
            .inner
            .lock()
            .expect("session buffers lock")
            .samples
            .len()
    }

    /// Start (or reuse) the bounded-channel frontend and return a producer
    /// for it. `channel_bound` caps how many mini-batches may queue before
    /// senders block (clamped to at least 1); the first call fixes the
    /// bound, later calls hand out more producers for the same channel.
    ///
    /// Producers may be cloned and moved to other threads; the worker
    /// tokenizes and applies batches in channel FIFO order. Sends racing a
    /// seal are cut off: once [`DaySession::seal`] or
    /// [`DaySession::seal_background`] has flushed the channel, further
    /// sends return `false`.
    pub fn pipeline(&mut self, channel_bound: usize) -> IngestProducer {
        if self.frontend.is_none() {
            let (tx, rx) = std::sync::mpsc::sync_channel(channel_bound.max(1));
            let state = Arc::clone(&self.state);
            let worker = std::thread::Builder::new()
                .name("kizzle-ingest".into())
                .spawn(move || ingest_worker(&state, &rx))
                .expect("spawn ingest worker");
            self.frontend = Some(Frontend {
                tx,
                worker: Some(worker),
            });
        }
        let frontend = self.frontend.as_ref().expect("frontend just created");
        IngestProducer {
            tx: frontend.tx.clone(),
            state: Arc::clone(&self.state),
        }
    }

    /// Like [`DaySession::pipeline`] with the **adaptive** channel bound:
    /// [`DEFAULT_PIPELINE_BOUND`] on a fresh service, afterwards whatever
    /// the previous sealed day's backpressure suggested
    /// ([`PipelineStats::suggested_bound`] — the smallest power of two
    /// giving the frontend room above the observed high-water mark). A day
    /// whose producers never stalled leaves the bound unchanged, so the
    /// bound ratchets to the workload instead of oscillating. Callers that
    /// know their burst shape keep [`DaySession::pipeline`].
    pub fn pipeline_auto(&mut self) -> IngestProducer {
        let bound = usize::try_from(self.state.core.auto_bound.load(Ordering::Relaxed))
            .unwrap_or(DEFAULT_PIPELINE_BOUND);
        self.pipeline(bound)
    }

    /// Ingest a mini-batch: tokenize each sample (capped at the configured
    /// prefix), deposit the class-strings into the warm engine (duplicate
    /// content — intra-day or carried over from recent days — dedups onto
    /// the live entry), and index fresh content immediately. When the
    /// pipelined frontend is active the batch rides the channel instead
    /// (tokenized by the worker), keeping one FIFO order across direct and
    /// producer submissions.
    pub fn ingest(&mut self, samples: &[Sample]) {
        if samples.is_empty() {
            return;
        }
        self.ingest_shared(samples.into());
    }

    /// Like [`DaySession::ingest`], taking ownership of the batch — the
    /// day is buffered once instead of copied into the session.
    pub fn ingest_owned(&mut self, samples: Vec<Sample>) {
        if samples.is_empty() {
            return;
        }
        self.ingest_shared(samples.into());
    }

    /// Like [`DaySession::ingest`] over an `Arc`-shared batch — the
    /// session buffers the caller's allocation, so a large day held
    /// elsewhere is never duplicated.
    pub fn ingest_shared(&mut self, samples: Arc<[Sample]>) {
        if samples.is_empty() {
            return;
        }
        if let Some(frontend) = &self.frontend {
            submit_job(&self.state, &frontend.tx, Job::Raw(samples));
            return;
        }
        let streams: Vec<TokenStream> = {
            let _ingest_span = kizzle_telemetry::span!("day.ingest");
            samples
                .iter()
                .map(|s| kizzle_js::tokenize_document_capped(&s.html, self.state.token_cap))
                .collect()
        };
        self.state.submitted.fetch_add(1, Ordering::Relaxed);
        apply_batch(&self.state, samples, streams);
    }

    /// Like [`DaySession::ingest`] with already tokenized streams (the
    /// evaluation harness tokenizes once and shares the streams between
    /// Kizzle and its metrics). `samples` and `streams` must be parallel.
    ///
    /// An empty batch is a no-op: it does **not** open the day, so a
    /// frontend that flushes on a timer and sends empty ticks never
    /// commits a day (or runs its retention sweep) ahead of real traffic.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn ingest_tokenized(&mut self, samples: &[Sample], streams: &[TokenStream]) {
        assert_eq!(
            samples.len(),
            streams.len(),
            "samples and streams must be parallel"
        );
        if samples.is_empty() {
            return;
        }
        if let Some(frontend) = &self.frontend {
            submit_job(
                &self.state,
                &frontend.tx,
                Job::Tokenized(samples.into(), streams.to_vec()),
            );
            return;
        }
        self.state.submitted.fetch_add(1, Ordering::Relaxed);
        apply_batch(&self.state, samples.into(), streams.to_vec());
    }

    /// Flush the frontend and stop its worker: send the `Finish` sentinel
    /// (blocking until the channel has room, so every batch queued before
    /// the cutoff is applied first) and join. Producer sends after the
    /// cutoff return `false`.
    fn close_frontend(&mut self) {
        if let Some(mut frontend) = self.frontend.take() {
            let _ = frontend.tx.send(Job::Finish);
            drop(frontend.tx);
            if let Some(worker) = frontend.worker.take() {
                if let Err(payload) = worker.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    /// Take the day's buffers out of the shared state for sealing.
    fn take_buffers(&self) -> SessionInner {
        let mut inner = self.state.inner.lock().expect("session buffers lock");
        mem::take(&mut *inner)
    }

    /// Seal the day: cluster the accumulated samples, label cluster
    /// prototypes against the reference corpus, generate signatures for
    /// malicious clusters, and **publish** the grown signature set to
    /// every [`Matcher`] handle atomically. Byte-identical to single-shot
    /// [`KizzleCompiler::process_day`] over the same sample sequence.
    ///
    /// Sealing is an explicit commit even when nothing was ingested: a
    /// quiet cron day still advances the day cursor and runs the retention
    /// sweep, exactly like `process_day(date, &[])`. Only *implicit*
    /// empty ticks ([`DaySession::ingest`] of an empty batch) are no-ops —
    /// don't call `seal` on a session you meant to abandon.
    ///
    /// Flushes the pipelined frontend first (everything queued before the
    /// cutoff is applied; later sends return `false`) and waits out a
    /// previous day's background seal, so seals always serialize.
    #[must_use = "the day report is the output of the whole session"]
    pub fn seal(mut self) -> DayReport {
        self.close_frontend();
        self.service.drain_pending();
        let buffers = self.take_buffers();
        let mut report = {
            let mut compiler = self.service.lock_compiler();
            let stamp = buffers
                .stamp
                .unwrap_or_else(|| compiler.open_day(self.date));
            compiler.seal_day(
                self.date,
                stamp,
                &buffers.samples,
                &buffers.streams,
                buffers.day_ids,
            )
        };
        report.pipeline = self.state.pipeline_stats();
        report.pipeline.record_to_registry();
        self.state.core.store_auto_bound(&report.pipeline);
        self.service.publish_current();
        self.finished = true;
        report
    }

    /// Seal the day on a background thread and return a [`SealHandle`]
    /// for the report. The cheap borrow phase (frontend flush, day-view
    /// record, clustering-input capture) runs here; the expensive phase
    /// (partition → DBSCAN → reduce, then label/sign and the atomic
    /// publish) runs on the spawned thread. The service is free the moment
    /// this returns: `begin_day(d+1)` and its ingest overlap the seal,
    /// which is the pipeline's headline win.
    ///
    /// The published result is byte-identical to [`DaySession::seal`].
    /// Compiler-state accessors ([`KizzleService::signatures`], `save`,
    /// the next seal, …) wait for the background seal to finish;
    /// [`Matcher`]s never wait — they scan the previous set until the
    /// background publish swaps the new one in atomically.
    #[must_use = "the handle is the only way to get the day report"]
    pub fn seal_background(mut self) -> SealHandle {
        self.close_frontend();
        self.service.drain_pending();
        let buffers = self.take_buffers();
        let date = self.date;
        let prepared = {
            let mut compiler = self.service.lock_compiler();
            let stamp = buffers
                .stamp
                .unwrap_or_else(|| compiler.open_day(self.date));
            compiler.seal_view(stamp, &buffers.day_ids)
        };
        let slot = SealSlot::new();
        let core = Arc::clone(&self.service.core);
        // The frontend is closed, so the stats are final: feed the
        // adaptive bound now — `begin_day(d+1)` may call `pipeline_auto`
        // before the background thread even starts.
        let pipeline = self.state.pipeline_stats();
        core.store_auto_bound(&pipeline);
        let guard_slot = Arc::clone(&slot);
        let samples = buffers.samples;
        let streams = buffers.streams;
        let worker = std::thread::Builder::new()
            .name("kizzle-seal".into())
            .spawn(move || {
                let guard = SealGuard {
                    slot: guard_slot,
                    completed: false,
                };
                let seal_span = kizzle_telemetry::span!("day.seal");
                // The expensive phase: engine-free, runs unlocked, so the
                // next day's ingest proceeds concurrently.
                let (clustering, stats) = prepared.finish();
                let (mut report, set) = {
                    let mut compiler = core.compiler.lock().expect("compiler lock");
                    let report =
                        compiler.label_and_sign(date, &samples, &streams, clustering, stats);
                    (report, compiler.signatures_shared())
                };
                report.pipeline = pipeline;
                report.pipeline.record_to_registry();
                let seal_elapsed = seal_span.finish();
                if kizzle_telemetry::enabled() {
                    kizzle_telemetry::histogram("kizzle_day_seal_ns")
                        .observe_duration(seal_elapsed);
                }
                // Seal (pipeline build) outside the lock, then the same
                // atomic epoch swap as the synchronous path.
                let publish_span = kizzle_telemetry::span!("day.publish");
                set.seal();
                core.shared.publish(set);
                publish_span.finish();
                guard.complete(report);
            })
            .expect("spawn seal thread");
        *self.service.pending.lock().expect("pending seal lock") = Some(worker);
        self.finished = true;
        SealHandle { slot }
    }
}

impl Drop for DaySession<'_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // Abandoned session: discard queued work instead of applying it.
        // The worker keeps receiving (so a producer blocked on the full
        // channel always unblocks) but applies nothing further; batches
        // already applied stay, exactly the documented abandon semantics.
        self.state.abort.store(true, Ordering::Release);
        if let Some(mut frontend) = self.frontend.take() {
            // Best-effort wake for an idle worker; a full channel is fine —
            // dropping our sender (plus the producers', eventually)
            // disconnects the channel and the worker exits on its own.
            let _ = frontend.tx.try_send(Job::Finish);
            // Deliberately not joined: the worker may be waiting on
            // producers that outlive the session.
            drop(frontend.worker.take());
        }
    }
}

/// Where a background seal deposits its [`DayReport`] — shared by the
/// [`SealHandle`] and the seal thread.
#[derive(Debug)]
struct SealSlot {
    state: Mutex<SealState>,
    done: Condvar,
}

#[derive(Debug)]
enum SealState {
    Running,
    // Boxed: a DayReport is ~300 bytes and the slot spends its life in
    // the other two variants.
    Done(Box<Option<DayReport>>),
    Panicked,
}

impl SealSlot {
    fn new() -> Arc<SealSlot> {
        Arc::new(SealSlot {
            state: Mutex::new(SealState::Running),
            done: Condvar::new(),
        })
    }

    fn finish(&self, state: SealState) {
        *self.state.lock().expect("seal slot lock") = state;
        self.done.notify_all();
    }

    fn wait(&self) -> Option<DayReport> {
        let mut state = self.state.lock().expect("seal slot lock");
        loop {
            match &mut *state {
                SealState::Running => state = self.done.wait(state).expect("seal slot lock"),
                SealState::Done(report) => return report.take(),
                SealState::Panicked => panic!("background seal panicked"),
            }
        }
    }

    fn is_done(&self) -> bool {
        !matches!(
            *self.state.lock().expect("seal slot lock"),
            SealState::Running
        )
    }
}

/// Marks the slot `Panicked` if the seal thread unwinds before
/// completing, so a waiting [`SealHandle`] fails fast instead of hanging.
struct SealGuard {
    slot: Arc<SealSlot>,
    completed: bool,
}

impl SealGuard {
    fn complete(mut self, report: DayReport) {
        self.completed = true;
        self.slot.finish(SealState::Done(Box::new(Some(report))));
    }
}

impl Drop for SealGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.slot.finish(SealState::Panicked);
        }
    }
}

/// Handle to an in-flight background seal, returned by
/// [`DaySession::seal_background`].
///
/// [`SealHandle::wait`] blocks until the seal has published and yields
/// the day's report. Dropping the handle does *not* cancel the seal — the
/// day still publishes; the service joins the thread at its next
/// compiler-state access.
#[derive(Debug)]
pub struct SealHandle {
    slot: Arc<SealSlot>,
}

impl SealHandle {
    /// Wait for the background seal to publish and return its report.
    ///
    /// # Panics
    ///
    /// Panics if the seal thread panicked.
    #[must_use = "the day report is the output of the whole session"]
    pub fn wait(self) -> DayReport {
        self.slot.wait().expect("seal report already taken")
    }

    /// True once the seal has published (or failed) — `wait` will not
    /// block.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }
}

/// One scan's full answer: what matched, which signature, and which
/// publication epoch answered — everything the `kizzle-serve` wire
/// protocol ships per request, read from one consistent set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanVerdict {
    /// Publication epoch of the set that produced this verdict.
    pub epoch: u64,
    /// Index of the first matching signature in the set, if any.
    pub index: Option<u32>,
    /// The detected kit family, if the matching signature's label names
    /// a known one.
    pub family: Option<KitFamily>,
}

/// A cheap, cloneable, `Send + Sync` read handle over a published
/// signature set — issued by [`KizzleService::matcher`] over the
/// service's in-process [`EpochSource`], or built with [`Matcher::over`]
/// on any other [`SignatureSource`] (a
/// [`ChainFollower`](crate::source::ChainFollower) tailing another
/// process's snapshot chain, say).
///
/// Scanning is lock-free in the steady state: each scan is one atomic
/// epoch load plus an uncontended per-handle mutex around the cached
/// `Arc`. When a publication happens, the next scan on each handle
/// notices the epoch moved and refreshes its cache under the source's
/// read lock — held by the writer only for the duration of a pointer
/// swap. A scan therefore always runs against one complete, immutable
/// set: the previous epoch's until publication, the new one after, never
/// a torn mixture.
///
/// Clone one handle per worker thread; clones share the publication point
/// but each carries its own cache, so workers never contend with each
/// other.
#[derive(Debug)]
pub struct Matcher<S: SignatureSource = EpochSource> {
    source: Arc<S>,
    cached: Mutex<(u64, Arc<SignatureSet>)>,
}

impl<S: SignatureSource> Clone for Matcher<S> {
    fn clone(&self) -> Self {
        Matcher::over(Arc::clone(&self.source))
    }
}

impl<S: SignatureSource> Matcher<S> {
    /// A read handle over any [`SignatureSource`] — the constructor the
    /// serving fleet uses to put one matcher per worker thread over a
    /// shared chain follower.
    #[must_use]
    pub fn over(source: Arc<S>) -> Self {
        let cached = source.current();
        Matcher {
            source,
            cached: Mutex::new(cached),
        }
    }

    /// The current published `(epoch, set)` pair, refreshing the handle's
    /// cache if the epoch hint says a publication happened since the last
    /// call. One cache lock per call; the pair is always consistent
    /// because it is read as a unit from the source's slot.
    fn current_pair(&self) -> (u64, Arc<SignatureSet>) {
        let hint = self.source.epoch_hint();
        let mut cached = self.cached.lock().expect("matcher cache lock");
        if cached.0 != hint {
            *cached = self.source.current();
        }
        (cached.0, Arc::clone(&cached.1))
    }

    /// Scan an already tokenized sample against the published signatures.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<KitFamily> {
        self.current_pair()
            .1
            .scan_stream(stream)
            .and_then(|hit| family_from_label(&hit.label))
    }

    /// Scan a raw document against the published signatures, tokenizing
    /// with the same prefix cap the compiler used.
    #[must_use]
    pub fn scan(&self, document: &str) -> Option<KitFamily> {
        self.scan_stream(&kizzle_js::tokenize_document_capped(
            document,
            self.source.token_cap(),
        ))
    }

    /// Scan an already tokenized sample, reporting the matching signature
    /// index and the answering epoch alongside the family — the form the
    /// `kizzle-serve` wire protocol ships.
    #[must_use]
    pub fn scan_stream_verdict(&self, stream: &TokenStream) -> ScanVerdict {
        let (epoch, set) = self.current_pair();
        let index = set.scan_stream_index(stream);
        let family = index
            .and_then(|i| set.get(i))
            .and_then(|hit| family_from_label(&hit.label));
        ScanVerdict {
            epoch,
            index: index.map(|i| u32::try_from(i).expect("set indices fit u32")),
            family,
        }
    }

    /// Scan a raw document, reporting signature index and epoch alongside
    /// the family. Tokenizes with the source's cap, like
    /// [`Matcher::scan`].
    #[must_use]
    pub fn scan_verdict(&self, document: &str) -> ScanVerdict {
        self.scan_stream_verdict(&kizzle_js::tokenize_document_capped(
            document,
            self.source.token_cap(),
        ))
    }

    /// A consistent snapshot of the published set — stays valid (and
    /// unchanged) however many publications happen after.
    #[must_use]
    pub fn signatures(&self) -> Arc<SignatureSet> {
        self.current_pair().1
    }

    /// The publication epoch of the set this handle currently scans with
    /// (0 until the first publication). Monotone; mostly useful in tests
    /// and metrics.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.current_pair().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{GraywareStream, StreamConfig};

    fn test_service() -> KizzleService {
        let config = KizzleConfig::fast();
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        KizzleService::new(config, reference).expect("fast config is valid")
    }

    fn test_day(date: SimDate, seed: u64) -> Vec<Sample> {
        let config = StreamConfig {
            samples_per_day: 48,
            malicious_fraction: 0.5,
            family_weights: vec![
                (KitFamily::Angler, 0.4),
                (KitFamily::Nuclear, 0.3),
                (KitFamily::SweetOrange, 0.3),
            ],
            seed,
        };
        GraywareStream::new(config).generate_day(date)
    }

    #[test]
    fn mini_batched_session_matches_single_shot() {
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);

        let mut single = test_service();
        let want = single.process_day(date, &day).expect("day processes");

        let mut batched = test_service();
        let mut session = batched.begin_day(date).expect("day opens");
        for chunk in day.chunks(7) {
            session.ingest(chunk);
        }
        assert_eq!(session.ingested(), day.len());
        let got = session.seal();

        let normalize = |mut report: DayReport| {
            report.clustering_stats = Default::default();
            report.pipeline = Default::default();
            report
        };
        assert_eq!(normalize(want), normalize(got));
        assert_eq!(&*single.signatures(), &*batched.signatures());
        assert_eq!(single.engine().len(), batched.engine().len());
    }

    #[test]
    fn pipelined_session_matches_single_shot() {
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 11);

        let mut single = test_service();
        let want = single.process_day(date, &day).expect("day processes");

        let mut piped = test_service();
        let mut session = piped.begin_day(date).expect("day opens");
        // Tiny channel bound to force producer stalls; a single producer
        // keeps the batch order (and so the day sequence) deterministic.
        let producer = session.pipeline(2);
        for chunk in day.chunks(5) {
            assert!(producer.send(chunk));
        }
        drop(producer);
        let got = session.seal();

        assert!(got.pipeline.submitted_batches > 0);
        assert_eq!(got.pipeline.submitted_batches, got.pipeline.applied_batches);
        let normalize = |mut report: DayReport| {
            report.clustering_stats = Default::default();
            report.pipeline = Default::default();
            report
        };
        assert_eq!(normalize(want), normalize(got));
        assert_eq!(&*single.signatures(), &*piped.signatures());
        assert_eq!(single.engine().len(), piped.engine().len());
    }

    #[test]
    fn pipeline_auto_feeds_backpressure_into_the_next_day() {
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        let mut service = test_service();
        assert_eq!(service.auto_pipeline_bound(), DEFAULT_PIPELINE_BOUND);

        let day = test_day(d1, 3);
        let mut session = service.begin_day(d1).expect("day opens");
        // Bound 1, and the compiler lock held so the worker cannot drain:
        // the first batch blocks in apply, the second fills the channel,
        // the third *must* stall — deterministically, not by racing.
        let producer = session.pipeline(1);
        {
            let guard = session.state.core.compiler.lock().expect("compiler lock");
            let chunks: Vec<Vec<Sample>> = day.chunks(12).map(<[Sample]>::to_vec).collect();
            assert!(chunks.len() >= 3, "need enough batches to force a stall");
            let stalled = producer.clone();
            let sender = std::thread::spawn(move || {
                for chunk in chunks {
                    assert!(stalled.send_owned(chunk));
                }
            });
            while session.state.stalls.load(Ordering::Relaxed) == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(guard);
            sender.join().expect("sender thread");
        }
        drop(producer);
        let report = session.seal();
        assert!(report.pipeline.producer_stalls > 0);
        let suggested = report
            .pipeline
            .suggested_bound()
            .expect("a stalled day suggests a wider bound");
        assert_eq!(service.auto_pipeline_bound() as u64, suggested);

        // The next day's auto frontend opens at the suggested bound, and
        // a stall-free day leaves the learned bound in place.
        let day2 = test_day(d2, 4);
        let mut next = service.begin_day(d2).expect("day opens");
        let producer = next.pipeline_auto();
        for chunk in day2.chunks(12) {
            assert!(producer.send(chunk));
        }
        drop(producer);
        let report2 = next.seal();
        assert_eq!(report2.samples, day2.len());
        if report2.pipeline.producer_stalls == 0 {
            assert_eq!(service.auto_pipeline_bound() as u64, suggested);
        }
    }

    #[test]
    fn background_seal_matches_inline_seal_and_overlaps_next_day() {
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        let day1 = test_day(d1, 21);
        let day2 = test_day(d2, 22);

        let mut serial = test_service();
        let want1 = serial.process_day(d1, &day1).expect("day 1");
        let want2 = serial.process_day(d2, &day2).expect("day 2");

        let mut overlapped = test_service();
        let mut session = overlapped.begin_day(d1).expect("day opens");
        session.ingest(&day1);
        let handle = overlapped_seal(session);
        // Day d+1 begins and ingests while day d's seal is in flight.
        let mut next = overlapped.begin_day(d2).expect("next day opens");
        next.ingest(&day2);
        let got1 = handle.wait();
        let got2 = next.seal();

        let normalize = |mut report: DayReport| {
            report.clustering_stats = Default::default();
            report.pipeline = Default::default();
            report
        };
        assert_eq!(normalize(want1), normalize(got1));
        assert_eq!(normalize(want2), normalize(got2));
        assert_eq!(&*serial.signatures(), &*overlapped.signatures());
        assert_eq!(serial.engine().len(), overlapped.engine().len());
    }

    /// Seal in the background (a thin wrapper so the borrow of the service
    /// ends before `begin_day(d+1)`).
    fn overlapped_seal(session: DaySession<'_>) -> SealHandle {
        session.seal_background()
    }

    #[test]
    fn producer_sends_after_seal_are_refused() {
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 31);
        let mut service = test_service();
        let mut session = service.begin_day(date).expect("day opens");
        let producer = session.pipeline(4);
        assert!(producer.send(&day[..8]));
        let report = session.seal();
        assert_eq!(report.samples, 8);
        // The seal is the cutoff: the channel is gone, sends are refused.
        assert!(!producer.send(&day[8..]));
        assert!(!producer.send_owned(day[8..].to_vec()));
    }

    #[test]
    fn dropping_a_session_with_a_full_channel_unblocks_producers() {
        let date = SimDate::new(2014, 8, 5);
        let day = Arc::<[Sample]>::from(test_day(date, 41));
        let mut service = test_service();
        let live_before = service.engine().len();
        let matcher = service.matcher();
        {
            let mut session = service.begin_day(date).expect("day opens");
            let producer = session.pipeline(1);
            // Flood the bound-1 channel from another thread so at least one
            // send blocks on a full channel, then drop the session.
            let flooder = {
                let producer = producer.clone();
                let day = Arc::clone(&day);
                std::thread::spawn(move || {
                    let mut accepted = 0usize;
                    for chunk_start in (0..day.len()).step_by(4) {
                        let end = (chunk_start + 4).min(day.len());
                        if producer.send(&day[chunk_start..end]) {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            };
            // Give the flooder a moment to fill the channel, then abandon.
            while session.state.pipeline_stats().submitted_batches < 2 {
                std::thread::yield_now();
            }
            drop(session);
            // The key assertion: the producer thread terminates rather than
            // deadlocking on the full channel.
            flooder.join().expect("producer thread finishes");
        }
        // Abandon semantics: nothing published; whatever batches were
        // applied sit in the warm store until retention ages them out.
        assert_eq!(matcher.epoch(), 0);
        assert!(service.signatures().is_empty());
        let _ = live_before;
        // The day is still sealable from scratch.
        let report = service.process_day(date, &day).expect("day processes");
        assert!(report.clusters > 0);
    }

    #[test]
    fn dropping_a_session_while_previous_seal_is_in_flight_is_clean() {
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        let day1 = test_day(d1, 51);
        let day2 = test_day(d2, 52);
        let mut service = test_service();
        let mut session = service.begin_day(d1).expect("day opens");
        session.ingest(&day1);
        let handle = session.seal_background();
        {
            let mut next = service.begin_day(d2).expect("next day opens");
            let producer = next.pipeline(2);
            assert!(producer.send(&day2[..6]));
            // dropped with the previous day's seal still (possibly) running
        }
        let report = handle.wait();
        assert!(report.clusters > 0);
        // Day d1 published despite d2's abandonment; d2 can re-run.
        assert_eq!(service.last_processed_day(), Some(d1));
        let report2 = service.process_day(d2, &day2).expect("day 2 re-runs");
        assert!(report2.clusters > 0);
    }

    #[test]
    fn matcher_picks_up_the_seal_atomically() {
        let mut service = test_service();
        let matcher = service.matcher();
        assert_eq!(matcher.epoch(), 0);
        assert!(matcher.signatures().is_empty());

        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 4);
        // A handle cloned before the seal...
        let clone = matcher.clone();
        let report = service.process_day(date, &day).expect("day processes");
        assert!(!report.new_signatures.is_empty());
        // ...sees the published set afterwards without being re-issued.
        assert_eq!(matcher.epoch(), 1);
        assert_eq!(clone.epoch(), 1);
        assert_eq!(matcher.signatures().len(), (*service.signatures()).len());
        let detected = day.iter().filter(|s| clone.scan(&s.html).is_some()).count();
        assert!(detected > 0);
    }

    #[test]
    fn out_of_order_day_is_refused() {
        let mut service = test_service();
        let d2 = SimDate::new(2014, 8, 6);
        service
            .process_day(d2, &test_day(d2, 3))
            .expect("day processes");
        let err = service.begin_day(SimDate::new(2014, 8, 5)).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        // The same day again is fine (cron re-run after a crash).
        assert!(service.begin_day(d2).is_ok());
    }

    #[test]
    fn far_future_day_is_refused_not_absorbed() {
        let mut service = test_service();
        let d1 = SimDate::new(2014, 8, 6);
        service.process_day(d1, &test_day(d1, 3)).expect("day 1");
        let live_before = service.engine().len();
        assert!(live_before > 0);

        // A mis-parsed date years ahead: the old behavior silently retired
        // the whole retained corpus; now it is a typed ingest error and
        // the warm state is untouched.
        let bogus = SimDate::new(2034, 8, 6);
        let err = service.begin_day(bogus).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        assert!(err.to_string().contains("max_day_advance"), "err: {err}");
        let err = service.process_day(bogus, &test_day(bogus, 4)).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        assert_eq!(service.engine().len(), live_before);
        assert_eq!(service.last_processed_day(), Some(d1));

        // A jump inside the default 90-day horizon still works (gap days
        // are normal: weekends, holidays, pipeline outages).
        let d2 = SimDate::new(2014, 9, 20);
        assert!(service.process_day(d2, &test_day(d2, 5)).is_ok());
    }

    #[test]
    fn max_day_advance_is_configurable() {
        let config = KizzleConfig::builder()
            .max_day_advance(5)
            .build()
            .expect("valid config");
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        let mut service = KizzleService::new(config, reference).expect("service");
        let d1 = SimDate::new(2014, 8, 6);
        service.process_day(d1, &test_day(d1, 3)).expect("day 1");
        // 6 days ahead exceeds the tightened horizon; 5 is the boundary.
        assert!(service.begin_day(SimDate::new(2014, 8, 12)).is_err());
        assert!(service.begin_day(SimDate::new(2014, 8, 11)).is_ok());
        // The very first day has no baseline, so any date opens.
        let config = KizzleConfig::builder()
            .max_day_advance(1)
            .build()
            .expect("valid config");
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        let mut fresh = KizzleService::new(config, reference).expect("service");
        assert!(fresh.begin_day(SimDate::new(2034, 1, 1)).is_ok());
    }

    #[test]
    fn publish_shares_the_set_instead_of_deep_cloning() {
        let mut service = test_service();
        let date = SimDate::new(2014, 8, 5);
        service
            .process_day(date, &test_day(date, 3))
            .expect("day processes");
        let matcher = service.matcher();
        // The published epoch and the compiler hold the *same* allocation
        // (publication is an Arc clone), and it is sealed ready-to-scan.
        let published = matcher.signatures();
        assert!(std::ptr::eq(
            Arc::as_ptr(&published),
            &*service.signatures() as *const SignatureSet
        ));
        assert!(published.is_sealed(), "publish must seal the pipeline");
        // The next day's appends copy-on-write: the published snapshot
        // keeps its set while the compiler's grows independently.
        let d2 = SimDate::new(2014, 8, 6);
        let before = published.len();
        service.process_day(d2, &test_day(d2, 9)).expect("day 2");
        assert_eq!(published.len(), before, "published snapshot is immutable");
    }

    #[test]
    fn session_dropped_before_first_ingest_is_a_no_op() {
        let mut service = test_service();
        let d1 = SimDate::new(2014, 8, 6);
        service
            .process_day(d1, &test_day(d1, 3))
            .expect("day processes");
        let live_before = service.engine().len();

        // A mistaken far-future open, dropped before any ingest: the day
        // cursor has not advanced and the retention sweep has not run.
        // Empty batches — a frontend flushing on a timer with no traffic —
        // must not open the day either.
        let far = SimDate::new(2014, 9, 20);
        {
            let mut session = service.begin_day(far).expect("monotone date opens");
            session.ingest(&[]);
            session.ingest_tokenized(&[], &[]);
            assert_eq!(session.ingested(), 0);
        }
        assert_eq!(service.last_processed_day(), Some(d1));
        assert_eq!(service.engine().len(), live_before, "retention swept early");

        // The next legitimate day is therefore still accepted.
        let d2 = SimDate::new(2014, 8, 7);
        let report = service.process_day(d2, &test_day(d2, 4)).expect("day 2");
        assert!(report.clusters > 0);
    }

    #[test]
    fn abandoned_session_publishes_nothing() {
        let mut service = test_service();
        let matcher = service.matcher();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);
        {
            let mut session = service.begin_day(date).expect("day opens");
            session.ingest(&day);
            // dropped without seal
        }
        assert_eq!(matcher.epoch(), 0);
        assert!(service.signatures().is_empty());
        // The abandoned samples sit in the warm store until retention ages
        // them out; re-running the day dedups onto them and seals normally.
        let report = service.process_day(date, &day).expect("day processes");
        assert!(report.clusters > 0);
        assert_eq!(matcher.epoch(), 1);
    }

    #[test]
    fn re_sealing_a_day_replaces_its_window_view() {
        // The crash-recovery flow: the same date sealed twice (allowed by
        // the monotone check) must not double-count the day in the
        // retention-window clustering.
        let mut service = test_service();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);
        service.process_day(date, &day).expect("first seal");
        let (first, _) = service.cluster_window();
        service.process_day(date, &day).expect("re-run seal");
        let (second, _) = service.cluster_window();
        assert_eq!(first.sample_count, second.sample_count);
        assert_eq!(first.cluster_count(), second.cluster_count());
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut config = KizzleConfig::fast();
        config.retention_days = 0;
        let reference =
            ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::fast());
        let err = KizzleService::new(config, reference).unwrap_err();
        assert!(matches!(err, KizzleError::Config(_)), "err: {err}");
        assert!(err.to_string().contains("retention_days"));
    }
}
