//! The service façade: session-based streaming ingest on the compiler
//! side, lock-free cloneable read handles on the serving side.
//!
//! The paper's pipeline is explicitly two-sided — a slow compiler that
//! re-clusters daily and a fast matcher that scans live traffic — but the
//! pre-façade API was a single `KizzleCompiler` monolith: `process_day`
//! demanded the whole day up front, and `scan` was unusable while a day
//! compiled because both borrowed the same object. [`KizzleService`]
//! splits the two sides:
//!
//! * **Ingest** is a session: [`KizzleService::begin_day`] opens a
//!   [`DaySession`] that accepts mini-batches as they arrive
//!   ([`DaySession::ingest`] tokenizes, deduplicates and store-inserts
//!   eagerly, amortizing the day's front half across the arrival window)
//!   and [`DaySession::seal`] runs cluster → winnow-label → signature
//!   generation. Sealing is byte-identical to the old single-shot
//!   `process_day` over the same sample sequence — held to that by the
//!   property tests in `tests/service_properties.rs` — and
//!   [`KizzleCompiler::process_day`] survives as a thin wrapper over the
//!   same phases.
//! * **Serving** is a handle: [`KizzleService::matcher`] hands out cheap,
//!   cloneable, `Send + Sync` [`Matcher`]s over an epoch-swapped
//!   `Arc<SignatureSet>`. Scans keep running against the previous day's
//!   published set while a seal is in flight and pick up the new set
//!   atomically at publish — a scan observes the old set or the new set,
//!   never a torn mixture. The steady-state read path is lock-free: one
//!   atomic epoch load plus an uncontended per-handle cache; a handle
//!   touches the shared `RwLock` only on its *first* scan after a publish
//!   (once a day in production, against a writer that holds it for a
//!   pointer swap).
//!
//! ```
//! use kizzle::prelude::*;
//! use kizzle_corpus::{GraywareStream, SimDate, StreamConfig};
//!
//! let date = SimDate::new(2014, 8, 5);
//! let config = KizzleConfig::fast();
//! let reference = ReferenceCorpus::seeded_from_models(date, &config);
//! let mut service = KizzleService::new(config, reference)?;
//!
//! // Serving side: handles scan concurrently with compilation.
//! let matcher = service.matcher();
//!
//! // Ingest side: the day arrives in mini-batches.
//! let day = GraywareStream::new(StreamConfig::small(7)).generate_day(date);
//! let mut session = service.begin_day(date)?;
//! for batch in day.chunks(16) {
//!     session.ingest(batch);
//! }
//! let report = session.seal();
//! assert!(report.clusters > 0);
//!
//! // The seal published atomically: the pre-existing handle now detects
//! // today's kits.
//! let detected = day.iter().filter(|s| matcher.scan(&s.html).is_some()).count();
//! assert!(detected > 0);
//! # Ok::<(), KizzleError>(())
//! ```

use crate::config::KizzleConfig;
use crate::error::KizzleError;
use crate::pipeline::{family_from_label, DayReport, KizzleCompiler};
use crate::reference::ReferenceCorpus;
use crate::snapshot::ResumeReport;
use kizzle_cluster::{Clustering, CorpusEngine, DistributedStats, SampleId};
use kizzle_corpus::{KitFamily, Sample, SimDate};
use kizzle_js::TokenStream;
use kizzle_signature::SignatureSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The epoch-swapped publication point shared by a service and every
/// [`Matcher`] handle it has issued.
///
/// The `(epoch, set)` pair lives under one `RwLock`, so a reader never
/// observes an epoch that disagrees with the set it tags — a writer bumps
/// both inside the write lock (held only for a counter increment and a
/// pointer swap). The `epoch_hint` atomic is exactly that, a *hint*: the
/// lock-free fast path compares it against a handle's cached epoch and
/// skips the lock entirely when nothing was published. A hint read that
/// races a publish at worst serves the previous — complete and
/// consistent — set for one more scan.
#[derive(Debug)]
struct Published {
    epoch_hint: AtomicU64,
    set: RwLock<(u64, Arc<SignatureSet>)>,
    /// Token cap the signatures were compiled under; scans truncate
    /// documents the same way the compiler did.
    token_cap: usize,
}

impl Published {
    fn new(set: Arc<SignatureSet>, token_cap: usize) -> Self {
        Published {
            epoch_hint: AtomicU64::new(0),
            set: RwLock::new((0, set)),
            token_cap,
        }
    }

    /// Publish a shared handle to the compiler's set. Publication is a
    /// reference-count bump and a pointer swap — the once-daily deep clone
    /// of the whole set is gone; the compiler's next append copies the
    /// members via `Arc::make_mut` instead (and only while an epoch still
    /// shares them).
    fn publish(&self, set: Arc<SignatureSet>) {
        let mut slot = self.set.write().expect("signature publication lock");
        slot.0 += 1;
        slot.1 = set;
        self.epoch_hint.store(slot.0, Ordering::Release);
    }

    fn load(&self) -> (u64, Arc<SignatureSet>) {
        let slot = self.set.read().expect("signature publication lock");
        (slot.0, Arc::clone(&slot.1))
    }
}

/// The two-sided Kizzle service: session-based streaming ingest over the
/// warm [`KizzleCompiler`], and [`Matcher`] read handles over the
/// epoch-swapped published signature set. See the [module docs](self) for
/// the full picture and a usage example.
#[derive(Debug)]
pub struct KizzleService {
    compiler: KizzleCompiler,
    shared: Arc<Published>,
}

impl KizzleService {
    /// Create a service from a validated configuration and a seeded
    /// reference corpus. Returns [`KizzleError::Config`] instead of
    /// panicking when the configuration violates an invariant.
    pub fn new(config: KizzleConfig, reference: ReferenceCorpus) -> Result<Self, KizzleError> {
        let config = config.validate()?;
        Ok(KizzleService::from_compiler(KizzleCompiler::new(
            config, reference,
        )))
    }

    /// Wrap an existing compiler (e.g. one restored by
    /// [`KizzleCompiler::load_state`]), publishing its current signature
    /// set as epoch 0.
    #[must_use]
    pub fn from_compiler(compiler: KizzleCompiler) -> Self {
        let set = compiler.signatures_shared();
        // Seal at publish time: scans on fresh Matcher handles must never
        // pay the pipeline build (a resumed set usually arrives pre-sealed
        // from the snapshot's scan-pipeline section).
        set.seal();
        let shared = Arc::new(Published::new(set, compiler.config().token_cap));
        KizzleService { compiler, shared }
    }

    /// Load persisted service state from `state_dir`, or start fresh when
    /// no usable snapshot exists (`reference` seeds the fresh service; it
    /// is a closure because seeding winnow-fingerprints every kit model —
    /// a cost the warm path must not pay). The cron-job entry point; the
    /// report says which resume rung was reached.
    pub fn open(
        state_dir: &Path,
        config: KizzleConfig,
        reference: impl FnOnce() -> ReferenceCorpus,
    ) -> Result<(Self, ResumeReport), KizzleError> {
        let config = config.validate()?;
        let (compiler, report) = KizzleCompiler::load_or_new(state_dir, config, reference);
        Ok((KizzleService::from_compiler(compiler), report))
    }

    /// Load persisted service state, refusing to start without it. Unlike
    /// [`KizzleService::open`] this propagates every load failure —
    /// [`KizzleError::ConfigFingerprint`] when the snapshot was written
    /// under a different configuration, [`KizzleError::Snapshot`] for
    /// damage.
    pub fn load(
        state_dir: &Path,
        config: KizzleConfig,
    ) -> Result<(Self, ResumeReport), KizzleError> {
        let (compiler, report) = KizzleCompiler::load_state(state_dir, config)?;
        Ok((KizzleService::from_compiler(compiler), report))
    }

    /// Persist the complete service state into `state_dir` as the next
    /// link of the snapshot chain (see [`KizzleCompiler::save_state`]).
    pub fn save(&self, state_dir: &Path) -> Result<(), KizzleError> {
        self.compiler.save_state(state_dir)
    }

    /// Like [`KizzleService::save`] with an explicit chain-compaction
    /// cadence (`max_deltas == 0` writes a full snapshot every time).
    pub fn save_compacting(&self, state_dir: &Path, max_deltas: usize) -> Result<(), KizzleError> {
        self.compiler.save_state_compacting(state_dir, max_deltas)
    }

    /// Open a streaming ingest session for `date`. Mini-batches go in via
    /// [`DaySession::ingest`]; [`DaySession::seal`] compiles and publishes.
    ///
    /// Returns [`KizzleError::Ingest`] when `date` precedes the last
    /// opened day — the retention window and day views are keyed on a
    /// monotone day counter, so replaying the past would silently corrupt
    /// the warm state. (Re-running the *same* date is allowed: a crashed
    /// cron job may legitimately re-run a day.)
    ///
    /// `begin_day` itself is free of side effects: the day cursor only
    /// advances — and samples aged out of the retention window are only
    /// retired — on the session's **first non-empty ingest** (or at seal,
    /// for an empty day). A session dropped before ingesting anything therefore
    /// leaves the warm state untouched; once a batch has been ingested the
    /// day is committed (its stamped samples are live in the store) and
    /// abandoning the session no longer rolls that back.
    pub fn begin_day(&mut self, date: SimDate) -> Result<DaySession<'_>, KizzleError> {
        self.check_monotone(date)?;
        Ok(DaySession {
            service: self,
            date,
            stamp: None,
            samples: Vec::new(),
            streams: Vec::new(),
            day_ids: Vec::new(),
        })
    }

    fn check_monotone(&self, date: SimDate) -> Result<(), KizzleError> {
        if let Some(last) = self.compiler.last_processed_day() {
            if date < last {
                return Err(KizzleError::Ingest(format!(
                    "day {date} precedes the last opened day {last}"
                )));
            }
            // Guard the other direction too: a mis-parsed far-future date
            // would retire the entire retained corpus in one sweep (every
            // live sample ages out against the bogus day). Refuse jumps
            // beyond the configured horizon as a typed ingest error the
            // caller can fix, instead of silently going cold.
            let advance = date.absolute_day() - last.absolute_day();
            let max_advance = i64::try_from(self.config().max_day_advance).unwrap_or(i64::MAX);
            if advance > max_advance {
                return Err(KizzleError::Ingest(format!(
                    "day {date} is {advance} days past the last opened day {last} \
                     (max_day_advance is {max_advance}); refusing to retire the corpus"
                )));
            }
        }
        Ok(())
    }

    /// Single-shot convenience: process the whole day through the same
    /// phases the session drives (no buffering — the samples are borrowed
    /// straight through the compiler) and publish the grown set.
    /// Byte-identical to mini-batched ingest of the same sequence.
    pub fn process_day(
        &mut self,
        date: SimDate,
        samples: &[Sample],
    ) -> Result<DayReport, KizzleError> {
        self.check_monotone(date)?;
        let report = self.compiler.process_day(date, samples);
        self.publish_current();
        Ok(report)
    }

    /// Publish the compiler's current set: seal its scan pipeline (so no
    /// scan ever pays the build) and swap the shared handle in.
    fn publish_current(&self) {
        let set = self.compiler.signatures_shared();
        set.seal();
        self.shared.publish(set);
    }

    /// Like [`KizzleService::process_day`] with already tokenized streams
    /// (the evaluation harness tokenizes once and shares the streams
    /// between Kizzle and its metrics). `samples` and `streams` must be
    /// parallel.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn process_day_tokenized(
        &mut self,
        date: SimDate,
        samples: &[Sample],
        streams: &[TokenStream],
    ) -> Result<DayReport, KizzleError> {
        self.check_monotone(date)?;
        let report = self.compiler.process_day_tokenized(date, samples, streams);
        self.publish_current();
        Ok(report)
    }

    /// A cheap, cloneable, `Send + Sync` read handle over the published
    /// signature set. Handles stay valid for the life of the process —
    /// they keep scanning the previous set lock-free while a seal is in
    /// flight and observe each publication atomically.
    #[must_use]
    pub fn matcher(&self) -> Matcher {
        let cached = self.shared.load();
        Matcher {
            shared: Arc::clone(&self.shared),
            cached: Mutex::new(cached),
        }
    }

    /// The signatures the service has published so far (the compiler-side
    /// view; [`Matcher::signatures`] is the serving-side snapshot).
    #[must_use]
    pub fn signatures(&self) -> &SignatureSet {
        self.compiler.signatures()
    }

    /// The reference corpus (grows as labeled clusters are absorbed).
    #[must_use]
    pub fn reference(&self) -> &ReferenceCorpus {
        self.compiler.reference()
    }

    /// The warm corpus engine (live store size, index state) — exposed for
    /// observability and tests.
    #[must_use]
    pub fn engine(&self) -> &CorpusEngine {
        self.compiler.engine()
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &KizzleConfig {
        self.compiler.config()
    }

    /// The last *opened* day, if any (advanced by a session's first ingest
    /// or a single-shot `process_day`, even when the session is later
    /// abandoned without sealing) — the date [`KizzleService::begin_day`]'s
    /// monotone check compares against. Survives snapshot save/load.
    #[must_use]
    pub fn last_processed_day(&self) -> Option<SimDate> {
        self.compiler.last_processed_day()
    }

    /// Cluster the entire retention window as one batch (the multi-day
    /// eval mode) — see [`KizzleCompiler::cluster_window`].
    pub fn cluster_window(&mut self) -> (Clustering, DistributedStats) {
        self.compiler.cluster_window()
    }

    /// Borrow the underlying compiler (escape hatch for evaluation
    /// harnesses that need pipeline internals the façade does not carry).
    #[must_use]
    pub fn compiler(&self) -> &KizzleCompiler {
        &self.compiler
    }

    /// Unwrap the service back into its compiler.
    #[must_use]
    pub fn into_compiler(self) -> KizzleCompiler {
        self.compiler
    }
}

/// A streaming ingest session for one day, opened by
/// [`KizzleService::begin_day`].
///
/// Mini-batches are tokenized, deduplicated and store-inserted **eagerly**
/// on [`DaySession::ingest`] — by the time the day's tail arrives, its
/// front half has already been indexed, so [`DaySession::seal`] pays only
/// clustering, labeling and signature generation. The first *non-empty*
/// ingest also *opens* the day (advances the day cursor, retires samples
/// that aged out of the retention window); dropping a session before that
/// first ingest is a complete no-op. Dropping it afterwards abandons the day:
/// already-ingested samples stay in the warm store (where retention will
/// age them out) but no clustering runs, no day view is recorded and
/// nothing is published.
///
/// The session buffers its own copy of every ingested sample and token
/// stream until seal — cluster member indices are day-positional, and
/// labeling/signature generation need the originals — so a session's
/// memory footprint is one day of traffic on top of the warm store. An
/// owned/`Arc`-shared ingest variant that drops the copy is a noted
/// ROADMAP follow-up alongside the async frontend.
#[derive(Debug)]
pub struct DaySession<'a> {
    service: &'a mut KizzleService,
    date: SimDate,
    /// Set when the day has been opened (first ingest, or seal of an
    /// empty day) — the point after which the day is committed.
    stamp: Option<u64>,
    samples: Vec<Sample>,
    streams: Vec<TokenStream>,
    day_ids: Vec<SampleId>,
}

impl DaySession<'_> {
    /// The day this session ingests.
    #[must_use]
    pub fn date(&self) -> SimDate {
        self.date
    }

    /// Number of samples ingested so far.
    #[must_use]
    pub fn ingested(&self) -> usize {
        self.samples.len()
    }

    /// Open the day on first use: advance the day cursor and run the
    /// retention sweep, exactly as single-shot `process_day` does before
    /// its adds.
    fn open_stamp(&mut self) -> u64 {
        match self.stamp {
            Some(stamp) => stamp,
            None => {
                let stamp = self.service.compiler.open_day(self.date);
                self.stamp = Some(stamp);
                stamp
            }
        }
    }

    /// Ingest a mini-batch: tokenize each sample (capped at the configured
    /// prefix), deposit the class-strings into the warm engine (duplicate
    /// content — intra-day or carried over from recent days — dedups onto
    /// the live entry), and index fresh content immediately.
    pub fn ingest(&mut self, samples: &[Sample]) {
        let streams: Vec<TokenStream> = samples
            .iter()
            .map(|s| self.service.compiler.tokenize_capped(&s.html))
            .collect();
        self.ingest_tokenized(samples, &streams);
    }

    /// Like [`DaySession::ingest`] with already tokenized streams (the
    /// evaluation harness tokenizes once and shares the streams between
    /// Kizzle and its metrics). `samples` and `streams` must be parallel.
    ///
    /// An empty batch is a no-op: it does **not** open the day, so a
    /// frontend that flushes on a timer and sends empty ticks never
    /// commits a day (or runs its retention sweep) ahead of real traffic.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn ingest_tokenized(&mut self, samples: &[Sample], streams: &[TokenStream]) {
        assert_eq!(
            samples.len(),
            streams.len(),
            "samples and streams must be parallel"
        );
        if samples.is_empty() {
            return;
        }
        let stamp = self.open_stamp();
        let ids = self.service.compiler.ingest_streams(stamp, streams);
        self.samples.extend_from_slice(samples);
        self.streams.extend_from_slice(streams);
        self.day_ids.extend(ids);
    }

    /// Seal the day: cluster the accumulated samples, label cluster
    /// prototypes against the reference corpus, generate signatures for
    /// malicious clusters, and **publish** the grown signature set to
    /// every [`Matcher`] handle atomically. Byte-identical to single-shot
    /// [`KizzleCompiler::process_day`] over the same sample sequence.
    ///
    /// Sealing is an explicit commit even when nothing was ingested: a
    /// quiet cron day still advances the day cursor and runs the retention
    /// sweep, exactly like `process_day(date, &[])`. Only *implicit*
    /// empty ticks ([`DaySession::ingest`] of an empty batch) are no-ops —
    /// don't call `seal` on a session you meant to abandon.
    #[must_use = "the day report is the output of the whole session"]
    pub fn seal(mut self) -> DayReport {
        let stamp = self.open_stamp();
        let DaySession {
            service,
            date,
            samples,
            streams,
            day_ids,
            ..
        } = self;
        let report = service
            .compiler
            .seal_day(date, stamp, &samples, &streams, day_ids);
        service.publish_current();
        report
    }
}

/// A cheap, cloneable, `Send + Sync` read handle over the service's
/// published signature set, issued by [`KizzleService::matcher`].
///
/// Scanning is lock-free in the steady state: each scan is one atomic
/// epoch load plus an uncontended per-handle mutex around the cached
/// `Arc`. When a seal publishes a new set, the next scan on each handle
/// notices the epoch moved and refreshes its cache under the shared read
/// lock — held by the writer only for the duration of a pointer swap. A
/// scan therefore always runs against one complete, immutable set: the
/// previous day's until publication, the new one after, never a torn
/// mixture.
///
/// Clone one handle per worker thread; clones share the publication point
/// but each carries its own cache, so workers never contend with each
/// other.
#[derive(Debug)]
pub struct Matcher {
    shared: Arc<Published>,
    cached: Mutex<(u64, Arc<SignatureSet>)>,
}

impl Clone for Matcher {
    fn clone(&self) -> Self {
        let cached = self.shared.load();
        Matcher {
            shared: Arc::clone(&self.shared),
            cached: Mutex::new(cached),
        }
    }
}

impl Matcher {
    /// The current published `(epoch, set)` pair, refreshing the handle's
    /// cache if the epoch hint says a publication happened since the last
    /// call. One cache lock per call; the pair is always consistent
    /// because it is read as a unit from the shared slot.
    fn current_pair(&self) -> (u64, Arc<SignatureSet>) {
        let hint = self.shared.epoch_hint.load(Ordering::Acquire);
        let mut cached = self.cached.lock().expect("matcher cache lock");
        if cached.0 != hint {
            *cached = self.shared.load();
        }
        (cached.0, Arc::clone(&cached.1))
    }

    /// Scan an already tokenized sample against the published signatures.
    #[must_use]
    pub fn scan_stream(&self, stream: &TokenStream) -> Option<KitFamily> {
        self.current_pair()
            .1
            .scan_stream(stream)
            .and_then(|hit| family_from_label(&hit.label))
    }

    /// Scan a raw document against the published signatures, tokenizing
    /// with the same prefix cap the compiler used.
    #[must_use]
    pub fn scan(&self, document: &str) -> Option<KitFamily> {
        self.scan_stream(&kizzle_js::tokenize_document_capped(
            document,
            self.shared.token_cap,
        ))
    }

    /// A consistent snapshot of the published set — stays valid (and
    /// unchanged) however many publications happen after.
    #[must_use]
    pub fn signatures(&self) -> Arc<SignatureSet> {
        self.current_pair().1
    }

    /// The publication epoch of the set this handle currently scans with
    /// (0 until the first seal). Monotone; mostly useful in tests and
    /// metrics.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.current_pair().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{GraywareStream, StreamConfig};

    fn test_service() -> KizzleService {
        let config = KizzleConfig::fast();
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        KizzleService::new(config, reference).expect("fast config is valid")
    }

    fn test_day(date: SimDate, seed: u64) -> Vec<Sample> {
        let config = StreamConfig {
            samples_per_day: 48,
            malicious_fraction: 0.5,
            family_weights: vec![
                (KitFamily::Angler, 0.4),
                (KitFamily::Nuclear, 0.3),
                (KitFamily::SweetOrange, 0.3),
            ],
            seed,
        };
        GraywareStream::new(config).generate_day(date)
    }

    #[test]
    fn mini_batched_session_matches_single_shot() {
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);

        let mut single = test_service();
        let want = single.process_day(date, &day).expect("day processes");

        let mut batched = test_service();
        let mut session = batched.begin_day(date).expect("day opens");
        for chunk in day.chunks(7) {
            session.ingest(chunk);
        }
        assert_eq!(session.ingested(), day.len());
        let got = session.seal();

        let normalize = |mut report: DayReport| {
            report.clustering_stats = Default::default();
            report
        };
        assert_eq!(normalize(want), normalize(got));
        assert_eq!(single.signatures(), batched.signatures());
        assert_eq!(single.engine().len(), batched.engine().len());
    }

    #[test]
    fn matcher_picks_up_the_seal_atomically() {
        let mut service = test_service();
        let matcher = service.matcher();
        assert_eq!(matcher.epoch(), 0);
        assert!(matcher.signatures().is_empty());

        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 4);
        // A handle cloned before the seal...
        let clone = matcher.clone();
        let report = service.process_day(date, &day).expect("day processes");
        assert!(!report.new_signatures.is_empty());
        // ...sees the published set afterwards without being re-issued.
        assert_eq!(matcher.epoch(), 1);
        assert_eq!(clone.epoch(), 1);
        assert_eq!(matcher.signatures().len(), service.signatures().len());
        let detected = day.iter().filter(|s| clone.scan(&s.html).is_some()).count();
        assert!(detected > 0);
    }

    #[test]
    fn out_of_order_day_is_refused() {
        let mut service = test_service();
        let d2 = SimDate::new(2014, 8, 6);
        service
            .process_day(d2, &test_day(d2, 3))
            .expect("day processes");
        let err = service.begin_day(SimDate::new(2014, 8, 5)).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        // The same day again is fine (cron re-run after a crash).
        assert!(service.begin_day(d2).is_ok());
    }

    #[test]
    fn far_future_day_is_refused_not_absorbed() {
        let mut service = test_service();
        let d1 = SimDate::new(2014, 8, 6);
        service.process_day(d1, &test_day(d1, 3)).expect("day 1");
        let live_before = service.engine().len();
        assert!(live_before > 0);

        // A mis-parsed date years ahead: the old behavior silently retired
        // the whole retained corpus; now it is a typed ingest error and
        // the warm state is untouched.
        let bogus = SimDate::new(2034, 8, 6);
        let err = service.begin_day(bogus).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        assert!(err.to_string().contains("max_day_advance"), "err: {err}");
        let err = service.process_day(bogus, &test_day(bogus, 4)).unwrap_err();
        assert!(matches!(err, KizzleError::Ingest(_)), "err: {err}");
        assert_eq!(service.engine().len(), live_before);
        assert_eq!(service.last_processed_day(), Some(d1));

        // A jump inside the default 90-day horizon still works (gap days
        // are normal: weekends, holidays, pipeline outages).
        let d2 = SimDate::new(2014, 9, 20);
        assert!(service.process_day(d2, &test_day(d2, 5)).is_ok());
    }

    #[test]
    fn max_day_advance_is_configurable() {
        let config = KizzleConfig::builder()
            .max_day_advance(5)
            .build()
            .expect("valid config");
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        let mut service = KizzleService::new(config, reference).expect("service");
        let d1 = SimDate::new(2014, 8, 6);
        service.process_day(d1, &test_day(d1, 3)).expect("day 1");
        // 6 days ahead exceeds the tightened horizon; 5 is the boundary.
        assert!(service.begin_day(SimDate::new(2014, 8, 12)).is_err());
        assert!(service.begin_day(SimDate::new(2014, 8, 11)).is_ok());
        // The very first day has no baseline, so any date opens.
        let config = KizzleConfig::builder()
            .max_day_advance(1)
            .build()
            .expect("valid config");
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &config);
        let mut fresh = KizzleService::new(config, reference).expect("service");
        assert!(fresh.begin_day(SimDate::new(2034, 1, 1)).is_ok());
    }

    #[test]
    fn publish_shares_the_set_instead_of_deep_cloning() {
        let mut service = test_service();
        let date = SimDate::new(2014, 8, 5);
        service
            .process_day(date, &test_day(date, 3))
            .expect("day processes");
        let matcher = service.matcher();
        // The published epoch and the compiler hold the *same* allocation
        // (publication is an Arc clone), and it is sealed ready-to-scan.
        let published = matcher.signatures();
        assert!(std::ptr::eq(
            Arc::as_ptr(&published),
            service.signatures() as *const SignatureSet
        ));
        assert!(published.is_sealed(), "publish must seal the pipeline");
        // The next day's appends copy-on-write: the published snapshot
        // keeps its set while the compiler's grows independently.
        let d2 = SimDate::new(2014, 8, 6);
        let before = published.len();
        service.process_day(d2, &test_day(d2, 9)).expect("day 2");
        assert_eq!(published.len(), before, "published snapshot is immutable");
    }

    #[test]
    fn session_dropped_before_first_ingest_is_a_no_op() {
        let mut service = test_service();
        let d1 = SimDate::new(2014, 8, 6);
        service
            .process_day(d1, &test_day(d1, 3))
            .expect("day processes");
        let live_before = service.engine().len();

        // A mistaken far-future open, dropped before any ingest: the day
        // cursor has not advanced and the retention sweep has not run.
        // Empty batches — a frontend flushing on a timer with no traffic —
        // must not open the day either.
        let far = SimDate::new(2014, 9, 20);
        {
            let mut session = service.begin_day(far).expect("monotone date opens");
            session.ingest(&[]);
            session.ingest_tokenized(&[], &[]);
            assert_eq!(session.ingested(), 0);
        }
        assert_eq!(service.last_processed_day(), Some(d1));
        assert_eq!(service.engine().len(), live_before, "retention swept early");

        // The next legitimate day is therefore still accepted.
        let d2 = SimDate::new(2014, 8, 7);
        let report = service.process_day(d2, &test_day(d2, 4)).expect("day 2");
        assert!(report.clusters > 0);
    }

    #[test]
    fn abandoned_session_publishes_nothing() {
        let mut service = test_service();
        let matcher = service.matcher();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);
        {
            let mut session = service.begin_day(date).expect("day opens");
            session.ingest(&day);
            // dropped without seal
        }
        assert_eq!(matcher.epoch(), 0);
        assert!(service.signatures().is_empty());
        // The abandoned samples sit in the warm store until retention ages
        // them out; re-running the day dedups onto them and seals normally.
        let report = service.process_day(date, &day).expect("day processes");
        assert!(report.clusters > 0);
        assert_eq!(matcher.epoch(), 1);
    }

    #[test]
    fn re_sealing_a_day_replaces_its_window_view() {
        // The crash-recovery flow: the same date sealed twice (allowed by
        // the monotone check) must not double-count the day in the
        // retention-window clustering.
        let mut service = test_service();
        let date = SimDate::new(2014, 8, 5);
        let day = test_day(date, 3);
        service.process_day(date, &day).expect("first seal");
        let (first, _) = service.cluster_window();
        service.process_day(date, &day).expect("re-run seal");
        let (second, _) = service.cluster_window();
        assert_eq!(first.sample_count, second.sample_count);
        assert_eq!(first.cluster_count(), second.cluster_count());
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut config = KizzleConfig::fast();
        config.retention_days = 0;
        let reference =
            ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::fast());
        let err = KizzleService::new(config, reference).unwrap_err();
        assert!(matches!(err, KizzleError::Config(_)), "err: {err}");
        assert!(err.to_string().contains("retention_days"));
    }
}
