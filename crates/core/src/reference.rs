//! The labeled reference corpus of known, unpacked exploit kits.
//!
//! Kizzle is not an anomaly detector: it must be *seeded* with known
//! exploit kits (paper §I-A). The reference corpus holds, per family, the
//! winnowing fingerprints of unpacked kit payloads an analyst has confirmed,
//! plus a per-family overlap threshold — the paper notes the threshold is
//! "malware family specific".

use crate::config::KizzleConfig;
use crate::snapshot::{family_code, family_from_code};
use kizzle_corpus::{KitFamily, KitModel, SimDate};
use kizzle_snapshot::{Decoder, Encoder, SnapshotError};
use kizzle_winnow::{Fingerprint, WinnowConfig};

/// One known family: its merged fingerprint and labeling threshold.
#[derive(Debug, Clone)]
struct FamilyReference {
    family: KitFamily,
    fingerprint: Fingerprint,
    threshold: f64,
}

/// The labeled corpus of known unpacked kits.
#[derive(Debug, Clone, Default)]
pub struct ReferenceCorpus {
    entries: Vec<FamilyReference>,
    winnow: WinnowConfig,
}

impl ReferenceCorpus {
    /// Create an empty corpus using the given winnowing configuration.
    #[must_use]
    pub fn new(winnow: WinnowConfig) -> Self {
        ReferenceCorpus {
            entries: Vec::new(),
            winnow,
        }
    }

    /// The winnowing configuration used for fingerprints.
    #[must_use]
    pub fn winnow_config(&self) -> &WinnowConfig {
        &self.winnow
    }

    /// Number of known families.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no family has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add (or extend) a family with one known unpacked sample and its
    /// labeling threshold. Adding further samples for the same family merges
    /// their fingerprints and keeps the latest threshold.
    pub fn add_known_sample(&mut self, family: KitFamily, unpacked: &str, threshold: f64) {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        let fingerprint = Fingerprint::of_text(unpacked, &self.winnow);
        if let Some(entry) = self.entries.iter_mut().find(|e| e.family == family) {
            entry.fingerprint.merge(&fingerprint);
            entry.threshold = threshold;
        } else {
            self.entries.push(FamilyReference {
                family,
                fingerprint,
                threshold,
            });
        }
    }

    /// Seed the corpus from the kit models' reference payloads as known on
    /// `date` — the analyst's "I have one confirmed unpacked sample of each
    /// kit" starting point.
    ///
    /// The per-family thresholds mirror how distinctive each kit's unpacked
    /// body is: RIG's short, URL-heavy payload needs a lower threshold (its
    /// day-over-day self-similarity is only ~50%, paper Fig. 11(d)).
    #[must_use]
    pub fn seeded_from_models(date: SimDate, config: &KizzleConfig) -> Self {
        let mut corpus = ReferenceCorpus::new(config.winnow);
        for family in KitFamily::ALL {
            let payload = KitModel::new(family).reference_payload(date);
            let threshold = match family {
                KitFamily::Rig => 0.35,
                _ => config.label_threshold,
            };
            corpus.add_known_sample(family, &payload, threshold);
        }
        corpus
    }

    /// Overlap of an unpacked prototype with a specific family's reference.
    #[must_use]
    pub fn overlap_with(&self, family: KitFamily, unpacked: &str) -> f64 {
        let probe = Fingerprint::of_text(unpacked, &self.winnow);
        self.entries
            .iter()
            .find(|e| e.family == family)
            .map_or(0.0, |e| probe.overlap(&e.fingerprint))
    }

    /// Label an unpacked cluster prototype: the best-matching family whose
    /// overlap exceeds its threshold, together with the overlap value.
    #[must_use]
    pub fn label(&self, unpacked: &str) -> Option<(KitFamily, f64)> {
        let probe = Fingerprint::of_text(unpacked, &self.winnow);
        let mut best: Option<(KitFamily, f64)> = None;
        for entry in &self.entries {
            let overlap = probe.overlap(&entry.fingerprint);
            if overlap >= entry.threshold
                && best.is_none_or(|(_, best_overlap)| overlap > best_overlap)
            {
                best = Some((entry.family, overlap));
            }
        }
        best
    }

    /// Record a newly confirmed unpacked sample for a family (called when a
    /// cluster has been labeled, so the corpus tracks kit evolution the way
    /// the paper's day-over-day similarity measurement does).
    pub fn absorb(&mut self, family: KitFamily, unpacked: &str) {
        let threshold = self
            .entries
            .iter()
            .find(|e| e.family == family)
            .map_or(0.6, |e| e.threshold);
        self.add_known_sample(family, unpacked, threshold);
    }

    /// Serialize the corpus: winnow parameters, then per family (in entry
    /// order, which labeling iterates) its threshold and fingerprint
    /// multiset. Fingerprint pairs are written hash-sorted so identical
    /// corpora always produce identical bytes.
    pub(crate) fn encode_into(&self, enc: &mut Encoder) {
        enc.usize(self.winnow.k);
        enc.usize(self.winnow.window);
        enc.usize(self.entries.len());
        for entry in &self.entries {
            enc.u8(family_code(entry.family));
            enc.f64(entry.threshold);
            let mut pairs: Vec<(u64, u32)> = entry.fingerprint.iter().collect();
            pairs.sort_unstable();
            enc.usize(pairs.len());
            for (hash, count) in pairs {
                enc.u64(hash);
                enc.u32(count);
            }
        }
    }

    /// Rebuild a corpus from [`ReferenceCorpus::encode_into`] output.
    pub(crate) fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(format!("reference corpus: {what}"));
        let k = dec.usize()?;
        let window = dec.usize()?;
        if k == 0 || window == 0 {
            return Err(corrupt("winnow parameters must be positive"));
        }
        let mut corpus = ReferenceCorpus::new(WinnowConfig::new(k, window));
        let entry_count = dec.usize()?;
        for _ in 0..entry_count {
            let family =
                family_from_code(dec.u8()?).ok_or_else(|| corrupt("unknown family code"))?;
            if corpus.entries.iter().any(|e| e.family == family) {
                return Err(corrupt("family duplicated"));
            }
            let threshold = dec.f64()?;
            if !(threshold > 0.0 && threshold <= 1.0) {
                return Err(corrupt("threshold out of range"));
            }
            let pair_count = dec.usize()?;
            let mut pairs = Vec::with_capacity(pair_count.min(1 << 20));
            for _ in 0..pair_count {
                pairs.push((dec.u64()?, dec.u32()?));
            }
            corpus.entries.push(FamilyReference {
                family,
                fingerprint: Fingerprint::from_counts(pairs),
                threshold,
            });
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> ReferenceCorpus {
        ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::paper())
    }

    #[test]
    fn seeded_corpus_contains_all_families() {
        let c = corpus();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn unpacked_kits_are_labeled_with_their_own_family() {
        let c = corpus();
        for family in KitFamily::ALL {
            // A week later, after packer churn, the unpacked payload still
            // labels correctly (that is the paper's core claim).
            let payload = KitModel::new(family).reference_payload(SimDate::new(2014, 8, 8));
            let (labeled, overlap) = c.label(&payload).expect("should label");
            assert_eq!(labeled, family, "overlap {overlap:.2}");
            assert!(overlap > 0.4, "{family}: overlap {overlap:.2}");
        }
    }

    #[test]
    fn benign_library_code_is_not_labeled() {
        let c = corpus();
        let benign = r#"
            (function() {
              var cache = {};
              function byId(id) { cache[id] = document.getElementById(id); return cache[id]; }
              function each(list, fn) { for (var i = 0; i < list.length; i++) { fn(list[i], i); } }
              window.util = { byId: byId, each: each };
            })();
        "#;
        assert_eq!(c.label(benign), None);
    }

    #[test]
    fn plugindetect_overlap_with_nuclear_is_high_but_below_threshold() {
        // The paper's Fig. 15 false positive: a benign PluginDetect file
        // shares a very high overlap (79%) with Nuclear. Our benign
        // PluginDetect page embeds the same probing library the kits embed,
        // so its overlap is substantial — the labeling threshold is what
        // keeps it (usually) out.
        let c = corpus();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
        let benign = kizzle_corpus::benign::generate_benign(
            kizzle_corpus::benign::BenignKind::PluginDetect,
            &mut rng,
        );
        let text = kizzle_unpack::script_text(&benign);
        let overlap = c.overlap_with(KitFamily::Nuclear, &text);
        assert!(
            overlap > 0.3,
            "expected substantial overlap, got {overlap:.2}"
        );
        assert!(
            overlap < 0.95,
            "should not be a perfect match, got {overlap:.2}"
        );
    }

    #[test]
    fn absorb_keeps_labeling_stable_as_the_kit_evolves() {
        let mut c = corpus();
        // Nuclear appends a CVE on August 27; absorbing the August 26
        // payload first must not break labeling of the August 27 one.
        let before = KitModel::new(KitFamily::Nuclear).reference_payload(SimDate::new(2014, 8, 26));
        c.absorb(KitFamily::Nuclear, &before);
        let after = KitModel::new(KitFamily::Nuclear).reference_payload(SimDate::new(2014, 8, 27));
        let (family, _) = c.label(&after).expect("should label");
        assert_eq!(family, KitFamily::Nuclear);
    }

    #[test]
    fn overlap_with_unknown_family_is_zero() {
        let c = ReferenceCorpus::new(WinnowConfig::default());
        assert_eq!(c.overlap_with(KitFamily::Angler, "function f() {}"), 0.0);
        assert_eq!(c.label("function f() {}"), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let mut c = ReferenceCorpus::new(WinnowConfig::default());
        c.add_known_sample(KitFamily::Rig, "x", 0.0);
    }
}
