//! Compiler state persistence: the cron-job deployment's survival layer.
//!
//! The production daily loop is a cron job, not a long-lived process
//! (ROADMAP), so everything [`KizzleCompiler`] accumulates across days —
//! the warm corpus engine, the cumulative [`SignatureSet`], the evolving
//! reference corpus, the per-family signature counters — died with each
//! run until this module existed. [`KizzleCompiler::save_state`] writes
//! all of it as the next link of a [`kizzle_snapshot`] **base→delta
//! chain** (a full base container, then per-day deltas holding only the
//! sections whose content fingerprint changed, compacted back to a fresh
//! base every [`DEFAULT_MAX_DELTAS`] saves; the `MANIFEST` sidecar
//! records the chain). [`KizzleCompiler::load_state`] overlays the chain
//! latest-wins and brings a fresh process back to exactly the state the
//! previous run saved: restart-each-day runs are byte-identical to a
//! long-lived warm process (held to that by
//! `save_load_resumes_exactly_like_a_long_lived_process` below and
//! `restart_each_day_matches_the_long_lived_run` in `kizzle-eval`).
//!
//! ## Sections
//!
//! | section          | contents                                              |
//! |------------------|-------------------------------------------------------|
//! | `meta`           | config fingerprint, last processed day, sig counters  |
//! | `signatures`     | the cumulative signature set, insertion-ordered       |
//! | `scan-pipeline`  | the sealed scan pipeline (automaton + prefilters)     |
//! | `reference`      | the reference corpus with its absorbed evolution      |
//! | `corpus-store`   | the engine's sample store (see `kizzle-cluster`)      |
//! | `neighbor-index` | memoized neighborhoods (see `kizzle-cluster`)         |
//!
//! The `scan-pipeline` section is an accelerator, not state: it ships the
//! signature set's ready-to-scan Aho–Corasick automaton and prefilter
//! tables (see `kizzle_signature::matcher`) so a resumed run — and any
//! scanner fed from the snapshot — skips the seal-time build. It is
//! versioned independently ([`kizzle_signature::matcher::PIPELINE_VERSION`])
//! and fully recoverable: a missing, damaged, or version-skewed pipeline
//! section only adds a [`ResumeReport`] note and the set reseals lazily
//! from the signatures.
//!
//! ## Trust ladder
//!
//! Loading **refuses** a snapshot whose config fingerprint disagrees with
//! the loading configuration — clustering parameters shape every piece of
//! persisted state, so mixing them would silently corrupt results. The
//! damage ladder, top rung first: a broken **delta** truncates the chain
//! to its intact prefix (the run resumes the base — an older but
//! self-consistent state); within the resulting snapshot, damage degrades
//! per section: a lost index rebuilds from the store, a lost store
//! empties the engine (cold rebuild), while damage to
//! `meta`/`signatures`/`reference` fails the load as a whole — those
//! cannot be reconstructed, and a caller falls back to a fresh compiler
//! exactly as if no snapshot existed.

use crate::config::KizzleConfig;
use crate::error::KizzleError;
use crate::pipeline::KizzleCompiler;
use crate::reference::ReferenceCorpus;
use kizzle_cluster::CorpusEngine;
pub use kizzle_cluster::ResumeReport;
use kizzle_corpus::{KitFamily, SimDate};
use kizzle_signature::SignatureSet;
use kizzle_snapshot::{
    ChainWriter, ChainedSnapshot, Decoder, Encoder, SectionSource, Snapshot, SnapshotError,
    FORMAT_VERSION,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::Path;

/// Chain file prefix of the compiler state (base file
/// `kizzle-state.snap`, deltas `kizzle-state.delta-N.snap`).
pub const STATE_CHAIN_PREFIX: &str = "kizzle-state";
/// Name of the base binary state file inside a state directory.
pub const STATE_FILE: &str = "kizzle-state.snap";
/// Name of the human-readable manifest sidecar.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Deltas a state chain accumulates before [`KizzleCompiler::save_state`]
/// compacts back to a full base — a weekly cadence at one save per day.
pub const DEFAULT_MAX_DELTAS: usize = 6;

pub use kizzle_snapshot::sections::{
    META_SECTION, REFERENCE_SECTION, SCAN_SECTION, SIGNATURES_SECTION, WINDOW_SECTION,
};

/// Stable wire code for a kit family (the paper's Fig. 2 order).
pub(crate) fn family_code(family: KitFamily) -> u8 {
    KitFamily::ALL
        .iter()
        .position(|f| *f == family)
        .map(|p| u8::try_from(p).expect("few families"))
        .expect("family listed in ALL")
}

/// Inverse of [`family_code`].
pub(crate) fn family_from_code(code: u8) -> Option<KitFamily> {
    KitFamily::ALL.get(usize::from(code)).copied()
}

/// Canonical byte encoding of every configuration field that shapes
/// persisted state, hashed with FNV-1a 64. Two configs with the same
/// fingerprint produce interchangeable snapshots; anything else is
/// refused at load.
#[must_use]
pub fn config_fingerprint(config: &KizzleConfig) -> u64 {
    let mut enc = Encoder::new();
    enc.usize(config.clustering.partitions);
    enc.f64(config.clustering.dbscan.eps);
    enc.usize(config.clustering.dbscan.min_points);
    enc.u64(config.clustering.seed);
    enc.usize(config.token_cap);
    enc.usize(config.min_cluster_size);
    enc.usize(config.retention_days);
    enc.usize(config.winnow.k);
    enc.usize(config.winnow.window);
    enc.f64(config.label_threshold);
    enc.usize(config.signature.max_tokens);
    enc.usize(config.signature.min_tokens);
    enc.usize(config.signature.max_samples);
    let bytes = enc.into_bytes();
    // FNV-1a, 64-bit: stable across platforms and Rust versions (unlike
    // the std hasher, which is only stable within one std release).
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialize a signature set in insertion order (which the scan's
/// first-match semantics depend on). The wire format lives with the set
/// itself ([`SignatureSet::encode_into`]); this wrapper survives as the
/// snapshot layer's name for it.
pub(crate) fn encode_signature_set(set: &SignatureSet, enc: &mut Encoder) {
    set.encode_into(enc);
}

/// Rebuild a signature set from [`encode_signature_set`] output; the
/// dedup and label tables are re-derived by re-adding in order. Delegates
/// to [`SignatureSet::decode_from`].
pub(crate) fn decode_signature_set(dec: &mut Decoder<'_>) -> Result<SignatureSet, SnapshotError> {
    SignatureSet::decode_from(dec)
}

struct Meta {
    fingerprint: u64,
    last_day: Option<SimDate>,
    counters: HashMap<KitFamily, usize>,
}

fn encode_meta(compiler: &KizzleCompiler, enc: &mut Encoder) {
    enc.u64(config_fingerprint(&compiler.config));
    match compiler.last_day {
        None => enc.bool(false),
        Some(day) => {
            enc.bool(true);
            enc.u32(day.year);
            enc.u32(day.month);
            enc.u32(day.day);
        }
    }
    let mut counters: Vec<(u8, u64)> = compiler
        .signature_counters
        .iter()
        .map(|(family, count)| (family_code(*family), *count as u64))
        .collect();
    counters.sort_unstable();
    enc.usize(counters.len());
    for (code, count) in counters {
        enc.u8(code);
        enc.u64(count);
    }
}

fn decode_meta(dec: &mut Decoder<'_>) -> Result<Meta, SnapshotError> {
    let corrupt = |what: &str| SnapshotError::Corrupt(format!("meta: {what}"));
    let fingerprint = dec.u64()?;
    let last_day = if dec.bool()? {
        let (year, month, day) = (dec.u32()?, dec.u32()?, dec.u32()?);
        if !(1..=12).contains(&month) || day < 1 || day > SimDate::days_in_month(month) {
            return Err(corrupt("calendar day out of range"));
        }
        Some(SimDate::new(year, month, day))
    } else {
        None
    };
    let counter_count = dec.usize()?;
    let mut counters = HashMap::new();
    for _ in 0..counter_count {
        let family = family_from_code(dec.u8()?).ok_or_else(|| corrupt("unknown family code"))?;
        let count = usize::try_from(dec.u64()?).map_err(|_| corrupt("counter exceeds usize"))?;
        if counters.insert(family, count).is_some() {
            return Err(corrupt("family counter duplicated"));
        }
    }
    Ok(Meta {
        fingerprint,
        last_day,
        counters,
    })
}

impl KizzleCompiler {
    /// Serialize every compiler section. The six payloads are independent,
    /// so they encode through the rayon pool — a multi-core save costs the
    /// slowest section, not the sum.
    fn encode_state_sections(&self) -> Vec<(String, Vec<u8>)> {
        type Job<'a> = (&'a str, Box<dyn Fn() -> Vec<u8> + Sync + 'a>);
        let jobs: Vec<Job<'_>> = vec![
            (
                META_SECTION,
                Box::new(|| {
                    let mut enc = Encoder::new();
                    encode_meta(self, &mut enc);
                    enc.into_bytes()
                }),
            ),
            (
                SIGNATURES_SECTION,
                Box::new(|| {
                    let mut enc = Encoder::new();
                    encode_signature_set(&self.signatures, &mut enc);
                    enc.into_bytes()
                }),
            ),
            (
                SCAN_SECTION,
                Box::new(|| {
                    // Seal here if no scan did: the build cost lands in
                    // the save (amortized across the chain — the section
                    // only re-ships when the set changed), and the next
                    // run resumes ready to scan.
                    let mut enc = Encoder::new();
                    self.signatures.seal().encode_into(&mut enc);
                    enc.into_bytes()
                }),
            ),
            (
                REFERENCE_SECTION,
                Box::new(|| {
                    let mut enc = Encoder::new();
                    self.reference.encode_into(&mut enc);
                    enc.into_bytes()
                }),
            ),
            (
                WINDOW_SECTION,
                Box::new(|| {
                    let mut enc = Encoder::new();
                    enc.varint_usize(self.day_views.len());
                    for (stamp, ids) in &self.day_views {
                        enc.varint(*stamp);
                        enc.varint_usize(ids.len());
                        for id in ids {
                            enc.varint(u64::from(id.raw()));
                        }
                    }
                    enc.into_bytes()
                }),
            ),
        ];
        // The engine owns its own section layout (names and payloads) —
        // `CorpusEngine::encode_sections` is the single producer, run
        // concurrently with the compiler-level jobs.
        let (payloads, engine_sections) = rayon::join(
            || -> Vec<Vec<u8>> { jobs.par_iter().map(|(_, job)| job()).collect() },
            || self.engine.encode_sections(),
        );
        let mut sections: Vec<(String, Vec<u8>)> = jobs
            .iter()
            .map(|(name, _)| (*name).to_string())
            .zip(payloads)
            .collect();
        sections.extend(engine_sections);
        sections
    }

    /// Persist the complete compiler state into `state_dir` with the
    /// default compaction cadence ([`DEFAULT_MAX_DELTAS`]). See
    /// [`KizzleCompiler::save_state_compacting`].
    pub fn save_state(&self, state_dir: &Path) -> Result<(), KizzleError> {
        self.save_state_compacting(state_dir, DEFAULT_MAX_DELTAS)
    }

    /// Persist the complete compiler state into `state_dir` as the next
    /// link of a base→delta snapshot chain: a full base file
    /// ([`STATE_FILE`]) on the first save, afterwards a delta holding only
    /// the sections whose content fingerprint changed since the previous
    /// save (on heavily overlapping days the reference and signature
    /// sections are usually byte-identical). Once the chain carries
    /// `max_deltas` deltas the next save **compacts**: the full base is
    /// rewritten and the stale deltas removed; `max_deltas == 0` writes a
    /// full snapshot every time (the PR 3 behavior). Every file and the
    /// [`MANIFEST_FILE`] sidecar are written atomically, so a crash
    /// mid-save leaves the previous state loadable.
    pub fn save_state_compacting(
        &self,
        state_dir: &Path,
        max_deltas: usize,
    ) -> Result<(), KizzleError> {
        let snapshot_span = kizzle_telemetry::span!("day.snapshot");
        let sections = self.encode_state_sections();
        let save = ChainWriter::new(state_dir, STATE_CHAIN_PREFIX).save(
            sections,
            max_deltas,
            |manifest, save| {
                manifest.set("snapshot_file", STATE_FILE);
                manifest.set("format_version", FORMAT_VERSION);
                manifest.set(
                    "config_fingerprint",
                    format!("{:#018x}", config_fingerprint(&self.config)),
                );
                manifest.set(
                    "last_day",
                    self.last_day
                        .map_or_else(|| "none".to_string(), |d| d.to_string()),
                );
                manifest.set("live_samples", self.engine.len());
                // Serving-side followers scan with the compile-time cap.
                manifest.set("token_cap", self.config.token_cap);
                manifest.set("cached_neighborhoods", self.engine.index().cached_count());
                manifest.set(SIGNATURES_SECTION, self.signatures.len());
                // What *this* save put on disk — the base on day 1 and
                // after compaction, otherwise a delta (or nothing on a
                // no-change day). The logical state spans the whole
                // `chain`, so a single "size of the snapshot" number no
                // longer exists.
                manifest.set(
                    "written_file",
                    save.file.as_deref().unwrap_or("none (no sections changed)"),
                );
                manifest.set("written_bytes", save.bytes);
            },
        )?;
        let snapshot_elapsed = snapshot_span.finish();
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::counter("kizzle_snapshot_saves_total").incr();
            kizzle_telemetry::histogram("kizzle_snapshot_save_ns")
                .observe_duration(snapshot_elapsed);
            kizzle_telemetry::event(
                "snapshot.save",
                format!(
                    "wrote {} ({} bytes)",
                    save.file
                        .as_deref()
                        .unwrap_or("nothing (no sections changed)"),
                    save.bytes
                ),
            );
        }
        Ok(())
    }

    /// Load compiler state saved by [`KizzleCompiler::save_state`],
    /// following the base→delta chain recorded in the manifest.
    ///
    /// Refuses snapshots whose config fingerprint differs from `config`
    /// ([`KizzleError::ConfigFingerprint`]). The fallback ladder, top rung
    /// first: a broken delta truncates the chain (the run resumes the
    /// base — an older but self-consistent state); engine damage degrades
    /// per section (see [`ResumeReport`]); damage to the meta, signature
    /// or reference sections fails the load — the caller starts a fresh
    /// compiler, exactly as if no snapshot existed.
    pub fn load_state(
        state_dir: &Path,
        config: KizzleConfig,
    ) -> Result<(Self, ResumeReport), KizzleError> {
        let _load_span = kizzle_telemetry::span!("snapshot.load");
        if kizzle_telemetry::enabled() {
            kizzle_telemetry::counter("kizzle_snapshot_loads_total").incr();
        }
        let config = config.validate()?;
        let snapshot = ChainedSnapshot::open(state_dir, STATE_CHAIN_PREFIX)?;

        let mut dec = Decoder::new(snapshot.section(META_SECTION)?);
        let meta = decode_meta(&mut dec)?;
        dec.finish()?;
        let expected = config_fingerprint(&config);
        if meta.fingerprint != expected {
            return Err(KizzleError::ConfigFingerprint {
                found: meta.fingerprint,
                expected,
            });
        }

        // Signatures + scan pipeline decode through the one shared
        // section reader (`kizzle::source`) — the same code path the
        // serving-side `ChainFollower` and `read_signatures` use.
        let (signatures, signature_notes) = crate::source::decode_signature_sections(&snapshot)?;

        let mut dec = Decoder::new(snapshot.section(REFERENCE_SECTION)?);
        let reference = ReferenceCorpus::decode_from(&mut dec)?;
        dec.finish()?;

        let (engine, mut report) = CorpusEngine::resume_from_sections(config.clustering, &snapshot);
        for chain_note in snapshot.notes() {
            report.note(chain_note.clone());
        }
        // Scan-pipeline degradation (absent in pre-PR-6 snapshots,
        // damaged, version-skewed, or not covering this set) just means
        // the set reseals lazily.
        for note in signature_notes {
            report.note(note);
        }

        // Day views are only meaningful against the engine they were saved
        // with: if the engine degraded (or the section is damaged), window
        // clustering starts over rather than pointing at dead ids.
        let day_views = snapshot.section(WINDOW_SECTION).and_then(|payload| {
            let mut dec = Decoder::new(payload);
            let view_count = dec.varint_usize()?;
            let mut views = Vec::with_capacity(view_count.min(1 << 10));
            for _ in 0..view_count {
                let stamp = dec.varint()?;
                let id_count = dec.varint_usize()?;
                let mut ids = Vec::with_capacity(id_count.min(1 << 20));
                for _ in 0..id_count {
                    let raw = u32::try_from(dec.varint()?)
                        .map_err(|_| SnapshotError::Corrupt("window view id exceeds u32".into()))?;
                    let id = kizzle_cluster::SampleId::new(raw);
                    if !engine.store().contains(id) {
                        return Err(SnapshotError::Corrupt(
                            "window view names a dead sample".into(),
                        ));
                    }
                    ids.push(id);
                }
                views.push((stamp, ids));
            }
            dec.finish()?;
            Ok(views)
        });
        let day_views = match day_views {
            Ok(views) => views,
            Err(err) => {
                report.note(format!(
                    "window views lost, window clustering starts over: {err}"
                ));
                Vec::new()
            }
        };

        Ok((
            KizzleCompiler {
                config,
                reference,
                signatures: std::sync::Arc::new(signatures),
                signature_counters: meta.counters,
                engine,
                last_day: meta.last_day,
                day_views,
            },
            report,
        ))
    }

    /// Load saved state, or fall back to a fresh compiler when no usable
    /// snapshot exists. The cron-job entry point: `reference` seeds the
    /// fresh compiler on the very first run (and after unrecoverable
    /// damage) — it is a closure because seeding winnow-fingerprints every
    /// kit model, a cost the warm path must not pay; the returned report
    /// says what happened.
    #[must_use]
    pub fn load_or_new(
        state_dir: &Path,
        config: KizzleConfig,
        reference: impl FnOnce() -> ReferenceCorpus,
    ) -> (Self, ResumeReport) {
        match KizzleCompiler::load_state(state_dir, config) {
            Ok(loaded) => loaded,
            Err(err) => {
                let mut report = ResumeReport::default();
                report.note(format!("state not loadable, fresh compiler: {err}"));
                (KizzleCompiler::new(config, reference()), report)
            }
        }
    }
}

/// Read just the signature set out of a compiler state snapshot — what
/// `examples/signature_inspect` uses to inspect deployed signatures
/// without recompiling them.
///
/// Chain-aware: pointed at a state *directory* or at a chain's base file
/// (`kizzle-state.snap` next to its `MANIFEST`), the recorded deltas are
/// overlaid so the *newest* signature section answers; a bare snapshot
/// file without a chain reads as itself.
pub fn read_signatures(state_path: &Path) -> Result<SignatureSet, KizzleError> {
    let state_file = if state_path.is_dir() {
        state_path.join(STATE_FILE)
    } else {
        state_path.to_path_buf()
    };
    let state_file = state_file.as_path();
    let chained = state_file
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_suffix(".snap"))
        .zip(state_file.parent())
        .and_then(|(prefix, dir)| ChainedSnapshot::open(dir, prefix).ok());
    let chained = match chained {
        Some(chain) => chain,
        None => ChainedSnapshot::single(Snapshot::read(state_file)?),
    };
    // The one shared section reader (`kizzle::source`) interprets the
    // layout — it also attaches the snapshot's sealed scan pipeline, so
    // the returned set is ready to scan without paying the build.
    let (set, _notes) = crate::source::decode_signature_sections(&chained)?;
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kizzle_corpus::{GraywareStream, Sample, StreamConfig};
    use kizzle_signature::{CharClass, Element, ScanPipeline, Signature};
    use kizzle_snapshot::Manifest;

    fn test_day(date: SimDate, seed: u64) -> Vec<Sample> {
        let config = StreamConfig {
            samples_per_day: 48,
            malicious_fraction: 0.5,
            family_weights: vec![
                (KitFamily::Angler, 0.4),
                (KitFamily::Nuclear, 0.3),
                (KitFamily::SweetOrange, 0.3),
            ],
            seed,
        };
        GraywareStream::new(config).generate_day(date)
    }

    fn fresh_compiler() -> KizzleCompiler {
        let reference =
            ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::fast());
        KizzleCompiler::new(KizzleConfig::fast(), reference)
    }

    fn state_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kizzle-state-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_resumes_exactly_like_a_long_lived_process() {
        let dir = state_dir("roundtrip");
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        let day1 = test_day(d1, 3);
        let day2 = test_day(d2, 4);

        // Long-lived: both days through one compiler.
        let mut long_lived = fresh_compiler();
        long_lived.process_day(d1, &day1);
        let want = long_lived.process_day(d2, &day2);

        // Cron-style: day 1, save, drop, load, day 2.
        let mut first_run = fresh_compiler();
        first_run.process_day(d1, &day1);
        first_run.save_state(&dir).expect("state saved");
        drop(first_run);
        let (mut second_run, report) =
            KizzleCompiler::load_state(&dir, KizzleConfig::fast()).expect("state loads");
        assert!(report.is_warm(), "report: {report:?}");
        assert_eq!(second_run.last_processed_day(), Some(d1));
        let got = second_run.process_day(d2, &day2);

        // Byte-identical modulo wall clock.
        let mut want = want;
        let mut got = got;
        want.clustering_stats = Default::default();
        got.clustering_stats = Default::default();
        assert_eq!(want, got);
        assert_eq!(long_lived.signatures(), second_run.signatures());
        assert_eq!(long_lived.engine().len(), second_run.engine().len());
        // The multi-day window mode resumes identically too: the retained
        // day views survived the snapshot.
        let (window_live, _) = long_lived.cluster_window();
        let (window_resumed, _) = second_run.cluster_window();
        assert_eq!(window_live, window_resumed);
        assert!(window_live.cluster_count() > 0, "window found no clusters");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_config_fingerprint_is_refused() {
        let dir = state_dir("mismatch");
        let compiler = fresh_compiler();
        compiler.save_state(&dir).expect("state saved");
        let mut other = KizzleConfig::fast();
        other.retention_days += 1;
        assert!(matches!(
            KizzleCompiler::load_state(&dir, other),
            Err(KizzleError::ConfigFingerprint { .. })
        ));
        // load_or_new degrades to a fresh compiler instead.
        let reference = ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &other);
        let (fresh, report) = KizzleCompiler::load_or_new(&dir, other, || reference);
        assert!(fresh.engine().is_empty());
        assert!(!report.notes.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_damaged_snapshots_degrade_without_panicking() {
        let dir = state_dir("damage");
        // Missing directory: fresh compiler.
        let reference =
            ReferenceCorpus::seeded_from_models(SimDate::new(2014, 8, 1), &KizzleConfig::fast());
        let (fresh, report) =
            KizzleCompiler::load_or_new(&dir, KizzleConfig::fast(), || reference.clone());
        assert!(fresh.signatures().is_empty());
        assert!(!report.notes.is_empty());

        // Truncated file: load_state errors, load_or_new degrades.
        let mut compiler = fresh_compiler();
        let d1 = SimDate::new(2014, 8, 5);
        compiler.process_day(d1, &test_day(d1, 3));
        compiler.save_state(&dir).expect("state saved");
        let path = dir.join(STATE_FILE);
        let full = std::fs::read(&path).expect("snapshot bytes");
        std::fs::write(&path, &full[..full.len() / 3]).expect("truncate");
        assert!(KizzleCompiler::load_state(&dir, KizzleConfig::fast()).is_err());
        let (_, report) =
            KizzleCompiler::load_or_new(&dir, KizzleConfig::fast(), || reference.clone());
        assert!(!report.notes.is_empty());

        // Version skew: the version field is bytes 8..12.
        let mut skewed = full.clone();
        skewed[8] = 0x7F;
        std::fs::write(&path, &skewed).expect("rewrite");
        assert!(matches!(
            KizzleCompiler::load_state(&dir, KizzleConfig::fast()),
            Err(KizzleError::Snapshot(SnapshotError::VersionSkew { .. }))
        ));

        // A flipped byte somewhere in the sections: either the damaged
        // section is one the engine can rebuild around, or the load fails —
        // never a panic, never a silent wrong answer.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).expect("rewrite");
        let (_, _) = KizzleCompiler::load_or_new(&dir, KizzleConfig::fast(), || reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_describes_the_saved_state() {
        let dir = state_dir("manifest");
        let mut compiler = fresh_compiler();
        let d1 = SimDate::new(2014, 8, 5);
        compiler.process_day(d1, &test_day(d1, 3));
        compiler.save_state(&dir).expect("state saved");
        let manifest = Manifest::read(&dir.join(MANIFEST_FILE)).expect("manifest");
        assert_eq!(manifest.get("snapshot_file"), Some(STATE_FILE));
        assert_eq!(
            manifest.get("config_fingerprint"),
            Some(format!("{:#018x}", config_fingerprint(compiler.config())).as_str())
        );
        assert_eq!(manifest.get("last_day"), Some("8/5/14"));
        // Day 1 wrote the full base; `written_*` describe that save.
        assert_eq!(manifest.get("written_file"), Some(STATE_FILE));
        let bytes: usize = manifest
            .get("written_bytes")
            .unwrap()
            .parse()
            .expect("numeric");
        assert_eq!(bytes, std::fs::read(dir.join(STATE_FILE)).unwrap().len());
        // A second day's save extends the chain with a delta, and the
        // manifest must describe *that* file — not misquote the base.
        let d2 = SimDate::new(2014, 8, 6);
        compiler.process_day(d2, &test_day(d2, 4));
        compiler.save_state(&dir).expect("state saved");
        let manifest = Manifest::read(&dir.join(MANIFEST_FILE)).expect("manifest");
        let written = manifest.get("written_file").expect("written_file");
        assert_ne!(written, STATE_FILE, "day 2 must be a delta");
        let bytes: usize = manifest
            .get("written_bytes")
            .unwrap()
            .parse()
            .expect("numeric");
        assert_eq!(bytes, std::fs::read(dir.join(written)).unwrap().len());
        assert_eq!(
            manifest.get(kizzle_snapshot::sections::CHAIN_KEY),
            Some(format!("{STATE_FILE} {written}").as_str())
        );
        // read_signatures follows the chain from the base file.
        let set = read_signatures(&dir.join(STATE_FILE)).expect("signatures");
        assert_eq!(&set, compiler.signatures());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_snapshot_resumes_warm_and_upgrades_to_v2_on_save() {
        use kizzle_cluster::{INDEX_SECTION, STORE_SECTION};
        use kizzle_snapshot::{write_atomic, SnapshotBuilder, MIN_FORMAT_VERSION};

        let dir = state_dir("v1-upgrade");
        let d1 = SimDate::new(2014, 8, 5);
        let d2 = SimDate::new(2014, 8, 6);
        let day1 = test_day(d1, 3);
        let day2 = test_day(d2, 4);

        // The reference run: both days through one long-lived compiler.
        let mut long_lived = fresh_compiler();
        long_lived.process_day(d1, &day1);
        let want = long_lived.process_day(d2, &day2);

        // Re-create day 1's state and write it as a **v1** base: the
        // container and section layout are identical; only the
        // store/index sections differ, carrying sorted id runs as plain
        // absolute varints (the pre-gap-encoding codec).
        let mut day1_compiler = fresh_compiler();
        day1_compiler.process_day(d1, &day1);
        let mut sections = day1_compiler.encode_state_sections();
        for (name, payload) in &mut sections {
            let mut enc = Encoder::new();
            match name.as_str() {
                STORE_SECTION => day1_compiler.engine().store().encode_into_v1(&mut enc),
                INDEX_SECTION => day1_compiler.engine().index().encode_into_v1(&mut enc),
                _ => continue,
            }
            *payload = enc.into_bytes();
        }
        let mut builder = SnapshotBuilder::new();
        for (name, payload) in sections {
            builder.section(&name, payload);
        }
        std::fs::create_dir_all(&dir).expect("state dir");
        let bytes = builder.to_bytes_with_version(MIN_FORMAT_VERSION);
        write_atomic(&dir.join(STATE_FILE), &bytes).expect("v1 base written");
        let on_disk = Snapshot::read(&dir.join(STATE_FILE)).expect("v1 base parses");
        assert_eq!(on_disk.version(), MIN_FORMAT_VERSION);

        // The v1 snapshot resumes warm — no cold rebuild. (It was written
        // as a bare base; the absent manifest only adds a note.)
        let (mut resumed, report) =
            KizzleCompiler::load_state(&dir, KizzleConfig::fast()).expect("v1 state loads");
        assert!(report.is_warm(), "report: {report:?}");
        assert_eq!(resumed.engine().len(), day1_compiler.engine().len());
        assert_eq!(resumed.signatures(), day1_compiler.signatures());

        // Day 2 through the resumed compiler: byte-identical to the
        // long-lived run, exactly like a v2 resume.
        let mut got = resumed.process_day(d2, &day2);
        let mut want = want;
        want.clustering_stats = Default::default();
        got.clustering_stats = Default::default();
        assert_eq!(want, got);
        assert_eq!(long_lived.signatures(), resumed.signatures());

        // Saving rewrites the state at the current format version, and
        // the upgraded chain loads warm again.
        resumed.save_state(&dir).expect("state saved");
        let upgraded_base = Snapshot::read(&dir.join(STATE_FILE)).expect("v2 base parses");
        assert_eq!(upgraded_base.version(), FORMAT_VERSION);
        let (upgraded, report) =
            KizzleCompiler::load_state(&dir, KizzleConfig::fast()).expect("v2 state reloads");
        assert!(report.is_warm(), "report: {report:?}");
        assert_eq!(upgraded.signatures(), resumed.signatures());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_fingerprint_is_sensitive_to_every_field() {
        let base = KizzleConfig::paper();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&KizzleConfig::paper()), "stable");

        let mut c = base;
        c.retention_days += 1;
        assert_ne!(fp, config_fingerprint(&c));
        let mut c = base;
        c.clustering.dbscan.eps += 0.01;
        assert_ne!(fp, config_fingerprint(&c));
        let mut c = base;
        c.clustering.seed ^= 1;
        assert_ne!(fp, config_fingerprint(&c));
        let mut c = base;
        c.token_cap += 1;
        assert_ne!(fp, config_fingerprint(&c));
        assert_ne!(fp, config_fingerprint(&KizzleConfig::fast()));

        // max_day_advance gates ingest requests but shapes no persisted
        // state — tightening it must NOT orphan existing snapshots.
        let mut c = base;
        c.max_day_advance = 5;
        assert_eq!(fp, config_fingerprint(&c), "fingerprint must ignore it");
    }

    #[test]
    fn family_codes_roundtrip() {
        for family in KitFamily::ALL {
            assert_eq!(family_from_code(family_code(family)), Some(family));
        }
        assert_eq!(family_from_code(200), None);
    }

    #[test]
    fn resumed_state_carries_a_sealed_scan_pipeline() {
        let dir = state_dir("pipeline");
        let mut compiler = fresh_compiler();
        let d1 = SimDate::new(2014, 8, 5);
        compiler.process_day(d1, &test_day(d1, 3));
        compiler.save_state(&dir).expect("state saved");
        let (resumed, report) =
            KizzleCompiler::load_state(&dir, KizzleConfig::fast()).expect("state loads");
        assert!(report.is_warm(), "report: {report:?}");
        assert!(
            resumed.signatures().is_sealed(),
            "snapshot must ship a ready-to-scan pipeline"
        );
        assert_eq!(resumed.signatures(), compiler.signatures());

        // Damage only the scan-pipeline section's payload: the load still
        // succeeds (it is derived state) and the set reseals lazily.
        // Overwrite the base with a save whose pipeline bytes are bogus by
        // truncating the chain's base mid-file — covered by the damage
        // test above — so here exercise the decode-reject path directly.
        let mut enc = Encoder::new();
        compiler.signatures().seal().encode_into(&mut enc);
        let mut bytes = enc.into_bytes();
        bytes[0] ^= 0x40; // version skew
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            ScanPipeline::decode_from(&mut dec, compiler.signatures().len()),
            Err(SnapshotError::VersionSkew { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn signature_set_roundtrips_in_order() {
        let mut set = SignatureSet::new();
        set.add(
            "Nuclear",
            Signature::new(
                "NEK.sig1",
                vec![
                    Element::Literal("this".to_string()),
                    Element::Class {
                        class: CharClass::AlphaNum,
                        min_len: 3,
                        max_len: 5,
                    },
                ],
                7,
            ),
        );
        set.add(
            "RIG",
            Signature::new("RIG.sig1", vec![Element::Literal("split".to_string())], 4),
        );
        let mut enc = Encoder::new();
        encode_signature_set(&set, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = decode_signature_set(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(restored, set);
        assert_eq!(restored.labels(), set.labels());
    }
}
