//! Pipeline configuration.
//!
//! [`KizzleConfig::paper`] and [`KizzleConfig::fast`] are the two curated
//! operating points; everything else goes through
//! [`KizzleConfig::builder`], whose setters are validated at
//! [`KizzleConfigBuilder::build`] — the typed replacement for mutating
//! flat struct literals and hoping [`KizzleConfig::validated`] doesn't
//! panic later.

use crate::error::KizzleError;
use kizzle_cluster::{DbscanParams, DistributedConfig};
use kizzle_signature::SignatureConfig;
use kizzle_winnow::WinnowConfig;

/// Configuration of the whole Kizzle pipeline.
///
/// The defaults reproduce the paper's operating point where it is stated
/// (DBSCAN threshold 0.10, 200-token signature cap) and otherwise use the
/// values determined in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KizzleConfig {
    /// Distributed clustering configuration (partition count stands in for
    /// the paper's 50 machines).
    pub clustering: DistributedConfig,
    /// Maximum number of tokens per sample used for clustering; longer
    /// samples are truncated to this prefix, which bounds the edit-distance
    /// cost without affecting the packer-dominated head of the document.
    pub token_cap: usize,
    /// Minimum number of samples in a cluster before a signature is
    /// generated from it. Clusters below this size are ignored — which is
    /// exactly the false-negative mechanism the paper describes for rare
    /// kit variants.
    pub min_cluster_size: usize,
    /// How many days of samples the incremental corpus engine keeps warm
    /// (including the day being processed). Consecutive grayware corpora
    /// overlap heavily, so retained samples turn into index cache hits the
    /// next day; samples older than the window are retired before each
    /// day runs. `1` clusters each day fully cold. Does not affect labels —
    /// the day's clustering is restricted to the day's samples either way.
    pub retention_days: usize,
    /// The furthest ahead (in days) an opened day may be of the last
    /// opened one. The retention sweep retires everything older than
    /// `date - retention_days`, so a single mis-parsed far-future date
    /// would silently discard the whole warm corpus; the service refuses
    /// such jumps as [`KizzleError::Ingest`] instead. Deliberately
    /// generous by default (90 days) — weekends, holidays, and pipeline
    /// outages are normal gaps; a date parser emitting 2034 is not.
    ///
    /// Excluded from the snapshot config fingerprint: it gates ingest
    /// requests, it does not shape any persisted state.
    pub max_day_advance: usize,
    /// Winnowing parameters for cluster labeling.
    pub winnow: WinnowConfig,
    /// Default winnow-overlap threshold above which a cluster prototype is
    /// considered to belong to a known family. Per-family overrides live in
    /// the reference corpus.
    pub label_threshold: f64,
    /// Signature generation parameters.
    pub signature: SignatureConfig,
}

impl KizzleConfig {
    /// The paper-faithful configuration.
    #[must_use]
    pub fn paper() -> Self {
        KizzleConfig {
            clustering: DistributedConfig::new(4, DbscanParams::new(0.10, 4), 0),
            token_cap: 900,
            min_cluster_size: 4,
            retention_days: 3,
            max_day_advance: 90,
            winnow: WinnowConfig::default(),
            label_threshold: 0.60,
            signature: SignatureConfig::default(),
        }
    }

    /// A configuration tuned for unit tests and doc examples: fewer
    /// partitions, smaller clusters accepted, shorter token cap.
    #[must_use]
    pub fn fast() -> Self {
        KizzleConfig {
            clustering: DistributedConfig::new(2, DbscanParams::new(0.10, 3), 0),
            token_cap: 500,
            min_cluster_size: 3,
            retention_days: 2,
            max_day_advance: 90,
            winnow: WinnowConfig::default(),
            label_threshold: 0.60,
            signature: SignatureConfig::default(),
        }
    }

    /// Start from the paper's operating point and adjust fields through
    /// validated setters; [`KizzleConfigBuilder::build`] returns
    /// [`KizzleError::Config`] instead of panicking on a bad combination.
    #[must_use]
    pub fn builder() -> KizzleConfigBuilder {
        KizzleConfigBuilder {
            config: KizzleConfig::paper(),
        }
    }

    /// Validate invariants that cross module boundaries, returning the
    /// configuration unchanged when they hold and
    /// [`KizzleError::Config`] naming the violated invariant otherwise.
    /// Every service entry point (`new`/`open`/`load`) and the panicking
    /// [`KizzleConfig::validated`] run the same checks, so a config that
    /// was hand-mutated past the builder still cannot reach the pipeline
    /// invalid.
    pub fn validate(self) -> Result<Self, KizzleError> {
        let fail = |what: &str| Err(KizzleError::Config(what.to_string()));
        if self.clustering.partitions < 1 {
            return fail("at least one partition is required");
        }
        if !(self.clustering.dbscan.eps > 0.0 && self.clustering.dbscan.eps < 1.0) {
            return fail("eps must be in (0, 1)");
        }
        if self.clustering.dbscan.min_points < 1 {
            return fail("min_points must be >= 1");
        }
        if !(self.label_threshold > 0.0 && self.label_threshold <= 1.0) {
            return fail("label_threshold must be in (0, 1]");
        }
        if self.token_cap < self.signature.max_tokens {
            return fail("token_cap must be at least the signature token cap");
        }
        if self.min_cluster_size < 1 {
            return fail("min_cluster_size must be >= 1");
        }
        if self.retention_days < 1 {
            return fail("retention_days must be >= 1");
        }
        if self.max_day_advance < 1 {
            return fail("max_day_advance must be >= 1");
        }
        Ok(self)
    }

    /// Validate invariants that cross module boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the label threshold is outside `(0, 1]`, the token cap is
    /// smaller than the signature cap, the minimum cluster size is zero, or
    /// the retention window is zero. [`KizzleConfig::validate`] is the
    /// non-panicking form.
    #[must_use]
    pub fn validated(self) -> Self {
        match self.validate() {
            Ok(config) => config,
            Err(err) => panic!("{err}"),
        }
    }
}

/// Builder for [`KizzleConfig`], created by [`KizzleConfig::builder`].
///
/// Starts from [`KizzleConfig::paper`]; every setter adjusts one knob and
/// [`KizzleConfigBuilder::build`] validates the combination. Field-level
/// range errors (a zero partition count, a negative eps) surface from
/// `build` as [`KizzleError::Config`] rather than panicking mid-setter, so
/// a service can refuse a bad config file gracefully.
///
/// ```
/// use kizzle::{KizzleConfig, KizzleError};
///
/// let config = KizzleConfig::builder()
///     .partitions(8)
///     .eps(0.10)
///     .retention_days(5)
///     .token_cap(700)
///     .build()?;
/// assert_eq!(config.retention_days, 5);
///
/// // Invariants are checked at build time:
/// let err = KizzleConfig::builder().retention_days(0).build().unwrap_err();
/// assert!(matches!(err, KizzleError::Config(_)));
/// # Ok::<(), KizzleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KizzleConfigBuilder {
    config: KizzleConfig,
}

impl KizzleConfigBuilder {
    /// Number of clustering partitions ("machines").
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.clustering.partitions = partitions;
        self
    }

    /// DBSCAN neighborhood radius (the paper runs at 0.10).
    #[must_use]
    pub fn eps(mut self, eps: f64) -> Self {
        self.config.clustering.dbscan.eps = eps;
        self
    }

    /// DBSCAN core-point threshold.
    #[must_use]
    pub fn min_points(mut self, min_points: usize) -> Self {
        self.config.clustering.dbscan.min_points = min_points;
        self
    }

    /// Seed of the content-key partition mix (reproducibility knob).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.clustering.seed = seed;
        self
    }

    /// Maximum tokens per sample used for clustering.
    #[must_use]
    pub fn token_cap(mut self, token_cap: usize) -> Self {
        self.config.token_cap = token_cap;
        self
    }

    /// Minimum cluster size before a signature is generated.
    #[must_use]
    pub fn min_cluster_size(mut self, min_cluster_size: usize) -> Self {
        self.config.min_cluster_size = min_cluster_size;
        self
    }

    /// Days of samples the warm engine retains (including the current one).
    #[must_use]
    pub fn retention_days(mut self, retention_days: usize) -> Self {
        self.config.retention_days = retention_days;
        self
    }

    /// The furthest ahead (in days) an opened day may be of the last one
    /// — the guard against a mis-parsed far-future date retiring the warm
    /// corpus (see [`KizzleConfig::max_day_advance`]).
    #[must_use]
    pub fn max_day_advance(mut self, max_day_advance: usize) -> Self {
        self.config.max_day_advance = max_day_advance;
        self
    }

    /// Winnowing parameters for cluster labeling.
    #[must_use]
    pub fn winnow(mut self, winnow: WinnowConfig) -> Self {
        self.config.winnow = winnow;
        self
    }

    /// Winnow-overlap threshold above which a prototype labels a family.
    #[must_use]
    pub fn label_threshold(mut self, label_threshold: f64) -> Self {
        self.config.label_threshold = label_threshold;
        self
    }

    /// Signature generation parameters.
    #[must_use]
    pub fn signature(mut self, signature: SignatureConfig) -> Self {
        self.config.signature = signature;
        self
    }

    /// Validate the accumulated configuration (the same checks as
    /// [`KizzleConfig::validate`]).
    pub fn build(self) -> Result<KizzleConfig, KizzleError> {
        self.config.validate()
    }
}

impl Default for KizzleConfig {
    fn default() -> Self {
        KizzleConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_stated_parameters() {
        let cfg = KizzleConfig::paper().validated();
        assert!((cfg.clustering.dbscan.eps - 0.10).abs() < 1e-12);
        assert_eq!(cfg.signature.max_tokens, 200);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(KizzleConfig::default(), KizzleConfig::paper());
    }

    #[test]
    fn fast_config_is_valid() {
        let _ = KizzleConfig::fast().validated();
    }

    #[test]
    #[should_panic(expected = "label_threshold")]
    fn invalid_threshold_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.label_threshold = 1.5;
        let _ = cfg.validated();
    }

    #[test]
    #[should_panic(expected = "token_cap")]
    fn token_cap_below_signature_cap_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.token_cap = 100;
        let _ = cfg.validated();
    }

    #[test]
    #[should_panic(expected = "retention_days")]
    fn zero_retention_panics() {
        let mut cfg = KizzleConfig::paper();
        cfg.retention_days = 0;
        let _ = cfg.validated();
    }

    #[test]
    fn zero_max_day_advance_is_refused() {
        let err = KizzleConfig::builder()
            .max_day_advance(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("max_day_advance"), "err: {err}");
        let cfg = KizzleConfig::builder()
            .max_day_advance(7)
            .build()
            .expect("valid");
        assert_eq!(cfg.max_day_advance, 7);
    }
}
